//! Proximal policy optimization (clipped surrogate) for one-shot DSE.
//!
//! The paper lists PPO among the RL formulations an architecture
//! gymnasium must be able to host (Section 1 cites PPO/SAC/DQN/DDPG).
//! This is a faithful single-step adaptation: episodes are one decision
//! long, so the value function collapses to a learned scalar baseline and
//! the advantage is the standardized reward minus that baseline. The
//! PPO machinery that still matters — and that distinguishes it from the
//! plain REINFORCE agent — is the **clipped importance ratio**: each
//! collected horizon is reused for several optimization epochs without
//! the policy running away from the data that produced it.
//!
//! The policy is the same factored categorical used by [`Reinforce`]:
//! independent softmax heads per design-space dimension, parameterized
//! tabularly or by a small MLP.
//!
//! [`Reinforce`]: crate::rl::Reinforce

use crate::nn::{entropy, sample_categorical, softmax, Mlp};
use archgym_core::agent::{Agent, HyperMap};
use archgym_core::env::StepResult;
use archgym_core::error::Result;
use archgym_core::seeded_rng;
use archgym_core::space::{Action, ParamSpace};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::collections::VecDeque;

#[derive(Debug)]
enum Policy {
    Tabular(Vec<Vec<f64>>),
    Mlp(Mlp),
}

#[derive(Debug, Clone)]
struct Sample {
    genes: Vec<usize>,
    logp_old: f64,
    reward: f64,
}

/// PPO agent with a clipped surrogate objective.
#[derive(Debug)]
pub struct Ppo {
    cards: Vec<usize>,
    rng: StdRng,
    policy: Policy,
    lr: f64,
    clip: f64,
    epochs: usize,
    horizon: usize,
    entropy_coef: f64,
    /// Learned scalar baseline (the degenerate value function).
    baseline: f64,
    /// log-probs recorded at proposal time, consumed in arrival order.
    pending_logp: VecDeque<(Vec<usize>, f64)>,
    buffer: Vec<Sample>,
    context: Vec<f64>,
    best_reward: f64,
    reward_mean: f64,
    reward_var: f64,
    reward_count: u64,
}

impl Ppo {
    /// Construct with explicit hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `lr`, `clip`, `epochs` or `horizon`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        space: ParamSpace,
        use_mlp: bool,
        hidden: usize,
        lr: f64,
        clip: f64,
        epochs: usize,
        horizon: usize,
        entropy_coef: f64,
        seed: u64,
    ) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!(clip > 0.0, "clip range must be positive");
        assert!(epochs > 0, "need at least one epoch");
        assert!(horizon > 0, "need a positive horizon");
        assert!(
            entropy_coef >= 0.0,
            "entropy coefficient must be non-negative"
        );
        let cards = space.cardinalities();
        let mut rng = seeded_rng(seed);
        let total: usize = cards.iter().sum();
        let policy = if use_mlp {
            Policy::Mlp(Mlp::new(&[cards.len() + 1, hidden, total], &mut rng))
        } else {
            Policy::Tabular(cards.iter().map(|&c| vec![0.0; c]).collect())
        };
        let context = vec![0.5; cards.len()];
        Ppo {
            cards,
            rng,
            policy,
            lr,
            clip,
            epochs,
            horizon,
            entropy_coef,
            baseline: 0.0,
            pending_logp: VecDeque::new(),
            buffer: Vec::new(),
            context,
            best_reward: f64::NEG_INFINITY,
            reward_mean: 0.0,
            reward_var: 1.0,
            reward_count: 0,
        }
    }

    /// Sensible defaults: tabular policy, lr 0.1, clip 0.2, 4 epochs over
    /// a 64-sample horizon.
    pub fn with_defaults(space: ParamSpace, seed: u64) -> Self {
        Ppo::new(space, false, 32, 0.1, 0.2, 4, 64, 0.01, seed)
    }

    /// Build from a hyperparameter map. Recognized keys (all optional):
    /// `lr`, `clip`, `epochs` (int), `horizon` (int), `entropy_coef`,
    /// `policy` (`"tabular"|"mlp"`), `hidden` (int).
    ///
    /// # Errors
    ///
    /// Returns an error when a present key has the wrong type or value.
    pub fn from_hyper(space: ParamSpace, hyper: &HyperMap, seed: u64) -> Result<Self> {
        let policy_name = hyper.text_or("policy", "tabular")?;
        let use_mlp = match policy_name {
            "tabular" => false,
            "mlp" => true,
            other => {
                return Err(archgym_core::ArchGymError::InvalidHyper(format!(
                    "unknown policy `{other}` (expected tabular|mlp)"
                )))
            }
        };
        Ok(Ppo::new(
            space,
            use_mlp,
            hyper.int_or("hidden", 32)? as usize,
            hyper.float_or("lr", 0.1)?,
            hyper.float_or("clip", 0.2)?,
            hyper.int_or("epochs", 4)? as usize,
            hyper.int_or("horizon", 64)? as usize,
            hyper.float_or("entropy_coef", 0.01)?,
            seed,
        ))
    }

    fn distributions(&mut self) -> Vec<Vec<f64>> {
        match &mut self.policy {
            Policy::Tabular(logits) => logits.iter().map(|z| softmax(z)).collect(),
            Policy::Mlp(mlp) => {
                let x = {
                    let mut x = self.context.clone();
                    x.push(1.0);
                    x
                };
                let flat = mlp.forward(&x);
                let mut out = Vec::with_capacity(self.cards.len());
                let mut offset = 0;
                for &c in &self.cards {
                    out.push(softmax(&flat[offset..offset + c]));
                    offset += c;
                }
                out
            }
        }
    }

    fn log_prob(dists: &[Vec<f64>], genes: &[usize]) -> f64 {
        dists
            .iter()
            .zip(genes)
            .map(|(p, &g)| p[g].max(1e-12).ln())
            .sum()
    }

    /// Current per-dimension policy distributions (diagnostic).
    pub fn policy_distributions(&mut self) -> Vec<Vec<f64>> {
        self.distributions()
    }

    fn standardize(&self, reward: f64) -> f64 {
        (reward - self.reward_mean) / self.reward_var.sqrt().max(1e-8)
    }

    fn update(&mut self) {
        let buffer = std::mem::take(&mut self.buffer);
        // Advantages: standardized reward minus the learned baseline.
        let advantages: Vec<f64> = buffer
            .iter()
            .map(|s| self.standardize(s.reward) - self.baseline)
            .collect();
        let mut order: Vec<usize> = (0..buffer.len()).collect();
        for _ in 0..self.epochs {
            order.shuffle(&mut self.rng);
            for &i in &order {
                let sample = &buffer[i];
                let advantage = advantages[i];
                let dists = self.distributions();
                let logp_new = Self::log_prob(&dists, &sample.genes);
                let ratio = (logp_new - sample.logp_old).exp();
                // Clipped surrogate: zero gradient when the ratio has
                // left the trust region in the advantage's direction.
                let inside = if advantage >= 0.0 {
                    ratio <= 1.0 + self.clip
                } else {
                    ratio >= 1.0 - self.clip
                };
                let scale = if inside { ratio * advantage } else { 0.0 };
                match &mut self.policy {
                    Policy::Tabular(logits) => {
                        for (d, probs) in dists.iter().enumerate() {
                            let h = entropy(probs);
                            let chosen = sample.genes[d];
                            for (v, &p) in probs.iter().enumerate() {
                                let grad_logp = f64::from(v == chosen) - p;
                                let grad_h = -p * (p.max(1e-12).ln() + h);
                                logits[d][v] +=
                                    self.lr * (scale * grad_logp + self.entropy_coef * grad_h);
                            }
                        }
                    }
                    Policy::Mlp(mlp) => {
                        let x = {
                            let mut x = self.context.clone();
                            x.push(1.0);
                            x
                        };
                        let _ = mlp.forward(&x);
                        let total: usize = self.cards.iter().sum();
                        let mut dlogits = vec![0.0; total];
                        let mut offset = 0;
                        for (d, probs) in dists.iter().enumerate() {
                            let h = entropy(probs);
                            let chosen = sample.genes[d];
                            for (v, &p) in probs.iter().enumerate() {
                                let grad_logp = f64::from(v == chosen) - p;
                                let grad_h = -p * (p.max(1e-12).ln() + h);
                                dlogits[offset + v] =
                                    scale * grad_logp + self.entropy_coef * grad_h;
                            }
                            offset += probs.len();
                        }
                        mlp.backward(&dlogits);
                        mlp.step(self.lr);
                    }
                }
            }
        }
        // Value (baseline) regression toward the batch's standardized
        // mean return.
        let target = buffer
            .iter()
            .map(|s| self.standardize(s.reward))
            .sum::<f64>()
            / buffer.len() as f64;
        self.baseline += 0.5 * (target - self.baseline);
    }
}

impl Agent for Ppo {
    fn name(&self) -> &str {
        "ppo"
    }

    fn propose(&mut self, max_batch: usize) -> Vec<Action> {
        let n = max_batch.max(1);
        let mut batch = Vec::with_capacity(n);
        for _ in 0..n {
            let dists = self.distributions();
            let genes: Vec<usize> = dists
                .iter()
                .map(|p| sample_categorical(p, &mut self.rng))
                .collect();
            let logp = Self::log_prob(&dists, &genes);
            self.pending_logp.push_back((genes.clone(), logp));
            batch.push(Action::new(genes));
        }
        batch
    }

    fn observe(&mut self, results: &[(Action, StepResult)]) {
        for (action, result) in results {
            // Welford running stats for reward standardization.
            self.reward_count += 1;
            let delta = result.reward - self.reward_mean;
            self.reward_mean += delta / self.reward_count as f64;
            self.reward_var += (delta * (result.reward - self.reward_mean) - self.reward_var)
                / self.reward_count as f64;

            if result.reward > self.best_reward {
                self.best_reward = result.reward;
            }
            // Recover the proposal-time log-prob (driver preserves order;
            // unmatched actions — e.g. replayed externally — fall back to
            // the current policy's log-prob).
            let logp_old = match self.pending_logp.pop_front() {
                Some((genes, logp)) if genes == action.as_slice() => logp,
                _ => {
                    let dists = self.distributions();
                    Self::log_prob(&dists, action.as_slice())
                }
            };
            self.buffer.push(Sample {
                genes: action.as_slice().to_vec(),
                logp_old,
                reward: result.reward,
            });
        }
        if self.buffer.len() >= self.horizon {
            self.update();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::env::{Environment, Observation};
    use archgym_core::search::{RunConfig, SearchLoop};
    use archgym_core::toy::PeakEnv;

    fn space(cards: &[usize]) -> ParamSpace {
        let mut b = ParamSpace::builder();
        for (i, &c) in cards.iter().enumerate() {
            b = b.int(&format!("p{i}"), 0, c as i64 - 1, 1);
        }
        b.build().unwrap()
    }

    #[test]
    fn proposals_are_valid_for_both_policies() {
        for use_mlp in [false, true] {
            let s = space(&[4, 6, 3]);
            let mut ppo = Ppo::new(s.clone(), use_mlp, 16, 0.1, 0.2, 2, 16, 0.01, 1);
            for a in ppo.propose(8) {
                s.validate(&a).unwrap();
            }
        }
    }

    #[test]
    fn ppo_concentrates_on_the_rewarded_arm() {
        let s = space(&[6]);
        let mut ppo = Ppo::new(s, false, 16, 0.3, 0.2, 4, 16, 0.0, 2);
        for _ in 0..40 {
            let batch = ppo.propose(16);
            let results: Vec<(Action, StepResult)> = batch
                .into_iter()
                .map(|a| {
                    let r = f64::from(a.index(0) == 4);
                    (a, StepResult::terminal(Observation::new(vec![r]), r))
                })
                .collect();
            ppo.observe(&results);
        }
        let probs = ppo.policy_distributions().remove(0);
        assert!(probs[4] > 0.6, "PPO failed to concentrate: {probs:?}");
    }

    #[test]
    fn ppo_solves_the_peak_with_budget() {
        let mut env = PeakEnv::new(&[12, 12], vec![9, 2]);
        let mut ppo = Ppo::with_defaults(env.space().clone(), 5);
        let result =
            SearchLoop::new(RunConfig::with_budget(2_500).batch(16)).run(&mut ppo, &mut env);
        assert!(
            result.best_reward > 0.45,
            "PPO best reward {} too low",
            result.best_reward
        );
    }

    #[test]
    fn clipping_bounds_the_per_epoch_policy_shift() {
        // With an absurd learning rate, an unclipped REINFORCE-style
        // update would immediately saturate the softmax; PPO's clip keeps
        // later epochs from compounding the shift on the same batch.
        let s = space(&[8]);
        let mut ppo = Ppo::new(s, false, 16, 2.0, 0.1, 8, 16, 0.0, 3);
        let batch = ppo.propose(16);
        let results: Vec<(Action, StepResult)> = batch
            .into_iter()
            .map(|a| {
                let r = f64::from(a.index(0) == 0) * 10.0;
                (a, StepResult::terminal(Observation::new(vec![r]), r))
            })
            .collect();
        ppo.observe(&results);
        let probs = ppo.policy_distributions().remove(0);
        let max_p = probs.iter().copied().fold(0.0f64, f64::max);
        assert!(
            max_p < 0.999,
            "policy saturated despite clipping: {probs:?}"
        );
        assert!(entropy(&probs) > 0.01);
    }

    #[test]
    fn from_hyper_round_trips() {
        let s = space(&[4]);
        let ppo = Ppo::from_hyper(
            s.clone(),
            &HyperMap::new()
                .with("lr", 0.05)
                .with("clip", 0.3)
                .with("epochs", 2i64)
                .with("horizon", 32i64)
                .with("policy", "mlp")
                .with("hidden", 8i64),
            0,
        )
        .unwrap();
        assert_eq!(ppo.clip, 0.3);
        assert_eq!(ppo.epochs, 2);
        assert_eq!(ppo.horizon, 32);
        assert!(matches!(ppo.policy, Policy::Mlp(_)));
        assert!(Ppo::from_hyper(s, &HyperMap::new().with("policy", "sac"), 0).is_err());
    }

    #[test]
    #[should_panic(expected = "clip range must be positive")]
    fn rejects_bad_clip() {
        let _ = Ppo::new(space(&[3]), false, 8, 0.1, 0.0, 1, 8, 0.0, 0);
    }

    #[test]
    fn unmatched_replayed_actions_do_not_panic() {
        let s = space(&[5]);
        let mut ppo = Ppo::with_defaults(s, 7);
        // Observe an action PPO never proposed.
        let foreign = Action::new(vec![3]);
        let result = StepResult::terminal(Observation::new(vec![1.0]), 1.0);
        ppo.observe(&[(foreign, result)]);
        assert_eq!(ppo.buffer.len(), 1);
    }
}
