//! REINFORCE policy-gradient reinforcement learning.
//!
//! Architecture DSE is a one-shot (contextual-bandit-like) decision, so
//! the policy is a **factored categorical** distribution: one softmax per
//! design-space dimension. Two parameterizations are provided:
//!
//! * [`PolicyKind::Tabular`] — raw logits per dimension, plain gradient
//!   ascent. Small, fast, and surprisingly strong.
//! * [`PolicyKind::Mlp`] — a small neural network (the paper's Fig. 2
//!   "NN policy") mapping a context vector — the normalized best design
//!   found so far — to all logits, trained with Adam.
//!
//! Rewards are standardized online (Welford) before computing advantages,
//! which tames the enormous dynamic range of target-ratio rewards. An
//! entropy bonus keeps exploration alive (Q3); its coefficient, the
//! learning rate and the network width are the lottery's sweep axes.

use crate::nn::{entropy, sample_categorical, softmax, Mlp};
use archgym_core::agent::{Agent, HyperMap};
use archgym_core::env::StepResult;
use archgym_core::error::{ArchGymError, Result};
use archgym_core::seeded_rng;
use archgym_core::space::{Action, ParamSpace};
use rand::rngs::StdRng;

/// Policy parameterization for [`Reinforce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Independent learnable logits per dimension.
    Tabular,
    /// A multilayer perceptron producing all logits from a context vector.
    Mlp {
        /// Hidden layer width.
        hidden: usize,
    },
}

impl PolicyKind {
    /// Parse from the sweep-grid spelling (`"tabular"` or `"mlp"`).
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::InvalidHyper`] for unknown names.
    pub fn parse(name: &str, hidden: usize) -> Result<Self> {
        match name {
            "tabular" => Ok(PolicyKind::Tabular),
            "mlp" => Ok(PolicyKind::Mlp { hidden }),
            other => Err(ArchGymError::InvalidHyper(format!(
                "unknown policy `{other}` (expected tabular|mlp)"
            ))),
        }
    }
}

#[derive(Debug)]
enum Policy {
    Tabular(Vec<Vec<f64>>),
    Mlp(Mlp),
}

/// Online mean/variance tracker (Welford) for reward standardization.
#[derive(Debug, Clone, Default)]
struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    fn update(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    fn std(&self) -> f64 {
        if self.count < 2 {
            1.0
        } else {
            (self.m2 / self.count as f64).sqrt().max(1e-8)
        }
    }
}

/// REINFORCE policy-gradient agent.
#[derive(Debug)]
pub struct Reinforce {
    space: ParamSpace,
    cards: Vec<usize>,
    rng: StdRng,
    policy: Policy,
    kind: PolicyKind,
    lr: f64,
    entropy_coef: f64,
    stats: RunningStats,
    context: Vec<f64>,
    best_reward: f64,
}

impl Reinforce {
    /// Construct with explicit hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `entropy_coef < 0`.
    pub fn new(space: ParamSpace, kind: PolicyKind, lr: f64, entropy_coef: f64, seed: u64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!(
            entropy_coef >= 0.0,
            "entropy coefficient must be non-negative"
        );
        let cards = space.cardinalities();
        let mut rng = seeded_rng(seed);
        let total_logits: usize = cards.iter().sum();
        let policy = match kind {
            PolicyKind::Tabular => Policy::Tabular(cards.iter().map(|&c| vec![0.0; c]).collect()),
            PolicyKind::Mlp { hidden } => {
                Policy::Mlp(Mlp::new(&[cards.len() + 1, hidden, total_logits], &mut rng))
            }
        };
        let context = vec![0.5; cards.len()];
        Reinforce {
            space,
            cards,
            rng,
            policy,
            kind,
            lr,
            entropy_coef,
            stats: RunningStats::default(),
            context,
            best_reward: f64::NEG_INFINITY,
        }
    }

    /// Sensible defaults: tabular policy, lr 0.08, entropy 0.02.
    pub fn with_defaults(space: ParamSpace, seed: u64) -> Self {
        Reinforce::new(space, PolicyKind::Tabular, 0.08, 0.02, seed)
    }

    /// Build from a hyperparameter map. Recognized keys (all optional):
    /// `lr` (float), `entropy_coef` (float), `policy`
    /// (`"tabular"|"mlp"`), `hidden` (int, MLP width).
    ///
    /// # Errors
    ///
    /// Returns an error when a present key has the wrong type or an
    /// unknown policy name.
    pub fn from_hyper(space: ParamSpace, hyper: &HyperMap, seed: u64) -> Result<Self> {
        let hidden = hyper.int_or("hidden", 32)? as usize;
        Ok(Reinforce::new(
            space,
            PolicyKind::parse(hyper.text_or("policy", "tabular")?, hidden)?,
            hyper.float_or("lr", 0.08)?,
            hyper.float_or("entropy_coef", 0.02)?,
            seed,
        ))
    }

    /// The policy parameterization in use.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// Per-dimension probability vectors under the current policy.
    fn distributions(&mut self) -> Vec<Vec<f64>> {
        match &mut self.policy {
            Policy::Tabular(logits) => logits.iter().map(|z| softmax(z)).collect(),
            Policy::Mlp(mlp) => {
                let x: Vec<f64> = {
                    let mut x = self.context.clone();
                    x.push(1.0);
                    x
                };
                let flat = mlp.forward(&x);
                let mut out = Vec::with_capacity(self.cards.len());
                let mut offset = 0;
                for &c in &self.cards {
                    out.push(softmax(&flat[offset..offset + c]));
                    offset += c;
                }
                out
            }
        }
    }
}

impl Agent for Reinforce {
    fn name(&self) -> &str {
        "rl"
    }

    fn propose(&mut self, max_batch: usize) -> Vec<Action> {
        let n = max_batch.max(1);
        let mut batch = Vec::with_capacity(n);
        for _ in 0..n {
            let dists = self.distributions();
            let genes: Vec<usize> = dists
                .iter()
                .map(|p| sample_categorical(p, &mut self.rng))
                .collect();
            batch.push(Action::new(genes));
        }
        batch
    }

    fn observe(&mut self, results: &[(Action, StepResult)]) {
        for (_, result) in results {
            self.stats.update(result.reward);
        }
        let mean = self.stats.mean;
        let std = self.stats.std();
        for (action, result) in results {
            let advantage = (result.reward - mean) / std;
            if result.reward > self.best_reward {
                self.best_reward = result.reward;
                self.context = self.space.normalize(action);
            }
            let dists = self.distributions();
            match &mut self.policy {
                Policy::Tabular(logits) => {
                    for (d, probs) in dists.iter().enumerate() {
                        let h = entropy(probs);
                        let chosen = action.index(d);
                        for (v, &p) in probs.iter().enumerate() {
                            let grad_logp = f64::from(v == chosen) - p;
                            let grad_h = -p * (p.max(1e-12).ln() + h);
                            logits[d][v] +=
                                self.lr * (advantage * grad_logp + self.entropy_coef * grad_h);
                        }
                    }
                }
                Policy::Mlp(mlp) => {
                    let x: Vec<f64> = {
                        let mut x = self.context.clone();
                        x.push(1.0);
                        x
                    };
                    // Re-run forward so the caches match this input.
                    let _ = mlp.forward(&x);
                    let total: usize = self.cards.iter().sum();
                    let mut dlogits = vec![0.0; total];
                    let mut offset = 0;
                    for (d, probs) in dists.iter().enumerate() {
                        let h = entropy(probs);
                        let chosen = action.index(d);
                        for (v, &p) in probs.iter().enumerate() {
                            let grad_logp = f64::from(v == chosen) - p;
                            let grad_h = -p * (p.max(1e-12).ln() + h);
                            dlogits[offset + v] =
                                advantage * grad_logp + self.entropy_coef * grad_h;
                        }
                        offset += probs.len();
                    }
                    mlp.backward(&dlogits);
                    mlp.step(self.lr);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::env::{Environment, Observation};
    use archgym_core::search::{RunConfig, SearchLoop};
    use archgym_core::toy::PeakEnv;

    fn space(cards: &[usize]) -> ParamSpace {
        let mut b = ParamSpace::builder();
        for (i, &c) in cards.iter().enumerate() {
            b = b.int(&format!("p{i}"), 0, c as i64 - 1, 1);
        }
        b.build().unwrap()
    }

    #[test]
    fn running_stats_match_batch_statistics() {
        let mut rs = RunningStats::default();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            rs.update(x);
        }
        assert!((rs.mean - 5.0).abs() < 1e-12);
        assert!((rs.std() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn proposals_are_valid() {
        for kind in [PolicyKind::Tabular, PolicyKind::Mlp { hidden: 16 }] {
            let s = space(&[4, 7, 2]);
            let mut rl = Reinforce::new(s.clone(), kind, 0.1, 0.01, 1);
            for a in rl.propose(8) {
                s.validate(&a).unwrap();
            }
        }
    }

    #[test]
    fn tabular_policy_concentrates_on_rewarded_action() {
        let s = space(&[6]);
        let mut rl = Reinforce::new(s, PolicyKind::Tabular, 0.2, 0.0, 2);
        for _ in 0..60 {
            let batch = rl.propose(8);
            let results: Vec<(Action, StepResult)> = batch
                .into_iter()
                .map(|a| {
                    let r = f64::from(a.index(0) == 3);
                    (a, StepResult::terminal(Observation::new(vec![r]), r))
                })
                .collect();
            rl.observe(&results);
        }
        let probs = rl.distributions().remove(0);
        assert!(probs[3] > 0.7, "policy failed to concentrate: {probs:?}");
    }

    #[test]
    fn mlp_policy_learns_the_same_bandit() {
        let s = space(&[5]);
        let mut rl = Reinforce::new(s, PolicyKind::Mlp { hidden: 16 }, 0.05, 0.0, 3);
        for _ in 0..120 {
            let batch = rl.propose(8);
            let results: Vec<(Action, StepResult)> = batch
                .into_iter()
                .map(|a| {
                    let r = f64::from(a.index(0) == 2);
                    (a, StepResult::terminal(Observation::new(vec![r]), r))
                })
                .collect();
            rl.observe(&results);
        }
        let probs = rl.distributions().remove(0);
        assert!(probs[2] > 0.5, "MLP policy probs: {probs:?}");
    }

    #[test]
    fn rl_is_sample_hungry_but_converges_with_budget() {
        // The Fig. 7 story: poor at tiny budgets, strong at large ones.
        let run = |budget: u64| {
            let mut env = PeakEnv::new(&[10, 10], vec![7, 2]);
            let mut rl = Reinforce::with_defaults(env.space().clone(), 11);
            SearchLoop::new(RunConfig::with_budget(budget).batch(16))
                .run(&mut rl, &mut env)
                .best_reward
        };
        let large = run(3000);
        assert!(large > 0.45, "large-budget RL reward {large}");
    }

    #[test]
    fn entropy_bonus_keeps_distribution_broader() {
        let train = |coef: f64| {
            let s = space(&[6]);
            let mut rl = Reinforce::new(s, PolicyKind::Tabular, 0.2, coef, 5);
            for _ in 0..40 {
                let batch = rl.propose(8);
                let results: Vec<(Action, StepResult)> = batch
                    .into_iter()
                    .map(|a| {
                        let r = f64::from(a.index(0) == 0);
                        (a, StepResult::terminal(Observation::new(vec![r]), r))
                    })
                    .collect();
                rl.observe(&results);
            }
            entropy(&rl.distributions()[0])
        };
        assert!(train(0.5) > train(0.0), "entropy bonus had no effect");
    }

    #[test]
    fn higher_learning_rate_concentrates_the_policy_faster() {
        let final_entropy = |lr: f64| {
            let s = space(&[8]);
            let mut rl = Reinforce::new(s, PolicyKind::Tabular, lr, 0.0, 9);
            for _ in 0..25 {
                let batch = rl.propose(8);
                let results: Vec<(Action, StepResult)> = batch
                    .into_iter()
                    .map(|a| {
                        let r = f64::from(a.index(0) == 5);
                        (a, StepResult::terminal(Observation::new(vec![r]), r))
                    })
                    .collect();
                rl.observe(&results);
            }
            entropy(&rl.distributions()[0])
        };
        let fast = final_entropy(0.3);
        let slow = final_entropy(0.005);
        assert!(
            fast < slow,
            "lr=0.3 entropy {fast} should be below lr=0.005 entropy {slow}"
        );
    }

    #[test]
    fn from_hyper_parses_policy_kinds() {
        let s = space(&[3]);
        let tab = Reinforce::from_hyper(s.clone(), &HyperMap::new().with("policy", "tabular"), 0)
            .unwrap();
        assert_eq!(tab.kind(), PolicyKind::Tabular);
        let mlp = Reinforce::from_hyper(
            s.clone(),
            &HyperMap::new().with("policy", "mlp").with("hidden", 8i64),
            0,
        )
        .unwrap();
        assert_eq!(mlp.kind(), PolicyKind::Mlp { hidden: 8 });
        assert!(Reinforce::from_hyper(s, &HyperMap::new().with("policy", "dqn"), 0).is_err());
    }
}
