//! Simulated annealing — a worked example of the paper's Section 4
//! recipe for integrating a *new* search algorithm into ArchGym.
//!
//! Answering the three standardization questions:
//!
//! * **Q1 (how are parameters selected?)** — the policy is the current
//!   incumbent design plus a temperature-scaled perturbation kernel;
//!   [`Agent::propose`] emits perturbed neighbors.
//! * **Q2 (how is feedback used?)** — [`Agent::observe`] applies the
//!   Metropolis acceptance rule: better designs always replace the
//!   incumbent, worse ones with probability `exp(Δ/T)`.
//! * **Q3 (exploration vs exploitation?)** — the initial temperature and
//!   cooling rate are the exposed hyperparameters; high temperature means
//!   random-walk behaviour, low temperature means hill climbing.
//!
//! Nothing else is needed: the standard [`SearchLoop`] drives it, its
//! trajectories land in the standard dataset format, and the sweep
//! machinery can lottery its hyperparameters like any seeded agent.
//!
//! [`SearchLoop`]: archgym_core::search::SearchLoop

use archgym_core::agent::{Agent, HyperMap};
use archgym_core::env::StepResult;
use archgym_core::error::Result;
use archgym_core::seeded_rng;
use archgym_core::space::{Action, ParamSpace};
use rand::rngs::StdRng;
use rand::Rng;

/// Simulated-annealing agent over an index-encoded space.
#[derive(Debug)]
pub struct SimulatedAnnealing {
    cards: Vec<usize>,
    rng: StdRng,
    temperature: f64,
    cooling: f64,
    /// Reward scale estimate for the Metropolis criterion (EWMA of
    /// absolute reward deltas).
    delta_scale: f64,
    incumbent: Option<(Vec<usize>, f64)>,
}

impl SimulatedAnnealing {
    /// Construct with explicit hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics if `initial_temperature <= 0` or `cooling` is outside
    /// `(0, 1]`.
    pub fn new(space: ParamSpace, initial_temperature: f64, cooling: f64, seed: u64) -> Self {
        assert!(initial_temperature > 0.0, "temperature must be positive");
        assert!(cooling > 0.0 && cooling <= 1.0, "cooling must be in (0, 1]");
        SimulatedAnnealing {
            cards: space.cardinalities(),
            rng: seeded_rng(seed),
            temperature: initial_temperature,
            cooling,
            delta_scale: 1.0,
            incumbent: None,
        }
    }

    /// Sensible defaults: T₀ = 1.0, cooling 0.98 per observation round.
    pub fn with_defaults(space: ParamSpace, seed: u64) -> Self {
        SimulatedAnnealing::new(space, 1.0, 0.98, seed)
    }

    /// Build from a hyperparameter map. Recognized keys (all optional):
    /// `temperature` (float), `cooling` (float).
    ///
    /// # Errors
    ///
    /// Returns an error when a present key has the wrong type.
    pub fn from_hyper(space: ParamSpace, hyper: &HyperMap, seed: u64) -> Result<Self> {
        Ok(SimulatedAnnealing::new(
            space,
            hyper.float_or("temperature", 1.0)?,
            hyper.float_or("cooling", 0.98)?,
            seed,
        ))
    }

    /// Current temperature (diagnostic).
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    fn random_genes(&mut self) -> Vec<usize> {
        self.cards
            .iter()
            .map(|&c| self.rng.gen_range(0..c))
            .collect()
    }

    /// Perturb the incumbent: the number of mutated dimensions scales
    /// with temperature (hot → many, cold → one).
    fn neighbor(&mut self, base: &[usize]) -> Vec<usize> {
        let mut genes = base.to_vec();
        let hot_frac = self.temperature.min(1.0);
        let n_mutations = 1 + (hot_frac * (genes.len() - 1) as f64).round() as usize;
        for _ in 0..n_mutations {
            let d = self.rng.gen_range(0..genes.len());
            if self.cards[d] == 1 {
                continue;
            }
            // Local ±1 step when cold, uniform resample when hot.
            genes[d] = if self.rng.gen_bool(hot_frac.clamp(0.05, 0.95)) {
                self.rng.gen_range(0..self.cards[d])
            } else if self.rng.gen_bool(0.5) {
                (genes[d] + 1).min(self.cards[d] - 1)
            } else {
                genes[d].saturating_sub(1)
            };
        }
        genes
    }
}

impl Agent for SimulatedAnnealing {
    fn name(&self) -> &str {
        "sa"
    }

    fn propose(&mut self, max_batch: usize) -> Vec<Action> {
        let n = max_batch.max(1);
        let base = self.incumbent.as_ref().map(|(g, _)| g.clone());
        (0..n)
            .map(|_| match &base {
                None => Action::new(self.random_genes()),
                Some(genes) => Action::new(self.neighbor(genes)),
            })
            .collect()
    }

    fn observe(&mut self, results: &[(Action, StepResult)]) {
        for (action, result) in results {
            match &self.incumbent {
                None => {
                    self.incumbent = Some((action.as_slice().to_vec(), result.reward));
                }
                Some((_, current)) => {
                    let delta = result.reward - current;
                    self.delta_scale = 0.95 * self.delta_scale + 0.05 * delta.abs().max(1e-12);
                    let accept = delta >= 0.0 || {
                        let normalized = delta / self.delta_scale;
                        self.rng
                            .gen_bool((normalized / self.temperature).exp().clamp(0.0, 1.0))
                    };
                    if accept {
                        self.incumbent = Some((action.as_slice().to_vec(), result.reward));
                    }
                }
            }
        }
        self.temperature = (self.temperature * self.cooling).max(1e-4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::env::{Environment, Observation};
    use archgym_core::search::{RunConfig, SearchLoop};
    use archgym_core::toy::{DecoyEnv, PeakEnv};

    fn space(cards: &[usize]) -> ParamSpace {
        let mut b = ParamSpace::builder();
        for (i, &c) in cards.iter().enumerate() {
            b = b.int(&format!("p{i}"), 0, c as i64 - 1, 1);
        }
        b.build().unwrap()
    }

    #[test]
    fn temperature_cools_monotonically() {
        let mut sa = SimulatedAnnealing::new(space(&[4]), 2.0, 0.9, 1);
        let mut last = sa.temperature();
        for _ in 0..20 {
            let batch = sa.propose(4);
            let results: Vec<(Action, StepResult)> = batch
                .into_iter()
                .map(|a| (a, StepResult::terminal(Observation::new(vec![0.0]), 0.0)))
                .collect();
            sa.observe(&results);
            assert!(sa.temperature() <= last);
            last = sa.temperature();
        }
        assert!(last < 0.5);
    }

    #[test]
    fn sa_climbs_to_the_peak() {
        let mut env = PeakEnv::new(&[20, 20, 20], vec![14, 3, 9]);
        let mut sa = SimulatedAnnealing::with_defaults(env.space().clone(), 4);
        let result = SearchLoop::new(RunConfig::with_budget(1_200).batch(8)).run(&mut sa, &mut env);
        assert!(
            result.best_reward > 0.45,
            "SA best reward {} too low",
            result.best_reward
        );
    }

    #[test]
    fn sa_escapes_the_decoy_more_often_hot_than_cold() {
        // Q3 in action: a hot schedule explores past the broad decoy
        // ridge toward the sharp global peak more reliably than a frozen
        // one started cold.
        // Budget must be long enough for the hot schedule to cool back
        // into exploitation after its exploration phase, and the seed
        // pool wide enough to average out per-seed luck; every seed is
        // fixed, so the comparison is fully deterministic.
        let score = |t0: f64, seed: u64| {
            let mut env = DecoyEnv::new(&[24, 24], vec![20, 20], vec![3, 3], 0.55);
            let mut sa = SimulatedAnnealing::new(env.space().clone(), t0, 0.99, seed);
            SearchLoop::new(RunConfig::with_budget(800).batch(8))
                .run(&mut sa, &mut env)
                .best_reward
        };
        let hot: f64 = (0..16).map(|s| score(2.0, s)).sum::<f64>() / 16.0;
        let cold: f64 = (0..16).map(|s| score(1e-3, s)).sum::<f64>() / 16.0;
        assert!(
            hot >= cold * 0.95,
            "hot schedule ({hot}) should not lose to frozen ({cold})"
        );
    }

    #[test]
    fn from_hyper_and_validation() {
        let sa = SimulatedAnnealing::from_hyper(
            space(&[4]),
            &HyperMap::new()
                .with("temperature", 3.0)
                .with("cooling", 0.5),
            0,
        )
        .unwrap();
        assert_eq!(sa.temperature(), 3.0);
        assert!(SimulatedAnnealing::from_hyper(
            space(&[4]),
            &HyperMap::new().with("temperature", "hot"),
            0
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "cooling must be in (0, 1]")]
    fn rejects_bad_cooling() {
        let _ = SimulatedAnnealing::new(space(&[4]), 1.0, 1.5, 0);
    }

    #[test]
    fn proposals_are_valid_before_and_after_feedback() {
        let s = space(&[5, 9, 2]);
        let mut sa = SimulatedAnnealing::with_defaults(s.clone(), 8);
        let batch = sa.propose(6);
        for a in &batch {
            s.validate(a).unwrap();
        }
        let results: Vec<(Action, StepResult)> = batch
            .into_iter()
            .enumerate()
            .map(|(i, a)| {
                (
                    a,
                    StepResult::terminal(Observation::new(vec![i as f64]), i as f64),
                )
            })
            .collect();
        sa.observe(&results);
        for a in sa.propose(6) {
            s.validate(&a).unwrap();
        }
    }
}
