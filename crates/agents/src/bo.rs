//! Gaussian-process Bayesian optimization.
//!
//! The policy is a **surrogate model** (Fig. 2): a GP with an RBF kernel
//! over the design space's unit-hypercube encoding. Candidates are scored
//! by an acquisition function — expected improvement, upper confidence
//! bound, or probability of improvement — whose exploration appetite is
//! the agent's Q3 knob. The GP history is capped because fitting is cubic
//! in the number of observations (the cost the paper calls out in
//! Section 2).

use crate::linalg::{sq_dist, Cholesky, Matrix};
use archgym_core::agent::{Agent, HyperMap};
use archgym_core::env::StepResult;
use archgym_core::error::{ArchGymError, Result};
use archgym_core::seeded_rng;
use archgym_core::space::{Action, ParamSpace};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

/// Acquisition functions for [`BayesOpt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquisition {
    /// Expected improvement over the incumbent (default).
    Ei,
    /// Upper confidence bound `μ + κ·σ`.
    Ucb,
    /// Probability of improvement.
    Pi,
}

impl Acquisition {
    /// Parse from the sweep-grid spelling (`"ei"`, `"ucb"`, `"pi"`).
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::InvalidHyper`] for unknown names.
    pub fn parse(name: &str) -> Result<Self> {
        match name {
            "ei" => Ok(Acquisition::Ei),
            "ucb" => Ok(Acquisition::Ucb),
            "pi" => Ok(Acquisition::Pi),
            other => Err(ArchGymError::InvalidHyper(format!(
                "unknown acquisition `{other}` (expected ei|ucb|pi)"
            ))),
        }
    }
}

/// Standard normal probability density.
fn norm_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution (Abramowitz–Stegun 7.1.26 erf).
fn norm_cdf(x: f64) -> f64 {
    let z = x / std::f64::consts::SQRT_2;
    let sign = if z < 0.0 { -1.0 } else { 1.0 };
    let z = z.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * z);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf = sign * (1.0 - poly * (-z * z).exp());
    0.5 * (1.0 + erf)
}

struct GpFit {
    chol: Cholesky,
    alpha: Vec<f64>,
    /// Target standardization constants; predictions stay standardized
    /// inside the agent, but tests de-standardize to check the GP.
    #[allow(dead_code)]
    y_mean: f64,
    #[allow(dead_code)]
    y_std: f64,
    best_std: f64,
}

/// Gaussian-process Bayesian optimization agent.
#[derive(Debug)]
pub struct BayesOpt {
    space: ParamSpace,
    rng: StdRng,
    length_scale: f64,
    signal_var: f64,
    noise_var: f64,
    acquisition: Acquisition,
    kappa: f64,
    xi: f64,
    n_init: usize,
    candidates: usize,
    max_history: usize,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    seen: HashSet<Vec<usize>>,
}

impl BayesOpt {
    /// Construct with explicit hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics on non-positive kernel parameters, zero initial design, or a
    /// zero candidate pool.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        space: ParamSpace,
        length_scale: f64,
        noise_var: f64,
        acquisition: Acquisition,
        kappa: f64,
        xi: f64,
        n_init: usize,
        candidates: usize,
        seed: u64,
    ) -> Self {
        assert!(length_scale > 0.0, "length scale must be positive");
        assert!(noise_var > 0.0, "noise variance must be positive");
        assert!(n_init > 0, "need a non-empty initial design");
        assert!(candidates > 0, "need a non-empty candidate pool");
        BayesOpt {
            space,
            rng: seeded_rng(seed),
            length_scale,
            signal_var: 1.0,
            noise_var,
            acquisition,
            kappa,
            xi,
            n_init,
            candidates,
            max_history: 192,
            xs: Vec::new(),
            ys: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// Sensible defaults: EI, length scale 0.25, noise 1e-4, 8 initial
    /// random designs, 256 candidates per round.
    pub fn with_defaults(space: ParamSpace, seed: u64) -> Self {
        BayesOpt::new(space, 0.25, 1e-4, Acquisition::Ei, 2.0, 0.01, 8, 256, seed)
    }

    /// Build from a hyperparameter map. Recognized keys (all optional):
    /// `length_scale` (float), `noise` (float), `acquisition`
    /// (`"ei"|"ucb"|"pi"`), `kappa` (float), `xi` (float), `n_init` (int),
    /// `candidates` (int).
    ///
    /// # Errors
    ///
    /// Returns an error when a present key has the wrong type or an
    /// unknown acquisition name.
    pub fn from_hyper(space: ParamSpace, hyper: &HyperMap, seed: u64) -> Result<Self> {
        Ok(BayesOpt::new(
            space,
            hyper.float_or("length_scale", 0.25)?,
            hyper.float_or("noise", 1e-4)?,
            Acquisition::parse(hyper.text_or("acquisition", "ei")?)?,
            hyper.float_or("kappa", 2.0)?,
            hyper.float_or("xi", 0.01)?,
            hyper.int_or("n_init", 8)? as usize,
            hyper.int_or("candidates", 256)? as usize,
            seed,
        ))
    }

    /// Number of observations currently held by the surrogate.
    pub fn history_len(&self) -> usize {
        self.ys.len()
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        self.signal_var * (-sq_dist(a, b) / (2.0 * self.length_scale * self.length_scale)).exp()
    }

    fn fit(&mut self) -> Option<GpFit> {
        let n = self.ys.len();
        if n == 0 {
            return None;
        }
        let y_mean = self.ys.iter().sum::<f64>() / n as f64;
        let y_var = self.ys.iter().map(|y| (y - y_mean).powi(2)).sum::<f64>() / n as f64;
        let y_std = y_var.sqrt().max(1e-12);
        let ys_std: Vec<f64> = self.ys.iter().map(|y| (y - y_mean) / y_std).collect();
        let best_std = ys_std.iter().copied().fold(f64::NEG_INFINITY, f64::max);

        let mut jitter = self.noise_var;
        for _ in 0..6 {
            let k = Matrix::from_fn(n, n, |i, j| {
                self.kernel(&self.xs[i], &self.xs[j]) + if i == j { jitter } else { 0.0 }
            });
            if let Some(chol) = k.cholesky() {
                let alpha = chol.solve(&ys_std);
                return Some(GpFit {
                    chol,
                    alpha,
                    y_mean,
                    y_std,
                    best_std,
                });
            }
            jitter *= 10.0;
        }
        None
    }

    fn predict(&self, fit: &GpFit, x: &[f64]) -> (f64, f64) {
        let k: Vec<f64> = self.xs.iter().map(|xi| self.kernel(xi, x)).collect();
        let mean = k.iter().zip(&fit.alpha).map(|(a, b)| a * b).sum::<f64>();
        let v = fit.chol.solve_lower(&k);
        let var = (self.signal_var - v.iter().map(|x| x * x).sum::<f64>()).max(1e-12);
        (mean, var.sqrt())
    }

    fn score(&self, fit: &GpFit, mean: f64, std: f64) -> f64 {
        match self.acquisition {
            Acquisition::Ucb => mean + self.kappa * std,
            Acquisition::Ei => {
                let gamma = (mean - fit.best_std - self.xi) / std;
                std * (gamma * norm_cdf(gamma) + norm_pdf(gamma))
            }
            Acquisition::Pi => {
                let gamma = (mean - fit.best_std - self.xi) / std;
                norm_cdf(gamma)
            }
        }
    }

    fn candidate_pool(&mut self) -> Vec<Action> {
        let mut pool = Vec::with_capacity(self.candidates);
        let n_random = self.candidates * 3 / 4;
        for _ in 0..n_random {
            pool.push(self.space.sample(&mut self.rng));
        }
        // Local perturbations of the incumbent best.
        if let Some(best_idx) = self
            .ys
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN reward"))
            .map(|(i, _)| i)
        {
            let base = self.space.denormalize(&self.xs[best_idx]);
            let cards = self.space.cardinalities();
            while pool.len() < self.candidates {
                let mut genes = base.as_slice().to_vec();
                let d = self.rng.gen_range(0..genes.len());
                genes[d] = self.rng.gen_range(0..cards[d]);
                pool.push(Action::new(genes));
            }
        }
        pool
    }
}

impl Agent for BayesOpt {
    fn name(&self) -> &str {
        "bo"
    }

    fn propose(&mut self, max_batch: usize) -> Vec<Action> {
        // Initial space-filling design.
        if self.ys.len() < self.n_init {
            let n = (self.n_init - self.ys.len()).min(max_batch).max(1);
            return (0..n).map(|_| self.space.sample(&mut self.rng)).collect();
        }
        let Some(fit) = self.fit() else {
            // Surrogate is numerically unusable: fall back to random.
            return vec![self.space.sample(&mut self.rng)];
        };
        let pool = self.candidate_pool();
        let mut scored: Vec<(f64, Action)> = pool
            .into_iter()
            .map(|a| {
                let x = self.space.normalize(&a);
                let (mean, std) = self.predict(&fit, &x);
                (self.score(&fit, mean, std), a)
            })
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("NaN acquisition"));
        let batch = max_batch.clamp(1, 4);
        let mut out = Vec::with_capacity(batch);
        for (_, action) in scored {
            if out.len() >= batch {
                break;
            }
            if !self.seen.contains(action.as_slice()) && !out.contains(&action) {
                out.push(action);
            }
        }
        if out.is_empty() {
            out.push(self.space.sample(&mut self.rng));
        }
        out
    }

    fn observe(&mut self, results: &[(Action, StepResult)]) {
        for (action, result) in results {
            self.seen.insert(action.as_slice().to_vec());
            self.xs.push(self.space.normalize(action));
            self.ys.push(result.reward);
        }
        // Cap the history: keep the incumbent best plus the most recent.
        if self.ys.len() > self.max_history {
            let best = self
                .ys
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN reward"))
                .map(|(i, _)| i)
                .expect("non-empty history");
            let start = self.ys.len() - self.max_history + 1;
            let mut xs = vec![self.xs[best].clone()];
            let mut ys = vec![self.ys[best]];
            for i in start.max(1)..self.ys.len() {
                if i != best {
                    xs.push(self.xs[i].clone());
                    ys.push(self.ys[i]);
                }
            }
            self.xs = xs;
            self.ys = ys;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archgym_core::env::{Environment, Observation};
    use archgym_core::search::{RunConfig, SearchLoop};
    use archgym_core::toy::PeakEnv;

    fn space(cards: &[usize]) -> ParamSpace {
        let mut b = ParamSpace::builder();
        for (i, &c) in cards.iter().enumerate() {
            b = b.int(&format!("p{i}"), 0, c as i64 - 1, 1);
        }
        b.build().unwrap()
    }

    #[test]
    fn norm_cdf_matches_known_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((norm_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(norm_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn initial_design_is_random_and_valid() {
        let s = space(&[6, 6]);
        let mut bo = BayesOpt::with_defaults(s.clone(), 1);
        let batch = bo.propose(16);
        assert_eq!(batch.len(), 8); // n_init
        for a in &batch {
            s.validate(a).unwrap();
        }
    }

    #[test]
    fn gp_prediction_interpolates_observations() {
        let s = space(&[11]);
        let mut bo = BayesOpt::new(s, 0.2, 1e-6, Acquisition::Ei, 2.0, 0.0, 2, 64, 2);
        // Observe a linear function y = x/10.
        let results: Vec<(Action, StepResult)> = (0..11)
            .map(|i| {
                let a = Action::new(vec![i]);
                let y = i as f64 / 10.0;
                (a, StepResult::terminal(Observation::new(vec![y]), y))
            })
            .collect();
        bo.observe(&results);
        let fit = bo.fit().unwrap();
        for i in [0usize, 5, 10] {
            let x = bo.space.normalize(&Action::new(vec![i]));
            let (mean_std, std) = bo.predict(&fit, &x);
            let mean = mean_std * fit.y_std + fit.y_mean;
            assert!(
                (mean - i as f64 / 10.0).abs() < 0.05,
                "mean at {i} was {mean}"
            );
            assert!(std < 0.2, "posterior std {std} too wide at data");
        }
    }

    #[test]
    fn bo_finds_peak_sample_efficiently() {
        let mut env = PeakEnv::new(&[20, 20], vec![13, 4]);
        let mut bo = BayesOpt::with_defaults(env.space().clone(), 5);
        let result = SearchLoop::new(RunConfig::with_budget(120).batch(4)).run(&mut bo, &mut env);
        assert!(
            result.best_reward > 0.45,
            "BO best reward {} too low",
            result.best_reward
        );
    }

    #[test]
    fn proposals_avoid_already_seen_points() {
        let s = space(&[3]);
        let mut bo = BayesOpt::new(s, 0.3, 1e-4, Acquisition::Ucb, 2.0, 0.0, 1, 32, 3);
        // Mark two of the three points as seen with low reward.
        let seen: Vec<(Action, StepResult)> = [0usize, 1]
            .iter()
            .map(|&i| {
                (
                    Action::new(vec![i]),
                    StepResult::terminal(Observation::new(vec![0.0]), 0.0),
                )
            })
            .collect();
        bo.observe(&seen);
        let batch = bo.propose(4);
        assert!(batch.iter().all(|a| a.index(0) == 2), "proposed {batch:?}");
    }

    #[test]
    fn history_cap_keeps_best() {
        let s = space(&[50]);
        let mut bo = BayesOpt::with_defaults(s, 4);
        bo.max_history = 10;
        // The best point (reward 100) arrives early, then 50 mediocre ones.
        let mk = |i: usize, r: f64| {
            (
                Action::new(vec![i % 50]),
                StepResult::terminal(Observation::new(vec![r]), r),
            )
        };
        bo.observe(&[mk(7, 100.0)]);
        for i in 0..50 {
            bo.observe(&[mk(i, 1.0)]);
        }
        assert!(bo.history_len() <= 10);
        assert!(bo.ys.contains(&100.0), "incumbent best evicted");
    }

    #[test]
    fn warm_started_bo_skips_its_initial_random_design() {
        use archgym_core::agent::warm_start;
        use archgym_core::search::{RunConfig, SearchLoop};
        use archgym_core::trajectory::{Dataset, Transition};
        // Log exploration with a random walker on the peak landscape.
        let mut env = PeakEnv::new(&[15, 15], vec![4, 11]);
        let mut walker = archgym_core::agent::RandomWalker::new(env.space().clone(), 2);
        let logged: Dataset = walker
            .propose(60)
            .into_iter()
            .map(|a| {
                let r = env.step(&a);
                Transition::new("peak", "rw", a, &r)
            })
            .collect();
        // A warm-started BO holds that history before its first proposal
        // and therefore goes straight to surrogate-guided candidates.
        let mut bo = BayesOpt::with_defaults(env.space().clone(), 4);
        warm_start(&mut bo, &logged, 16);
        assert_eq!(bo.history_len(), 60);
        // Sharpest possible design-skip check: a cold BO with the SAME
        // seed spends its first batch on the random initial design. If
        // the warm one skipped that phase, its first batch cannot equal
        // the cold one's (identical rng state, different code path) —
        // and the guided path filters `seen`, so no proposal may repeat
        // a logged action either.
        let mut cold = BayesOpt::with_defaults(env.space().clone(), 4);
        let warm_batch = bo.propose(4);
        let cold_batch = cold.propose(4);
        assert_ne!(
            warm_batch, cold_batch,
            "warm-started BO replayed the cold initial design"
        );
        let logged_actions: std::collections::HashSet<&[usize]> =
            logged.iter().map(|t| t.action.as_slice()).collect();
        for a in &warm_batch {
            env.space().validate(a).unwrap();
            assert!(
                !logged_actions.contains(a.as_slice()),
                "guided proposal repeated a logged action: {a:?}"
            );
        }
        // Guided samples on top of 60 replayed ones must, on average
        // across surrogate seeds, at least hold the walker's high-water
        // mark (deterministic: every seed below is fixed).
        let logged_best = logged
            .iter()
            .map(|t| t.reward)
            .fold(f64::NEG_INFINITY, f64::max);
        let mean_best: f64 = (0..8)
            .map(|seed| {
                let mut warm = BayesOpt::with_defaults(env.space().clone(), seed);
                warm_start(&mut warm, &logged, 16);
                let mut fresh = PeakEnv::new(&[15, 15], vec![4, 11]);
                SearchLoop::new(RunConfig::with_budget(20).batch(4))
                    .run(&mut warm, &mut fresh)
                    .best_reward
            })
            .sum::<f64>()
            / 8.0;
        assert!(
            mean_best >= logged_best * 0.9,
            "warm-started BO mean best {mean_best} fell below the \
             logged high-water mark {logged_best}"
        );
    }

    #[test]
    fn acquisition_parse() {
        assert_eq!(Acquisition::parse("ei").unwrap(), Acquisition::Ei);
        assert_eq!(Acquisition::parse("ucb").unwrap(), Acquisition::Ucb);
        assert_eq!(Acquisition::parse("pi").unwrap(), Acquisition::Pi);
        assert!(Acquisition::parse("nope").is_err());
    }

    #[test]
    fn from_hyper_reads_keys() {
        let s = space(&[4]);
        let hyper = HyperMap::new()
            .with("length_scale", 0.5)
            .with("acquisition", "ucb")
            .with("kappa", 3.0)
            .with("n_init", 2i64);
        let bo = BayesOpt::from_hyper(s, &hyper, 0).unwrap();
        assert_eq!(bo.acquisition, Acquisition::Ucb);
        assert_eq!(bo.n_init, 2);
        assert_eq!(bo.kappa, 3.0);
    }
}
