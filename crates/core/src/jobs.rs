//! Multi-tenant job scheduling primitives for the `archgymd` service.
//!
//! The daemon separates three concerns (see `DESIGN.md`, "Service layer"):
//! the **scheduler** (this module) decides *which* accepted job runs next,
//! the **worker fleet** (in `archgymd`) decides *where* it runs, and the
//! **results store** persists specs, journals, and outcomes. Keeping the
//! scheduler a pure in-memory state machine — no threads, no clocks, no
//! I/O — makes admission control and quota behaviour testable
//! deterministically, with no sleeps.
//!
//! Admission control is two-layered: a global bounded queue protects the
//! daemon, and per-tenant quotas (max queued, max running) stop one
//! tenant's flood from starving another's single job. A rejected submit
//! carries an explicit `retry_after_ms` hint so clients can back off.

use crate::codec::{parse_json, push_json_str, Json};
use crate::error::{ArchGymError, Result};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a submitted job. Rendered as `job-<n>`; the counter is
/// monotonic within a daemon's state directory, surviving restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

impl JobId {
    /// Parse the `job-<n>` form produced by [`Display`](fmt::Display).
    pub fn parse(text: &str) -> Option<JobId> {
        let digits = text.strip_prefix("job-")?;
        digits.parse::<u64>().ok().map(JobId)
    }
}

/// The kind of work a job runs, mirroring the CLI's offline subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// A single agent searching one environment ([`SearchLoop`](crate::search::SearchLoop)).
    Search,
    /// One agent across several seeds ([`Sweep`](crate::sweep::Sweep)).
    Sweep,
    /// Several agents raced on one environment, one journaled run each.
    Compare,
    /// The full agent × hyperparameter roster raced online under
    /// successive halving on one shared budget
    /// ([`Race`](crate::race::Race)); lanes journal per rung for
    /// bit-identical crash resume.
    Race,
}

impl JobKind {
    /// The wire name of this kind.
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Search => "search",
            JobKind::Sweep => "sweep",
            JobKind::Compare => "compare",
            JobKind::Race => "race",
        }
    }

    /// Parse a wire name back into a kind.
    pub fn parse(name: &str) -> Result<JobKind> {
        match name {
            "search" => Ok(JobKind::Search),
            "sweep" => Ok(JobKind::Sweep),
            "compare" => Ok(JobKind::Compare),
            "race" => Ok(JobKind::Race),
            other => Err(ArchGymError::InvalidConfig(format!(
                "unknown job kind '{other}' (expected search|sweep|compare|race)"
            ))),
        }
    }
}

/// Lifecycle of a job inside the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting for a worker (admission passed).
    Queued,
    /// Claimed by a worker; a journal is being written.
    Running,
    /// Finished successfully; final result persisted.
    Done,
    /// The run itself errored; the message is kept in the results store.
    Failed,
    /// Cancelled by a client before or during execution.
    Cancelled,
    /// Exceeded its [`JobSpec::deadline_ms`] and was stopped at a batch
    /// boundary; the best-so-far result is persisted like any outcome.
    TimedOut,
}

impl JobState {
    /// The wire name of this state.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::TimedOut => "timed-out",
        }
    }

    /// Parse a wire name back into a state.
    pub fn parse(name: &str) -> Result<JobState> {
        match name {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "done" => Ok(JobState::Done),
            "failed" => Ok(JobState::Failed),
            "cancelled" => Ok(JobState::Cancelled),
            "timed-out" => Ok(JobState::TimedOut),
            other => Err(ArchGymError::InvalidConfig(format!(
                "unknown job state '{other}'"
            ))),
        }
    }

    /// Whether the job can make no further progress.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled | JobState::TimedOut
        )
    }
}

/// A job submission: what to run and with what budget. This is the unit
/// the daemon journals per job ID, so a restarted daemon can rebuild and
/// resume every accepted job bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// What kind of work to run.
    pub kind: JobKind,
    /// Environment spec, e.g. `dram/stream` or `timeloop/resnet`.
    pub env: String,
    /// Objective override, e.g. `power:1.0`; empty = environment default.
    pub objective: String,
    /// Agent for `search`/`sweep` jobs, e.g. `ga`.
    pub agent: String,
    /// Agent roster for `compare` jobs; empty = the extended default set.
    pub agents: Vec<String>,
    /// Sample budget per run.
    pub budget: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Evaluation batch size; `0` lets the agent's hint decide.
    pub batch: usize,
    /// `EnvPool` replicas evaluating one job's batches in parallel.
    pub eval_jobs: usize,
    /// Number of seeds for `sweep` jobs (seed, seed+1, ...).
    pub sweep_seeds: u64,
    /// Online proxy screening policy; `None` runs unscreened. Encoded
    /// only when present, so specs from older clients decode unchanged.
    pub proxy: Option<crate::screen::ScreenPolicy>,
    /// Wall-clock deadline for the whole job in milliseconds; `0` means
    /// no deadline. Enforced cooperatively at batch boundaries: an
    /// exceeded deadline stops the run and records a
    /// [`JobState::TimedOut`] outcome with the best-so-far result.
    /// Encoded only when nonzero, so specs from older clients decode
    /// unchanged.
    pub deadline_ms: u64,
    /// Successive-halving elimination factor for `race` jobs; `0` means
    /// the daemon default (3). Encoded only when nonzero.
    pub race_eta: usize,
    /// Hyperparameter configurations per agent family in a `race` job's
    /// roster; `0` means the daemon default (4). Encoded only when
    /// nonzero.
    pub race_cap: usize,
    /// Drive a `race` job's final rung with the reward-weighted
    /// survivor ensemble instead of the solo winner. Encoded only when
    /// `true`.
    pub race_ensemble: bool,
}

impl JobSpec {
    /// A search-job spec with the daemon's defaults for the rest.
    pub fn search(env: &str, agent: &str, budget: u64, seed: u64) -> JobSpec {
        JobSpec {
            kind: JobKind::Search,
            env: env.to_owned(),
            objective: String::new(),
            agent: agent.to_owned(),
            agents: Vec::new(),
            budget,
            seed,
            batch: 0,
            eval_jobs: 1,
            sweep_seeds: 3,
            proxy: None,
            deadline_ms: 0,
            race_eta: 0,
            race_cap: 0,
            race_ensemble: false,
        }
    }

    /// A race-job spec over the default roster with the daemon's
    /// defaults for the rest.
    pub fn race(env: &str, budget: u64, seed: u64) -> JobSpec {
        let mut spec = JobSpec::search(env, "", budget, seed);
        spec.kind = JobKind::Race;
        spec
    }

    /// Cheap structural validation, applied at admission time so malformed
    /// submissions are rejected with a typed error instead of a failed job.
    pub fn validate(&self) -> Result<()> {
        if self.env.is_empty() {
            return Err(ArchGymError::InvalidConfig("job env is empty".into()));
        }
        if self.budget == 0 {
            return Err(ArchGymError::InvalidConfig("job budget is zero".into()));
        }
        // Compare and race jobs pick their own rosters; only single-agent
        // kinds need an agent name.
        if !matches!(self.kind, JobKind::Compare | JobKind::Race) && self.agent.is_empty() {
            return Err(ArchGymError::InvalidConfig("job agent is empty".into()));
        }
        if self.race_eta == 1 {
            return Err(ArchGymError::InvalidConfig(
                "race eta must be at least 2".into(),
            ));
        }
        if self.kind == JobKind::Sweep && self.sweep_seeds == 0 {
            return Err(ArchGymError::InvalidConfig(
                "sweep job needs at least one seed".into(),
            ));
        }
        if let Some(policy) = &self.proxy {
            policy.validate().map_err(ArchGymError::InvalidConfig)?;
        }
        Ok(())
    }

    /// Canonical JSON encoding (codec-framed, bit-exact round-trip).
    pub fn encode(&self) -> String {
        let mut out = String::from("{\"kind\":");
        push_json_str(&mut out, self.kind.name());
        out.push_str(",\"env\":");
        push_json_str(&mut out, &self.env);
        out.push_str(",\"objective\":");
        push_json_str(&mut out, &self.objective);
        out.push_str(",\"agent\":");
        push_json_str(&mut out, &self.agent);
        out.push_str(",\"agents\":[");
        for (i, a) in self.agents.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, a);
        }
        out.push_str("],");
        let _ = fmt::Write::write_fmt(
            &mut out,
            format_args!(
                "\"budget\":{},\"seed\":{},\"batch\":{},\"eval_jobs\":{},\"sweep_seeds\":{}",
                self.budget, self.seed, self.batch, self.eval_jobs, self.sweep_seeds
            ),
        );
        // Optional trailing fields: absent when at their defaults,
        // keeping the encoding byte-identical to older daemons/clients.
        if self.deadline_ms > 0 {
            let _ = fmt::Write::write_fmt(
                &mut out,
                format_args!(",\"deadline_ms\":{}", self.deadline_ms),
            );
        }
        if let Some(policy) = &self.proxy {
            out.push_str(",\"proxy\":");
            out.push_str(&policy.encode());
        }
        if self.race_eta > 0 {
            let _ =
                fmt::Write::write_fmt(&mut out, format_args!(",\"race_eta\":{}", self.race_eta));
        }
        if self.race_cap > 0 {
            let _ =
                fmt::Write::write_fmt(&mut out, format_args!(",\"race_cap\":{}", self.race_cap));
        }
        if self.race_ensemble {
            out.push_str(",\"race_ensemble\":true");
        }
        out.push('}');
        out
    }

    /// Decode a spec from a parsed [`Json`] object.
    pub fn from_json(json: &Json) -> Result<JobSpec> {
        let bad = |msg: String| ArchGymError::InvalidConfig(msg);
        let kind = JobKind::parse(json.field("kind").and_then(Json::as_str).map_err(bad)?)?;
        let mut agents = Vec::new();
        for entry in json.field("agents").and_then(Json::as_arr).map_err(bad)? {
            agents.push(entry.as_str().map_err(bad)?.to_owned());
        }
        Ok(JobSpec {
            kind,
            env: json
                .field("env")
                .and_then(Json::as_str)
                .map_err(bad)?
                .to_owned(),
            objective: json
                .field("objective")
                .and_then(Json::as_str)
                .map_err(bad)?
                .to_owned(),
            agent: json
                .field("agent")
                .and_then(Json::as_str)
                .map_err(bad)?
                .to_owned(),
            agents,
            budget: json.field("budget").and_then(Json::as_u64).map_err(bad)?,
            seed: json.field("seed").and_then(Json::as_u64).map_err(bad)?,
            batch: json.field("batch").and_then(Json::as_usize).map_err(bad)?,
            eval_jobs: json
                .field("eval_jobs")
                .and_then(Json::as_usize)
                .map_err(bad)?,
            sweep_seeds: json
                .field("sweep_seeds")
                .and_then(Json::as_u64)
                .map_err(bad)?,
            // Tolerant decode: specs from pre-proxy clients lack the field.
            proxy: match json.field("proxy") {
                Ok(value) => Some(crate::screen::ScreenPolicy::from_json(value).map_err(bad)?),
                Err(_) => None,
            },
            // Tolerant decode: specs from pre-deadline clients lack the
            // field; absent means no deadline.
            deadline_ms: json
                .field("deadline_ms")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            // Tolerant decode: specs from pre-race clients lack the
            // fields; absent means the daemon defaults.
            race_eta: json.field("race_eta").and_then(Json::as_usize).unwrap_or(0),
            race_cap: json.field("race_cap").and_then(Json::as_usize).unwrap_or(0),
            race_ensemble: json
                .field("race_ensemble")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        })
    }

    /// Decode a spec from its canonical text encoding.
    pub fn decode(text: &str) -> Result<JobSpec> {
        let json = parse_json(text).map_err(ArchGymError::InvalidConfig)?;
        JobSpec::from_json(&json)
    }
}

/// Admission-control limits, per tenant and globally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaPolicy {
    /// Jobs a single tenant may have running at once.
    pub max_running_per_tenant: usize,
    /// Jobs a single tenant may have queued at once.
    pub max_queued_per_tenant: usize,
    /// Total queued jobs across all tenants (bounded queue).
    pub queue_capacity: usize,
    /// Back-off hint returned with every rejection.
    pub retry_after_ms: u64,
}

impl Default for QuotaPolicy {
    fn default() -> Self {
        QuotaPolicy {
            max_running_per_tenant: 2,
            max_queued_per_tenant: 16,
            queue_capacity: 64,
            retry_after_ms: 500,
        }
    }
}

/// Outcome of admission control on a submit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// Accepted; `position` is the 0-based place in the global queue.
    Enqueued {
        /// 0-based position in the global queue at admission time.
        position: usize,
    },
    /// Turned away with a reason and an explicit back-off hint.
    Rejected {
        /// Human-readable reason (`queue full`, `tenant queue full`).
        reason: String,
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
}

/// A pure, deterministic multi-tenant scheduler.
///
/// Workers pull with [`next_runnable`](Scheduler::next_runnable): the
/// *oldest* queued job whose tenant is under its running quota. A tenant at
/// quota is skipped — not blocked — so later jobs from other tenants
/// overtake it and a flood cannot starve a singleton.
#[derive(Debug)]
pub struct Scheduler {
    policy: QuotaPolicy,
    queue: VecDeque<(JobId, String)>,
    running: Vec<(JobId, String)>,
}

impl Scheduler {
    /// A scheduler enforcing `policy`.
    pub fn new(policy: QuotaPolicy) -> Scheduler {
        Scheduler {
            policy,
            queue: VecDeque::new(),
            running: Vec::new(),
        }
    }

    /// The policy this scheduler enforces.
    pub fn policy(&self) -> &QuotaPolicy {
        &self.policy
    }

    /// Jobs currently queued, across all tenants.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Jobs currently running, across all tenants.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Jobs `tenant` has queued.
    pub fn queued_for(&self, tenant: &str) -> usize {
        self.queue.iter().filter(|(_, t)| t == tenant).count()
    }

    /// Jobs `tenant` has running.
    pub fn running_for(&self, tenant: &str) -> usize {
        self.running.iter().filter(|(_, t)| t == tenant).count()
    }

    /// Apply admission control to a new job from `tenant`.
    pub fn submit(&mut self, id: JobId, tenant: &str) -> Admission {
        if self.queue.len() >= self.policy.queue_capacity {
            return Admission::Rejected {
                reason: format!("queue full ({} jobs)", self.queue.len()),
                retry_after_ms: self.policy.retry_after_ms,
            };
        }
        if self.queued_for(tenant) >= self.policy.max_queued_per_tenant {
            return Admission::Rejected {
                reason: format!(
                    "tenant '{tenant}' queue full ({} jobs)",
                    self.queued_for(tenant)
                ),
                retry_after_ms: self.policy.retry_after_ms,
            };
        }
        self.queue.push_back((id, tenant.to_owned()));
        Admission::Enqueued {
            position: self.queue.len() - 1,
        }
    }

    /// Claim the oldest queued job whose tenant is under its running
    /// quota, marking it running. `None` means no job is eligible (queue
    /// empty, or every queued tenant is at quota).
    pub fn next_runnable(&mut self) -> Option<JobId> {
        let slot = self.queue.iter().position(|(_, tenant)| {
            self.running_for(tenant) < self.policy.max_running_per_tenant
        })?;
        let (id, tenant) = self.queue.remove(slot).expect("position within queue");
        self.running.push((id, tenant));
        Some(id)
    }

    /// Release a running job's quota slot (done, failed, or cancelled).
    pub fn finish(&mut self, id: JobId) {
        self.running.retain(|(running, _)| *running != id);
    }

    /// Remove a still-queued job. Returns `false` if it is not queued
    /// (already claimed by a worker, or never admitted).
    pub fn cancel_queued(&mut self, id: JobId) -> bool {
        let before = self.queue.len();
        self.queue.retain(|(queued, _)| *queued != id);
        self.queue.len() < before
    }
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct WorkerSlot {
    alive: bool,
    job: Option<JobId>,
    epoch: u64,
    last_progress_ms: u64,
}

/// A pure, deterministic liveness monitor over the worker fleet.
///
/// Like the [`Scheduler`], the watchdog is a clock-free state machine:
/// the daemon's supervisor thread feeds it heartbeat *epochs* (a
/// counter each worker bumps per batch of progress) together with an
/// explicit `now_ms`, so stall detection is unit-testable with a fake
/// clock. A worker is **stalled** when it is busy on a job and its
/// epoch has not advanced for longer than `stall_after_ms` — wall time
/// since claim is deliberately not used, so a slow-but-progressing job
/// is never killed.
///
/// [`Watchdog::scan`] reports each stalled slot exactly once and
/// retires it; the supervisor fails the job, detaches the wedged
/// thread, and registers a replacement slot for the respawned worker.
#[derive(Debug, Clone)]
pub struct Watchdog {
    stall_after_ms: u64,
    slots: Vec<WorkerSlot>,
}

impl Watchdog {
    /// A watchdog that flags a busy worker whose heartbeat epoch has
    /// not advanced for `stall_after_ms`. `0` disables stall detection
    /// ([`Watchdog::scan`] never reports).
    pub fn new(stall_after_ms: u64) -> Watchdog {
        Watchdog {
            stall_after_ms,
            slots: Vec::new(),
        }
    }

    /// The configured stall threshold (`0` = disabled).
    pub fn stall_after_ms(&self) -> u64 {
        self.stall_after_ms
    }

    /// Register a new worker slot, returning its id.
    pub fn register(&mut self) -> usize {
        self.slots.push(WorkerSlot {
            alive: true,
            job: None,
            epoch: 0,
            last_progress_ms: 0,
        });
        self.slots.len() - 1
    }

    /// Whether `slot` is still part of the fleet (not retired).
    pub fn is_alive(&self, slot: usize) -> bool {
        self.slots.get(slot).is_some_and(|s| s.alive)
    }

    /// The job `slot` is busy on, if any.
    pub fn busy_on(&self, slot: usize) -> Option<JobId> {
        self.slots.get(slot).and_then(|s| s.job)
    }

    /// Mark `slot` busy on `job`, resetting its heartbeat baseline.
    pub fn start(&mut self, slot: usize, job: JobId, now_ms: u64) {
        if let Some(s) = self.slots.get_mut(slot) {
            s.job = Some(job);
            s.epoch = 0;
            s.last_progress_ms = now_ms;
        }
    }

    /// Mark `slot` idle (its job finished or was handed off).
    pub fn end(&mut self, slot: usize) {
        if let Some(s) = self.slots.get_mut(slot) {
            s.job = None;
        }
    }

    /// Record a heartbeat observation for `slot`: if `epoch` advanced
    /// past the last observed value, the stall timer resets to `now_ms`.
    pub fn observe(&mut self, slot: usize, epoch: u64, now_ms: u64) {
        if let Some(s) = self.slots.get_mut(slot) {
            if epoch > s.epoch {
                s.epoch = epoch;
                s.last_progress_ms = now_ms;
            }
        }
    }

    /// Report and retire every live, busy slot that has made no
    /// progress for longer than the stall threshold. Each stalled slot
    /// is reported exactly once; the caller respawns a replacement via
    /// [`Watchdog::register`].
    pub fn scan(&mut self, now_ms: u64) -> Vec<(usize, JobId)> {
        if self.stall_after_ms == 0 {
            return Vec::new();
        }
        let mut stalled = Vec::new();
        for (slot, s) in self.slots.iter_mut().enumerate() {
            if !s.alive {
                continue;
            }
            if let Some(job) = s.job {
                if now_ms.saturating_sub(s.last_progress_ms) > self.stall_after_ms {
                    s.alive = false;
                    s.job = None;
                    stalled.push((slot, job));
                }
            }
        }
        stalled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(running: usize, queued: usize, capacity: usize) -> QuotaPolicy {
        QuotaPolicy {
            max_running_per_tenant: running,
            max_queued_per_tenant: queued,
            queue_capacity: capacity,
            retry_after_ms: 250,
        }
    }

    #[test]
    fn job_id_round_trips_through_display() {
        let id = JobId(42);
        assert_eq!(id.to_string(), "job-42");
        assert_eq!(JobId::parse("job-42"), Some(id));
        assert_eq!(JobId::parse("job-"), None);
        assert_eq!(JobId::parse("run-42"), None);
    }

    #[test]
    fn job_spec_encodes_and_decodes_bit_identically() {
        let mut spec = JobSpec::search("dram/stream", "ga", 5000, 7);
        spec.objective = "power:1.0".into();
        spec.agents = vec!["ga".into(), "aco\u{1F600}".into()];
        spec.batch = 8;
        spec.eval_jobs = 4;
        let text = spec.encode();
        let back = JobSpec::decode(&text).expect("decode");
        assert_eq!(back, spec);
        assert_eq!(back.encode(), text);
    }

    #[test]
    fn job_spec_proxy_field_round_trips_and_stays_optional() {
        use crate::screen::ScreenPolicy;
        // With a proxy policy: bit-exact round trip including the field.
        let mut spec = JobSpec::search("dram/stream", "ga", 5000, 7);
        spec.proxy = Some(ScreenPolicy::default().top_k(6).warmup(48));
        let text = spec.encode();
        assert!(text.contains("\"proxy\":{"), "{text}");
        let back = JobSpec::decode(&text).expect("decode");
        assert_eq!(back, spec);
        assert_eq!(back.encode(), text);
        // Without: the encoding is byte-identical to the pre-proxy shape,
        // and a pre-proxy line (no field) decodes to proxy = None.
        let plain = JobSpec::search("dram/stream", "ga", 5000, 7);
        assert!(!plain.encode().contains("proxy"), "{}", plain.encode());
        let legacy = "{\"kind\":\"search\",\"env\":\"dram/stream\",\"objective\":\"\",\
                      \"agent\":\"ga\",\"agents\":[],\"budget\":5000,\"seed\":7,\
                      \"batch\":0,\"eval_jobs\":1,\"sweep_seeds\":3}";
        let decoded = JobSpec::decode(legacy).expect("legacy decode");
        assert_eq!(decoded, plain);
        // A degenerate policy is caught at admission, not at run time.
        let mut bad = JobSpec::search("dram/stream", "ga", 100, 1);
        bad.proxy = Some(ScreenPolicy::default().oversample(1));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn job_spec_validation_catches_structural_errors() {
        let mut spec = JobSpec::search("dram/stream", "ga", 100, 1);
        spec.validate().expect("valid");
        spec.budget = 0;
        assert!(spec.validate().is_err());
        spec.budget = 100;
        spec.agent.clear();
        assert!(spec.validate().is_err());
        spec.kind = JobKind::Compare;
        spec.validate().expect("compare uses roster, not agent");
        spec.env.clear();
        assert!(spec.validate().is_err());
    }

    #[test]
    fn tenant_over_running_quota_is_queued_not_run() {
        let mut sched = Scheduler::new(policy(1, 8, 32));
        for n in 0..3 {
            assert_eq!(
                sched.submit(JobId(n), "acme"),
                Admission::Enqueued {
                    position: n as usize
                }
            );
        }
        assert_eq!(sched.next_runnable(), Some(JobId(0)));
        // Tenant at quota: the other two stay queued even with idle workers.
        assert_eq!(sched.next_runnable(), None);
        assert_eq!(sched.queue_len(), 2);
        sched.finish(JobId(0));
        assert_eq!(sched.next_runnable(), Some(JobId(1)));
        assert_eq!(sched.next_runnable(), None);
    }

    #[test]
    fn full_global_queue_gets_a_clean_reject_with_retry_after() {
        let mut sched = Scheduler::new(policy(2, 8, 2));
        assert!(matches!(
            sched.submit(JobId(0), "a"),
            Admission::Enqueued { .. }
        ));
        assert!(matches!(
            sched.submit(JobId(1), "b"),
            Admission::Enqueued { .. }
        ));
        match sched.submit(JobId(2), "c") {
            Admission::Rejected {
                reason,
                retry_after_ms,
            } => {
                assert!(reason.contains("queue full"), "reason: {reason}");
                assert_eq!(retry_after_ms, 250);
            }
            other => panic!("expected reject, got {other:?}"),
        }
        // State is untouched by the reject.
        assert_eq!(sched.queue_len(), 2);
    }

    #[test]
    fn full_tenant_queue_gets_a_clean_reject() {
        let mut sched = Scheduler::new(policy(2, 2, 32));
        assert!(matches!(
            sched.submit(JobId(0), "acme"),
            Admission::Enqueued { .. }
        ));
        assert!(matches!(
            sched.submit(JobId(1), "acme"),
            Admission::Enqueued { .. }
        ));
        match sched.submit(JobId(2), "acme") {
            Admission::Rejected { reason, .. } => {
                assert!(reason.contains("tenant 'acme'"), "reason: {reason}")
            }
            other => panic!("expected reject, got {other:?}"),
        }
        // Another tenant is unaffected by acme's full queue.
        assert!(matches!(
            sched.submit(JobId(3), "zeta"),
            Admission::Enqueued { .. }
        ));
    }

    #[test]
    fn one_tenants_flood_cannot_starve_anothers_single_job() {
        let mut sched = Scheduler::new(policy(2, 16, 64));
        // "flood" submits ten jobs before "solo" submits one.
        for n in 0..10 {
            assert!(matches!(
                sched.submit(JobId(n), "flood"),
                Admission::Enqueued { .. }
            ));
        }
        assert!(matches!(
            sched.submit(JobId(100), "solo"),
            Admission::Enqueued { .. }
        ));
        // Three idle workers pull: flood caps at its running quota of two,
        // so the third claim skips ahead to solo's job.
        assert_eq!(sched.next_runnable(), Some(JobId(0)));
        assert_eq!(sched.next_runnable(), Some(JobId(1)));
        assert_eq!(sched.next_runnable(), Some(JobId(100)));
        assert_eq!(sched.next_runnable(), None);
        assert_eq!(sched.running_for("flood"), 2);
        assert_eq!(sched.running_for("solo"), 1);
        // As flood's jobs finish, its backlog drains in FIFO order.
        sched.finish(JobId(0));
        assert_eq!(sched.next_runnable(), Some(JobId(2)));
    }

    #[test]
    fn job_spec_deadline_field_round_trips_and_stays_optional() {
        let mut spec = JobSpec::search("dram/stream", "ga", 5000, 7);
        spec.deadline_ms = 1500;
        let text = spec.encode();
        assert!(text.contains("\"deadline_ms\":1500"), "{text}");
        let back = JobSpec::decode(&text).expect("decode");
        assert_eq!(back, spec);
        assert_eq!(back.encode(), text);
        // No deadline: the field is absent and a legacy line (without
        // the field) decodes to deadline_ms = 0.
        let plain = JobSpec::search("dram/stream", "ga", 5000, 7);
        assert!(
            !plain.encode().contains("deadline_ms"),
            "{}",
            plain.encode()
        );
        let legacy = "{\"kind\":\"search\",\"env\":\"dram/stream\",\"objective\":\"\",\
                      \"agent\":\"ga\",\"agents\":[],\"budget\":5000,\"seed\":7,\
                      \"batch\":0,\"eval_jobs\":1,\"sweep_seeds\":3}";
        assert_eq!(JobSpec::decode(legacy).expect("legacy decode"), plain);
    }

    #[test]
    fn job_spec_race_fields_round_trip_and_stay_optional() {
        let mut spec = JobSpec::race("dram/stream", 5000, 7);
        spec.race_eta = 2;
        spec.race_cap = 3;
        spec.race_ensemble = true;
        spec.validate().expect("race spec without agent is valid");
        let text = spec.encode();
        assert!(text.contains("\"kind\":\"race\""), "{text}");
        assert!(text.contains("\"race_eta\":2"), "{text}");
        assert!(text.contains("\"race_cap\":3"), "{text}");
        assert!(text.contains("\"race_ensemble\":true"), "{text}");
        let back = JobSpec::decode(&text).expect("decode");
        assert_eq!(back, spec);
        assert_eq!(back.encode(), text);
        // At the defaults: the fields are absent, and a legacy line
        // (without the fields) decodes to the defaults.
        let plain = JobSpec::search("dram/stream", "ga", 5000, 7);
        assert!(!plain.encode().contains("race_"), "{}", plain.encode());
        let legacy = "{\"kind\":\"search\",\"env\":\"dram/stream\",\"objective\":\"\",\
                      \"agent\":\"ga\",\"agents\":[],\"budget\":5000,\"seed\":7,\
                      \"batch\":0,\"eval_jobs\":1,\"sweep_seeds\":3}";
        assert_eq!(JobSpec::decode(legacy).expect("legacy decode"), plain);
        // Degenerate eta is rejected at admission.
        let mut bad = JobSpec::race("dram/stream", 5000, 7);
        bad.race_eta = 1;
        assert!(bad.validate().is_err());
        assert_eq!(JobKind::parse("race").unwrap(), JobKind::Race);
    }

    #[test]
    fn timed_out_state_is_terminal_and_round_trips() {
        assert_eq!(JobState::TimedOut.name(), "timed-out");
        assert_eq!(JobState::parse("timed-out").unwrap(), JobState::TimedOut);
        assert!(JobState::TimedOut.is_terminal());
    }

    #[test]
    fn watchdog_flags_silent_workers_once_and_spares_progressing_ones() {
        let mut wd = Watchdog::new(100);
        let a = wd.register();
        let b = wd.register();
        wd.start(a, JobId(1), 0);
        wd.start(b, JobId(2), 0);
        // Both heartbeat at t=50.
        wd.observe(a, 1, 50);
        wd.observe(b, 1, 50);
        assert!(wd.scan(120).is_empty(), "both progressed recently");
        // Only b keeps heartbeating; a goes silent.
        wd.observe(b, 2, 140);
        wd.observe(a, 1, 140); // same epoch: no progress
        assert_eq!(wd.scan(151).as_slice(), &[(a, JobId(1))]);
        assert!(!wd.is_alive(a), "stalled slot retired");
        assert!(wd.scan(160).is_empty(), "reported exactly once");
        // b survives as long as its epoch keeps advancing.
        wd.observe(b, 3, 230);
        assert!(wd.scan(300).is_empty());
        wd.end(b);
        // The replacement slot starts clean.
        let c = wd.register();
        wd.start(c, JobId(3), 600);
        assert!(wd.scan(650).is_empty());
        assert_eq!(wd.scan(701).as_slice(), &[(c, JobId(3))]);
    }

    #[test]
    fn watchdog_ignores_idle_workers_and_disables_at_zero() {
        let mut wd = Watchdog::new(100);
        let a = wd.register();
        assert!(wd.scan(10_000).is_empty(), "idle workers never stall");
        wd.start(a, JobId(1), 0);
        wd.end(a);
        assert!(wd.scan(10_000).is_empty(), "finished job clears the slot");
        let mut off = Watchdog::new(0);
        let s = off.register();
        off.start(s, JobId(9), 0);
        assert!(off.scan(u64::MAX).is_empty(), "0 disables detection");
    }

    #[test]
    fn cancel_removes_queued_jobs_only() {
        let mut sched = Scheduler::new(policy(2, 8, 32));
        sched.submit(JobId(0), "a");
        sched.submit(JobId(1), "a");
        assert_eq!(sched.next_runnable(), Some(JobId(0)));
        assert!(!sched.cancel_queued(JobId(0)), "running, not queued");
        assert!(sched.cancel_queued(JobId(1)));
        assert!(!sched.cancel_queued(JobId(1)), "already gone");
        assert_eq!(sched.queue_len(), 0);
    }
}
