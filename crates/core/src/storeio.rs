//! Store I/O seam: checksum framing, fsync policy, and deterministic
//! I/O fault injection.
//!
//! PR 4 made the *search loop* fault-tolerant by pushing every
//! environment evaluation through a seeded, replayable
//! [`FaultPlan`](crate::fault::FaultPlan). This module extends the same
//! philosophy down into the persistence layer: every file operation the
//! journal and job store perform goes through the [`StoreIo`] trait, so
//! a test can swap the real filesystem for a [`FaultyIo`] that injects
//! write errors, short writes, rename failures and fsync failures from
//! a pure hash of `(seed, op, path, attempt)` — the crash/corruption
//! paths become ordinary unit tests instead of SIGKILL-only smoke runs.
//!
//! The module also owns the two cross-cutting durability primitives:
//!
//! * **CRC32 line framing** ([`frame_line`] / [`unframe_line`]): every
//!   journal record and store file is written as
//!   `<8-hex-crc32>|<payload>`, so a flipped byte anywhere in the line
//!   is detected on replay instead of being replayed bit-for-bit as
//!   garbage. The CRC is the standard IEEE polynomial, hand-rolled —
//!   no new dependencies.
//! * **Fsync policy** ([`Durability`]): `none` keeps today's
//!   flush-only behaviour, `batch` fsyncs at write-ahead batch
//!   boundaries and before every tmp+rename, `always` fsyncs every
//!   append.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, reflected: 0xEDB88320)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 checksum (IEEE polynomial) of `data`.
///
/// Any single-bit or single-byte corruption of a checked line changes
/// the CRC, so a flipped byte in a framed record is always detected.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ byte as u32) & 0xff) as usize];
    }
    !crc
}

/// Frame a single-line payload as `<8-hex-crc32>|<payload>`.
///
/// The payload must not contain a newline; callers frame one record at
/// a time.
pub fn frame_line(payload: &str) -> String {
    debug_assert!(
        !payload.contains('\n'),
        "frame_line payload must be a single line"
    );
    format!("{:08x}|{payload}", crc32(payload.as_bytes()))
}

/// Why a line failed checksum verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The line does not carry an `xxxxxxxx|` checksum prefix at all
    /// (e.g. a pre-checksum legacy file, or a torn write that lost the
    /// prefix).
    Unframed,
    /// The line carries a checksum prefix but the payload does not hash
    /// to it — the line was corrupted after it was written.
    Mismatch {
        /// CRC recorded in the frame prefix.
        expected: u32,
        /// CRC actually computed over the payload.
        found: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Unframed => write!(f, "line is not checksum-framed"),
            FrameError::Mismatch { expected, found } => {
                write!(
                    f,
                    "checksum mismatch: frame says {expected:08x}, payload hashes to {found:08x}"
                )
            }
        }
    }
}

/// Verify and strip the checksum frame from one line, returning the
/// payload.
pub fn unframe_line(line: &str) -> Result<&str, FrameError> {
    let bytes = line.as_bytes();
    if bytes.len() < 9 || bytes[8] != b'|' {
        return Err(FrameError::Unframed);
    }
    let prefix = &line[..8];
    if !prefix.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(FrameError::Unframed);
    }
    let expected = u32::from_str_radix(prefix, 16).map_err(|_| FrameError::Unframed)?;
    let payload = &line[9..];
    let found = crc32(payload.as_bytes());
    if found != expected {
        return Err(FrameError::Mismatch { expected, found });
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Durability policy
// ---------------------------------------------------------------------------

/// How aggressively journal/store writes are fsynced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Flush to the OS only (today's behaviour). A machine crash can
    /// lose recent records; a process crash cannot.
    #[default]
    None,
    /// Fsync at write-ahead batch boundaries and before every
    /// tmp+rename. The documented daemon default: a machine crash can
    /// lose at most the current in-flight batch.
    Batch,
    /// Fsync after every appended record. Strongest, slowest.
    Always,
}

impl Durability {
    /// Stable wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Durability::None => "none",
            Durability::Batch => "batch",
            Durability::Always => "always",
        }
    }

    /// Parse a CLI value; inverse of [`Durability::name`].
    pub fn parse(text: &str) -> Option<Durability> {
        match text {
            "none" => Some(Durability::None),
            "batch" => Some(Durability::Batch),
            "always" => Some(Durability::Always),
            _ => None,
        }
    }
}

impl fmt::Display for Durability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// The StoreIo seam
// ---------------------------------------------------------------------------

/// An open append handle, as used by the journal's write-ahead log.
pub trait AppendFile: Send {
    /// Append `data` in full (or fail without claiming success).
    fn append(&mut self, data: &[u8]) -> io::Result<()>;
    /// Fsync the file to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

/// The file operations the journal and job store need, abstracted so
/// tests can inject deterministic faults. Implementations must be
/// cheaply shareable behind an `Arc`.
pub trait StoreIo: fmt::Debug + Send + Sync {
    /// Read an entire file as UTF-8.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;
    /// Create/overwrite `path` with `data`, optionally fsyncing before
    /// returning (the durability-before-rename half of tmp+rename).
    fn write_file(&self, path: &Path, data: &[u8], sync: bool) -> io::Result<()>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Truncate `path` to `len` bytes (journal torn-tail repair).
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Open (creating if absent) an append handle.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn AppendFile>>;
    /// Does `path` exist?
    fn exists(&self, path: &Path) -> bool;
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

/// Shared `Arc<dyn StoreIo>` over the real filesystem.
pub fn real_io() -> Arc<dyn StoreIo> {
    Arc::new(RealIo)
}

struct RealAppend {
    file: fs::File,
}

impl AppendFile for RealAppend {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.file.write_all(data)?;
        self.file.flush()
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

impl StoreIo for RealIo {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        let mut text = String::new();
        fs::File::open(path)?.read_to_string(&mut text)?;
        Ok(text)
    }

    fn write_file(&self, path: &Path, data: &[u8], sync: bool) -> io::Result<()> {
        let mut file = fs::File::create(path)?;
        file.write_all(data)?;
        if sync {
            file.sync_data()?;
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        fs::OpenOptions::new().write(true).open(path)?.set_len(len)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn AppendFile>> {
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(RealAppend { file }))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

// splitmix64 finalizer — the same bit mixer `fault::FaultPlan` uses, so
// the two fault layers share one statistical pedigree.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = mix(seed ^ 0x9e37_79b9_7f4a_7c15);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix(h ^ u64::from_le_bytes(word));
    }
    h
}

/// The I/O operations [`FaultyIo`] can fail. Used as the `op`
/// dimension of the `(seed, op, path, attempt)` hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Whole-file writes (`write_file`) and journal appends.
    Write,
    /// Rename (the commit point of tmp+rename).
    Rename,
    /// Fsync (both append-handle sync and pre-rename sync).
    Sync,
}

impl IoOp {
    fn tag(self) -> u64 {
        match self {
            IoOp::Write => 0x57,
            IoOp::Rename => 0x52,
            IoOp::Sync => 0x53,
        }
    }
}

/// Seeded fault schedule for store I/O. A pure function of
/// `(seed, op, path, attempt)` — mirroring
/// [`FaultPlan`](crate::fault::FaultPlan) — so two runs with the same
/// seed see byte-identical fault schedules, which is what lets the
/// chaos suite assert bit-identical recovery.
#[derive(Debug, Clone, Copy)]
pub struct IoFaultPlan {
    seed: u64,
    write_fail: f64,
    short_write: f64,
    rename_fail: f64,
    sync_fail: f64,
}

fn checked(rate: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&rate),
        "fault rate must be within [0, 1], got {rate}"
    );
    rate
}

impl IoFaultPlan {
    /// A plan with the given seed and all fault rates at zero.
    pub fn new(seed: u64) -> IoFaultPlan {
        IoFaultPlan {
            seed,
            write_fail: 0.0,
            short_write: 0.0,
            rename_fail: 0.0,
            sync_fail: 0.0,
        }
    }

    /// Probability that a write returns an error without writing.
    pub fn write_fail(mut self, rate: f64) -> IoFaultPlan {
        self.write_fail = checked(rate);
        self
    }

    /// Probability that a write persists only a prefix of the data and
    /// then errors — a genuine torn write, as after a power cut.
    pub fn short_write(mut self, rate: f64) -> IoFaultPlan {
        self.short_write = checked(rate);
        self
    }

    /// Probability that a rename fails (the tmp file is left behind).
    pub fn rename_fail(mut self, rate: f64) -> IoFaultPlan {
        self.rename_fail = checked(rate);
        self
    }

    /// Probability that an fsync reports failure.
    pub fn sync_fail(mut self, rate: f64) -> IoFaultPlan {
        self.sync_fail = checked(rate);
        self
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn roll(&self, op: IoOp, path: &Path, attempt: u64, salt: u64) -> f64 {
        let h = mix(hash_bytes(self.seed, path.to_string_lossy().as_bytes())
            ^ op.tag().wrapping_mul(0x0100_0000_01b3)
            ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ salt);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Counters for faults actually injected, shared across clones.
#[derive(Debug, Default)]
pub struct IoFaultStats {
    writes_failed: AtomicU64,
    short_writes: AtomicU64,
    renames_failed: AtomicU64,
    syncs_failed: AtomicU64,
}

impl IoFaultStats {
    /// Writes that errored without writing.
    pub fn writes_failed(&self) -> u64 {
        self.writes_failed.load(Ordering::Relaxed)
    }

    /// Writes that persisted a prefix and then errored.
    pub fn short_writes(&self) -> u64 {
        self.short_writes.load(Ordering::Relaxed)
    }

    /// Renames that errored.
    pub fn renames_failed(&self) -> u64 {
        self.renames_failed.load(Ordering::Relaxed)
    }

    /// Fsyncs that errored.
    pub fn syncs_failed(&self) -> u64 {
        self.syncs_failed.load(Ordering::Relaxed)
    }

    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.writes_failed() + self.short_writes() + self.renames_failed() + self.syncs_failed()
    }
}

/// A [`StoreIo`] that wraps another and injects deterministic faults
/// per [`IoFaultPlan`]. Clones share attempt counters and stats, so a
/// retried operation sees a fresh `attempt` index and (typically)
/// succeeds on a later try — exactly the recover-and-retry shape the
/// chaos suite exercises.
#[derive(Debug, Clone)]
pub struct FaultyIo {
    inner: Arc<dyn StoreIo>,
    plan: IoFaultPlan,
    attempts: Arc<Mutex<HashMap<(IoOp, PathBuf), u64>>>,
    stats: Arc<IoFaultStats>,
}

fn injected(what: &str, path: &Path) -> io::Error {
    io::Error::other(format!("injected {what} fault: {}", path.display()))
}

impl FaultyIo {
    /// Wrap `inner` with the given fault plan.
    pub fn new(inner: Arc<dyn StoreIo>, plan: IoFaultPlan) -> FaultyIo {
        FaultyIo {
            inner,
            plan,
            attempts: Arc::new(Mutex::new(HashMap::new())),
            stats: Arc::new(IoFaultStats::default()),
        }
    }

    /// Counters for faults injected so far (shared across clones).
    pub fn stats(&self) -> &IoFaultStats {
        &self.stats
    }

    fn next_attempt(&self, op: IoOp, path: &Path) -> u64 {
        let mut attempts = self.attempts.lock().unwrap_or_else(|e| e.into_inner());
        let counter = attempts.entry((op, path.to_path_buf())).or_insert(0);
        let attempt = *counter;
        *counter += 1;
        attempt
    }
}

impl StoreIo for FaultyIo {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        // Reads pass through: corruption is injected at write time so
        // that what replay sees is exactly what a real torn write
        // leaves behind.
        self.inner.read_to_string(path)
    }

    fn write_file(&self, path: &Path, data: &[u8], sync: bool) -> io::Result<()> {
        let attempt = self.next_attempt(IoOp::Write, path);
        if self.plan.roll(IoOp::Write, path, attempt, 1) < self.plan.write_fail {
            self.stats.writes_failed.fetch_add(1, Ordering::Relaxed);
            return Err(injected("write", path));
        }
        if !data.is_empty() && self.plan.roll(IoOp::Write, path, attempt, 2) < self.plan.short_write
        {
            // Persist a deterministic strict prefix, then report failure.
            let keep = (self.plan.roll(IoOp::Write, path, attempt, 3) * data.len() as f64) as usize;
            let keep = keep.min(data.len() - 1);
            self.inner.write_file(path, &data[..keep], false)?;
            self.stats.short_writes.fetch_add(1, Ordering::Relaxed);
            return Err(injected("short write", path));
        }
        if sync && self.plan.roll(IoOp::Sync, path, attempt, 4) < self.plan.sync_fail {
            // The data may have reached the OS cache but sync failed:
            // write without sync, then report the sync failure.
            self.inner.write_file(path, data, false)?;
            self.stats.syncs_failed.fetch_add(1, Ordering::Relaxed);
            return Err(injected("fsync", path));
        }
        self.inner.write_file(path, data, sync)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let attempt = self.next_attempt(IoOp::Rename, from);
        if self.plan.roll(IoOp::Rename, from, attempt, 1) < self.plan.rename_fail {
            self.stats.renames_failed.fetch_add(1, Ordering::Relaxed);
            return Err(injected("rename", from));
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.inner.truncate(path, len)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn AppendFile>> {
        let inner = self.inner.open_append(path)?;
        Ok(Box::new(FaultyAppend {
            inner,
            io: self.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

struct FaultyAppend {
    inner: Box<dyn AppendFile>,
    io: FaultyIo,
    path: PathBuf,
}

impl AppendFile for FaultyAppend {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        let attempt = self.io.next_attempt(IoOp::Write, &self.path);
        if self.io.plan.roll(IoOp::Write, &self.path, attempt, 1) < self.io.plan.write_fail {
            self.io.stats.writes_failed.fetch_add(1, Ordering::Relaxed);
            return Err(injected("append", &self.path));
        }
        if !data.is_empty()
            && self.io.plan.roll(IoOp::Write, &self.path, attempt, 2) < self.io.plan.short_write
        {
            let keep = (self.io.plan.roll(IoOp::Write, &self.path, attempt, 3) * data.len() as f64)
                as usize;
            let keep = keep.min(data.len() - 1);
            self.inner.append(&data[..keep])?;
            self.io.stats.short_writes.fetch_add(1, Ordering::Relaxed);
            return Err(injected("short append", &self.path));
        }
        self.inner.append(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        let attempt = self.io.next_attempt(IoOp::Sync, &self.path);
        if self.io.plan.roll(IoOp::Sync, &self.path, attempt, 1) < self.io.plan.sync_fail {
            self.io.stats.syncs_failed.fetch_add(1, Ordering::Relaxed);
            return Err(injected("fsync", &self.path));
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trips_and_detects_every_single_byte_flip() {
        let payload = r#"{"kind":"step","idx":3,"reward":0.25}"#;
        let line = frame_line(payload);
        assert_eq!(unframe_line(&line), Ok(payload));

        let bytes = line.as_bytes();
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80] {
                let mut damaged = bytes.to_vec();
                damaged[i] ^= flip;
                if let Ok(text) = std::str::from_utf8(&damaged) {
                    assert!(
                        unframe_line(text).is_err(),
                        "flip at byte {i} (^{flip:#x}) went undetected: {text}"
                    );
                }
            }
        }
    }

    #[test]
    fn unframed_lines_are_distinguished_from_mismatches() {
        assert_eq!(
            unframe_line("{\"kind\":\"header\"}"),
            Err(FrameError::Unframed)
        );
        assert_eq!(unframe_line("short"), Err(FrameError::Unframed));
        let framed = frame_line("payload");
        let wrong = format!("00000000|{}", &framed[9..]);
        assert!(matches!(
            unframe_line(&wrong),
            Err(FrameError::Mismatch { .. })
        ));
    }

    #[test]
    fn durability_names_round_trip() {
        for d in [Durability::None, Durability::Batch, Durability::Always] {
            assert_eq!(Durability::parse(d.name()), Some(d));
        }
        assert_eq!(Durability::parse("sometimes"), None);
    }

    #[test]
    fn fault_plan_is_deterministic_per_seed() {
        let plan = IoFaultPlan::new(42).write_fail(0.5);
        let path = Path::new("/tmp/x/journal.jsonl");
        for attempt in 0..32 {
            assert_eq!(
                plan.roll(IoOp::Write, path, attempt, 1),
                plan.roll(IoOp::Write, path, attempt, 1),
            );
        }
        // Different seeds decorrelate.
        let other = IoFaultPlan::new(43).write_fail(0.5);
        let same = (0..64)
            .filter(|&a| {
                (plan.roll(IoOp::Write, path, a, 1) < 0.5)
                    == (other.roll(IoOp::Write, path, a, 1) < 0.5)
            })
            .count();
        assert!(same < 64, "two seeds produced identical schedules");
    }

    #[test]
    fn faulty_io_injects_and_counts_short_writes() {
        let dir = std::env::temp_dir().join(format!("archgym-storeio-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let target = dir.join("short.txt");
        let io = FaultyIo::new(real_io(), IoFaultPlan::new(7).short_write(1.0));
        let err = io.write_file(&target, b"hello world", false).unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        assert_eq!(io.stats().short_writes(), 1);
        let kept = fs::read_to_string(&target).unwrap();
        assert!(
            kept.len() < "hello world".len(),
            "short write persisted everything"
        );
        assert!("hello world".starts_with(&kept));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulty_io_attempt_counter_lets_retries_through() {
        let dir =
            std::env::temp_dir().join(format!("archgym-storeio-retry-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let target = dir.join("retry.txt");
        // A 50% plan must eventually let a retry through well before 64
        // attempts for any seed; verify with a handful of seeds.
        for seed in 0..8 {
            let io = FaultyIo::new(real_io(), IoFaultPlan::new(seed).write_fail(0.5));
            let mut ok = false;
            for _ in 0..64 {
                if io.write_file(&target, b"payload", false).is_ok() {
                    ok = true;
                    break;
                }
            }
            assert!(ok, "seed {seed}: no write succeeded in 64 attempts");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rates_outside_unit_interval_panic() {
        let caught = std::panic::catch_unwind(|| IoFaultPlan::new(1).write_fail(1.5));
        assert!(caught.is_err());
    }
}
