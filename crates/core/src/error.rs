//! Error types shared across the ArchGym workspace.

use std::fmt;

/// Convenience alias for results produced by ArchGym APIs.
pub type Result<T> = std::result::Result<T, ArchGymError>;

/// The error type returned by fallible ArchGym operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchGymError {
    /// A parameter space was constructed with an invalid domain
    /// (e.g. `min > max`, a zero step, or an empty categorical set).
    InvalidSpace(String),
    /// An action did not match the parameter space it was applied to
    /// (wrong dimensionality or an out-of-range index).
    InvalidAction(String),
    /// A hyperparameter was missing or had the wrong type.
    InvalidHyper(String),
    /// An environment-specific configuration error (e.g. an unknown
    /// workload name or an inconsistent simulator setting).
    InvalidConfig(String),
    /// A dataset operation failed (parsing, empty dataset, shape mismatch).
    Dataset(String),
    /// An I/O error, stringified to keep the error type `Clone + PartialEq`.
    Io(String),
    /// A single design-point evaluation failed (a simulator crash, a
    /// worker panic, a corrupted cost report). Transient by default —
    /// the search runtime retries these before degrading the point to an
    /// infeasible penalty.
    EvalFailed(String),
    /// An evaluation exceeded its step/time budget (a stalled simulator).
    /// Treated like [`ArchGymError::EvalFailed`] by the retry machinery.
    Timeout(String),
    /// The environment is in a crashed (latched) state and rejects all
    /// evaluations until `reset`. Unlike `EvalFailed`, this is a knock-on
    /// symptom rather than a genuine evaluation outcome, so the retry
    /// machinery recovers (resets) without charging the action a retry.
    EnvCrashed(String),
    /// A run journal could not be written, parsed, or replayed (e.g. the
    /// journal diverges from the agent's deterministic replay).
    Journal(String),
}

impl fmt::Display for ArchGymError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchGymError::InvalidSpace(msg) => write!(f, "invalid parameter space: {msg}"),
            ArchGymError::InvalidAction(msg) => write!(f, "invalid action: {msg}"),
            ArchGymError::InvalidHyper(msg) => write!(f, "invalid hyperparameter: {msg}"),
            ArchGymError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ArchGymError::Dataset(msg) => write!(f, "dataset error: {msg}"),
            ArchGymError::Io(msg) => write!(f, "i/o error: {msg}"),
            ArchGymError::EvalFailed(msg) => write!(f, "evaluation failed: {msg}"),
            ArchGymError::Timeout(msg) => write!(f, "evaluation timed out: {msg}"),
            ArchGymError::EnvCrashed(msg) => write!(f, "environment crashed: {msg}"),
            ArchGymError::Journal(msg) => write!(f, "journal error: {msg}"),
        }
    }
}

impl std::error::Error for ArchGymError {}

impl From<std::io::Error> for ArchGymError {
    fn from(err: std::io::Error) -> Self {
        ArchGymError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let err = ArchGymError::InvalidSpace("min 4 > max 2 for `x`".into());
        let text = err.to_string();
        assert!(text.starts_with("invalid parameter space"));
        assert!(text.contains('x'));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: ArchGymError = io.into();
        assert!(matches!(err, ArchGymError::Io(_)));
    }

    #[test]
    fn fault_variants_display_their_payload() {
        for (err, prefix) in [
            (ArchGymError::EvalFailed("boom".into()), "evaluation failed"),
            (
                ArchGymError::Timeout("stalled".into()),
                "evaluation timed out",
            ),
            (
                ArchGymError::EnvCrashed("latched".into()),
                "environment crashed",
            ),
            (ArchGymError::Journal("diverged".into()), "journal error"),
        ] {
            let text = err.to_string();
            assert!(text.starts_with(prefix), "{text}");
            assert!(text.contains(':'), "{text}");
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchGymError>();
    }
}
