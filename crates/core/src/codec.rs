//! Minimal hand-rolled JSON codec shared by the journal, dataset and
//! telemetry layers.
//!
//! The workspace must keep working in offline verification builds where
//! the serde facade is stubbed out, and the journal's resume-bit-identity
//! guarantee needs bit-exact `f64` round-trips, so all JSON that actually
//! reaches disk goes through this codec instead of `serde_json`:
//!
//! * finite floats are encoded with Rust's shortest round-trip `{:?}`
//!   form and decoded with `str::parse`, which inverts it exactly;
//! * non-finite floats become the quoted strings `"NaN"`, `"inf"` and
//!   `"-inf"` (JSON has no literal for them);
//! * numbers keep their raw text when parsed, so integers and floats can
//!   each be re-parsed losslessly and re-encoding a decoded value yields
//!   byte-identical text (canonical encoding).
//!
//! Errors are plain `String`s; each consumer wraps them into its own
//! [`ArchGymError`](crate::error::ArchGymError) variant at its public
//! boundary (`Journal` for the run journal, `Dataset` for trajectory
//! files, ...).

use std::fmt::Write as _;

/// A parsed JSON value. Numbers keep their raw text so integers and
/// floats can each be re-parsed losslessly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text.
    Num(String),
    /// A string literal (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; field order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Append `value` to `out` as a JSON string literal.
pub fn push_json_str(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `value` to `out` — finite floats use Rust's shortest
/// round-trip `{:?}` form; non-finite values become quoted strings.
pub fn push_json_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value:?}");
    } else if value.is_nan() {
        out.push_str("\"NaN\"");
    } else if value > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type ParseResult<T> = std::result::Result<T, String>;

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> ParseResult<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> ParseResult<Json> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn object(&mut self) -> ParseResult<Json> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err("unterminated object".into()),
            }
        }
    }

    fn array(&mut self) -> ParseResult<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err("unterminated array".into()),
            }
        }
    }

    fn string(&mut self) -> ParseResult<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input text is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "non-UTF-8 input")?;
                    let c = s.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> ParseResult<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII number slice")
            .to_owned();
        if raw.is_empty() || raw == "-" {
            return Err("bad number".into());
        }
        Ok(Json::Num(raw))
    }
}

/// Parse one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a human-readable message on malformed input.
pub fn parse_json(line: &str) -> ParseResult<Json> {
    let mut parser = Parser::new(line);
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err("trailing bytes after JSON value".into());
    }
    Ok(value)
}

// --- constructors ----------------------------------------------------------

impl Json {
    /// An unsigned-integer number node.
    pub fn num_u64(value: u64) -> Json {
        Json::Num(value.to_string())
    }

    /// A signed-integer number node.
    pub fn num_i64(value: i64) -> Json {
        Json::Num(value.to_string())
    }

    /// A float node in canonical form: shortest round-trip `{:?}` text
    /// for finite values, quoted `"NaN"`/`"inf"`/`"-inf"` otherwise.
    pub fn num_f64(value: f64) -> Json {
        if value.is_finite() {
            Json::Num(format!("{value:?}"))
        } else if value.is_nan() {
            Json::Str("NaN".into())
        } else if value > 0.0 {
            Json::Str("inf".into())
        } else {
            Json::Str("-inf".into())
        }
    }
}

// --- typed accessors -------------------------------------------------------

impl Json {
    /// Look up `key` in an object.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not an object or lacks the field.
    pub fn field<'a>(&'a self, key: &str) -> ParseResult<&'a Json> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{key}`")),
            _ => Err("value is not an object".into()),
        }
    }

    /// The string payload.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a string.
    pub fn as_str(&self) -> ParseResult<&str> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err("expected a string".into()),
        }
    }

    /// The bool payload.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a bool.
    pub fn as_bool(&self) -> ParseResult<bool> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err("expected a bool".into()),
        }
    }

    /// The number as `u64`.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not an unsigned-integer number.
    pub fn as_u64(&self) -> ParseResult<u64> {
        match self {
            Json::Num(raw) => raw
                .parse::<u64>()
                .map_err(|_| format!("expected an unsigned integer, got `{raw}`")),
            _ => Err("expected a number".into()),
        }
    }

    /// The number as `usize`.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not an unsigned-integer number.
    pub fn as_usize(&self) -> ParseResult<usize> {
        Ok(self.as_u64()? as usize)
    }

    /// The number as `i64`.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not an integer number.
    pub fn as_i64(&self) -> ParseResult<i64> {
        match self {
            Json::Num(raw) => raw
                .parse::<i64>()
                .map_err(|_| format!("expected an integer, got `{raw}`")),
            _ => Err("expected a number".into()),
        }
    }

    /// The number as `f64`; the quoted strings `"NaN"`, `"inf"` and
    /// `"-inf"` decode to the corresponding non-finite values.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is neither a number nor one of the
    /// non-finite marker strings.
    pub fn as_f64(&self) -> ParseResult<f64> {
        match self {
            Json::Num(raw) => raw
                .parse::<f64>()
                .map_err(|_| format!("expected a float, got `{raw}`")),
            Json::Str(s) => match s.as_str() {
                "NaN" => Ok(f64::NAN),
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                other => Err(format!("expected a float, got string `{other}`")),
            },
            _ => Err("expected a float".into()),
        }
    }

    /// The array items.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not an array.
    pub fn as_arr(&self) -> ParseResult<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err("expected an array".into()),
        }
    }

    /// Encode this value back to JSON text. Encoding is canonical with
    /// respect to [`parse_json`]: re-encoding a decoded value yields the
    /// original text (numbers keep their raw form, object order is
    /// preserved).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => push_json_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_str(out, key);
                    out.push(':');
                    value.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_with_escapes_round_trip() {
        for s in [
            "",
            "plain",
            "quote \" slash \\ nl \n tab \t",
            "\u{1}\u{7f}é日",
        ] {
            let mut line = String::new();
            push_json_str(&mut line, s);
            assert_eq!(parse_json(&line).unwrap().as_str().unwrap(), s);
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [
            0.0,
            -0.0,
            0.1 + 0.2,
            -1.0e-308,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let mut line = String::new();
            push_json_f64(&mut line, v);
            let back = parse_json(&line).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "line: {line}");
        }
        let mut line = String::new();
        push_json_f64(&mut line, f64::NAN);
        assert!(parse_json(&line).unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn encode_is_canonical() {
        for text in [
            "{\"a\":1,\"b\":[true,null,\"x\"],\"c\":{\"d\":-2.5e-3}}",
            "[]",
            "{}",
            "[1,2,3]",
            "\"hi\"",
            "-17",
        ] {
            let value = parse_json(text).unwrap();
            assert_eq!(value.encode(), text);
            assert_eq!(parse_json(&value.encode()).unwrap(), value);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "\"unterminated",
            "nul",
            "-",
            "1 2",
            "{\"a\":1}x",
        ] {
            assert!(parse_json(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn numbers_keep_raw_text() {
        let value = parse_json("[1.50, 2e3, -0]").unwrap();
        let items = value.as_arr().unwrap();
        assert_eq!(items[0], Json::Num("1.50".into()));
        assert_eq!(items[0].as_f64().unwrap(), 1.5);
        assert_eq!(items[1].as_f64().unwrap(), 2000.0);
        assert_eq!(
            items[2].as_u64().unwrap_err(),
            "expected an unsigned integer, got `-0`"
        );
    }
}
