//! Online lottery racing — successive halving over concurrent search
//! lanes on one shared evaluation budget.
//!
//! The paper's headline observation is that hyperparameter choice
//! dominates algorithm choice (the "hyperparameter lottery", Section
//! 6.1). The [`sweep`](crate::sweep) layer addresses that *offline*:
//! run every ticket to completion, then compare. This module races the
//! lottery *online*: every `(agent, hyperparameters)` ticket becomes a
//! **lane** — an independent [`SearchLoop`] run — and all lanes share
//! one global sample budget. At deterministic **rung** boundaries the
//! race ranks lanes by best-reward-so-far and eliminates the bottom
//! `1 - 1/eta` fraction (the same elimination rule as
//! [`SuccessiveHalving`](crate::sweep::SuccessiveHalving), via
//! [`halving_keep`](crate::sweep::halving_keep)); the freed evaluation
//! workers flow to the survivors, so the race ends with every worker
//! serving the winning ticket.
//!
//! Determinism is the design constraint everything else hangs off:
//!
//! * [`rung_schedule`] fixes the rung boundaries up front from
//!   `(lanes, eta, budget)` alone — slices are monotone non-decreasing
//!   per lane and cover the budget *exactly* (the final solo rung
//!   absorbs every remainder sample).
//! * Lanes are independent runs, each bit-identical at any worker
//!   count, and all cross-lane aggregation (ranking, elimination,
//!   history assembly) happens on the coordinating thread in lane-id
//!   order — so a race at `--jobs 8` is byte-for-byte the race at
//!   `--jobs 1`.
//! * Ties eliminate deterministically: lanes are ranked by
//!   `(best_reward desc, lane_id asc)`, a total order, so the survivor
//!   set is invariant under any permutation of the roster evaluation.
//! * Each `(lane, rung)` slice journals to its own file under the
//!   race's journal prefix. A killed race re-runs its schedule from
//!   rung 0; completed slices replay from their journals (consuming
//!   zero live evaluations, reconstructing agent state exactly) and
//!   the interrupted slice finishes live — so crash resume reproduces
//!   the uninterrupted race bit-for-bit.
//!
//! Optionally the race **ensembles** the survivors instead of crowning
//! a single lane: the final rung's slice is driven by an
//! [`EnsembleAgent`] that pools the surviving agents' proposals and
//! ranks them by reward-weighted vote, so late-race exploration draws
//! on every surviving ticket at once.

use crate::agent::Agent;
use crate::codec::Json;
use crate::env::Environment;
use crate::error::{ArchGymError, Result};
use crate::executor::Executor;
use crate::screen::Screener;
use crate::search::{RetryPolicy, RunConfig, RunResult, SearchLoop};
use crate::space::Action;
use crate::storeio::{real_io, Durability, StoreIo};
use crate::sweep::halving_keep;
use crate::telemetry::{Counter, Phase, Recorder, RunReport};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One rung of a race schedule: how many lanes are still alive and how
/// many samples each of them receives before the next elimination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rung {
    /// Live lanes entering this rung.
    pub lanes: usize,
    /// Samples each live lane consumes in this rung.
    pub slice: u64,
}

/// The deterministic rung schedule for `lanes` starting lanes, an
/// elimination factor of `eta`, and a global sample `budget`.
///
/// Survivor counts follow [`halving_keep`] down to exactly one lane
/// (`n, ceil(n/eta), ..., 1`); the budget is split greedily — each rung
/// receives an equal share of what remains, divided evenly over its
/// live lanes — and the final solo rung absorbs the whole remainder.
/// Two invariants hold for every input (property-tested in
/// `tests/race.rs`):
///
/// * **exact coverage**: `sum(lanes_r * slice_r) == budget`, and
/// * **monotone slices**: `slice_{r+1} >= slice_r` — survivors never
///   receive less than what eliminated lanes already got.
///
/// Tiny budgets may yield zero-sample early rungs; those rungs still
/// eliminate (on the deterministic lane-id tiebreak), and the budget
/// concentrates on the late survivors.
///
/// # Panics
///
/// Panics if `lanes == 0` or `eta < 2`.
pub fn rung_schedule(lanes: usize, eta: usize, budget: u64) -> Vec<Rung> {
    assert!(lanes > 0, "a race needs at least one lane");
    assert!(eta >= 2, "eta must be at least 2");
    let mut counts = vec![lanes];
    while *counts.last().expect("non-empty") > 1 {
        let last = *counts.last().expect("non-empty");
        counts.push(halving_keep(last, eta));
    }
    let levels = counts.len();
    let mut remaining = budget;
    let mut rungs = Vec::with_capacity(levels);
    for (r, &live) in counts.iter().enumerate() {
        let slice = if r + 1 == levels {
            // Final rung: one lane, all remaining samples (the
            // remainder flows here instead of being dropped).
            remaining
        } else {
            let share = remaining / (levels - r) as u64;
            share / live as u64
        };
        rungs.push(Rung { lanes: live, slice });
        remaining -= slice * live as u64;
    }
    debug_assert_eq!(remaining, 0, "schedule must cover the budget exactly");
    rungs
}

/// Rank `(lane_id, best_reward)` pairs for elimination: best reward
/// first, ties broken by the *lower* lane id. Because `(reward, id)`
/// is a total order over distinct ids, the result is invariant under
/// any permutation of the input — the property that makes elimination
/// reproducible regardless of roster evaluation order.
pub fn rank_lanes(scored: &[(usize, f64)]) -> Vec<usize> {
    let mut order: Vec<(usize, f64)> = scored.to_vec();
    order.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    order.into_iter().map(|(id, _)| id).collect()
}

/// One ticket in the race: a named agent (plus an optional per-lane
/// proxy screener) that will search the shared environment.
pub struct RaceLane {
    /// Display/journal name of the ticket (e.g. `"ga#4"`).
    pub name: String,
    /// The lane's agent, constructed once and carried across rungs.
    pub agent: Box<dyn Agent + Send>,
    /// Optional per-lane online proxy screen.
    pub screener: Option<Box<dyn Screener + Send>>,
}

impl RaceLane {
    /// A lane without proxy screening.
    pub fn new(name: impl Into<String>, agent: Box<dyn Agent + Send>) -> Self {
        RaceLane {
            name: name.into(),
            agent,
            screener: None,
        }
    }

    /// Attach an online proxy screener, builder-style.
    pub fn screened(mut self, screener: Box<dyn Screener + Send>) -> Self {
        self.screener = Some(screener);
        self
    }
}

/// Final state of one lane after the race.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaneOutcome {
    /// Lane id (roster position).
    pub lane: usize,
    /// Ticket name.
    pub name: String,
    /// Best reward the lane observed.
    pub best_reward: f64,
    /// True samples the lane consumed.
    pub samples_used: u64,
    /// The rung after which the lane was eliminated (`None` = survived
    /// to the end).
    pub eliminated_at: Option<usize>,
}

/// What happened at one rung boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RungOutcome {
    /// Rung index.
    pub rung: usize,
    /// Live lanes entering the rung.
    pub lanes: usize,
    /// Samples each live lane consumed this rung.
    pub slice: u64,
    /// Evaluation workers each live lane ran with — grows as lanes die.
    pub workers_per_lane: usize,
    /// Lane ids eliminated at this rung's boundary (empty at the final
    /// rung and at the ensemble hand-off).
    pub eliminated: Vec<usize>,
}

/// Outcome of the reward-weighted ensemble stage (present only when
/// [`Race::ensemble`] was enabled and more than one lane survived to
/// the final rung).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleOutcome {
    /// Lane ids of the surviving members.
    pub members: Vec<usize>,
    /// Reward-derived vote weight per member (same order as
    /// [`EnsembleOutcome::members`]).
    pub weights: Vec<f64>,
    /// Best reward found by the ensemble stream itself.
    pub best_reward: f64,
    /// Samples the ensemble stream consumed.
    pub samples_used: u64,
}

/// Everything a finished race reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RaceResult {
    /// Environment identifier.
    pub env: String,
    /// The global sample budget the race ran on.
    pub budget: u64,
    /// Elimination factor.
    pub eta: usize,
    /// The winning ticket's name (`"ensemble"` when the ensemble
    /// stream beat every individual lane).
    pub winner: String,
    /// Best reward across all lanes and the ensemble stream.
    pub best_reward: f64,
    /// The action achieving [`RaceResult::best_reward`].
    pub best_action: Action,
    /// Observation metrics of the best design.
    pub best_observation: Vec<f64>,
    /// True samples consumed across all lanes (equals the budget
    /// whenever no lane's agent stops proposing early).
    pub samples_used: u64,
    /// Wall-clock duration of the race in seconds.
    pub wall_seconds: f64,
    /// Final state of every lane, in lane-id order.
    pub lanes: Vec<LaneOutcome>,
    /// Per-rung history.
    pub rungs: Vec<RungOutcome>,
    /// Ensemble-stage outcome, when one ran.
    pub ensemble: Option<EnsembleOutcome>,
    /// Reward after each settled evaluation, assembled rung-major and
    /// lane-id-major (the deterministic global settle order).
    pub reward_history: Vec<f64>,
    /// Telemetry snapshot — `None` unless the race was built
    /// [`Race::with_telemetry`] an enabled recorder.
    pub telemetry: Option<RunReport>,
}

impl RaceResult {
    /// Samples spent before the race first reached `threshold`, in the
    /// deterministic global settle order. `None` if never reached.
    pub fn samples_to_reach(&self, threshold: f64) -> Option<u64> {
        self.reward_history
            .iter()
            .position(|&r| r >= threshold)
            .map(|i| i as u64 + 1)
    }
}

/// In-flight state of one lane while the race runs.
struct LaneState<E> {
    id: usize,
    name: String,
    agent: Box<dyn Agent + Send>,
    screener: Option<Box<dyn Screener + Send>>,
    env: E,
    samples_used: u64,
    best_reward: f64,
    best_action: Option<Action>,
    best_observation: Vec<f64>,
    slice_history: Vec<f64>,
    eliminated_at: Option<usize>,
}

/// The racing scheduler. Construct with [`Race::new`], configure
/// builder-style, then [`Race::run`] a roster of [`RaceLane`]s.
#[derive(Debug, Clone)]
pub struct Race {
    budget: u64,
    eta: usize,
    batch: usize,
    jobs: usize,
    ensemble: bool,
    retry: RetryPolicy,
    telemetry: Recorder,
    journal_prefix: Option<PathBuf>,
    journal_io: Arc<dyn StoreIo>,
    durability: Durability,
}

impl Race {
    /// A race over `budget` total samples eliminating the bottom
    /// `1 - 1/eta` fraction at each rung.
    ///
    /// # Panics
    ///
    /// Panics if `eta < 2` or `budget == 0`.
    pub fn new(budget: u64, eta: usize) -> Self {
        assert!(eta >= 2, "eta must be at least 2");
        assert!(budget > 0, "budget must be positive");
        Race {
            budget,
            eta,
            batch: 16,
            jobs: 1,
            ensemble: false,
            retry: RetryPolicy::default(),
            telemetry: Recorder::default(),
            journal_prefix: None,
            journal_io: real_io(),
            durability: Durability::None,
        }
    }

    /// Override the per-lane proposal batch size, builder-style
    /// (`0` = each agent's own hint).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Total evaluation workers shared by the live lanes, builder-style
    /// (`0` = every available core). Freed workers are reassigned to
    /// survivors after each elimination; results are bit-identical at
    /// any setting.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Drive the final rung with a reward-weighted ensemble of the
    /// surviving lanes instead of the solo winner, builder-style.
    pub fn ensemble(mut self, ensemble: bool) -> Self {
        self.ensemble = ensemble;
        self
    }

    /// Set the per-evaluation retry/degrade policy, builder-style.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attach a telemetry recorder, builder-style. The race feeds it
    /// the `race_*` counters, a [`Phase::Race`] span per rung, per-lane
    /// trace events, and shares it with every lane's search loop.
    pub fn with_telemetry(mut self, recorder: Recorder) -> Self {
        self.telemetry = recorder;
        self
    }

    /// Journal every `(lane, rung)` slice to
    /// `{prefix}-l{lane:03}-r{rung:02}.jsonl` (and the ensemble stage
    /// to `{prefix}-ensemble.jsonl`), builder-style. Re-running the
    /// same race over existing files replays them bit-identically —
    /// this is the crash-resume path.
    pub fn with_journal_prefix(mut self, prefix: impl Into<PathBuf>) -> Self {
        self.journal_prefix = Some(prefix.into());
        self
    }

    /// Route journal I/O through `io`, builder-style (tests inject
    /// fault-injecting filesystems here).
    pub fn with_journal_io(mut self, io: Arc<dyn StoreIo>) -> Self {
        self.journal_io = io;
        self
    }

    /// Set the journal fsync policy, builder-style.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// The race's rung schedule for a roster of `lanes` tickets.
    pub fn schedule(&self, lanes: usize) -> Vec<Rung> {
        rung_schedule(lanes, self.eta, self.budget)
    }

    /// Run the race.
    ///
    /// # Errors
    ///
    /// Fails on an empty roster and propagates journal I/O errors.
    pub fn run<E>(&self, lanes: Vec<RaceLane>, env: E) -> Result<RaceResult>
    where
        E: Environment + Clone + Send,
    {
        if lanes.is_empty() {
            return Err(ArchGymError::InvalidConfig(
                "a race needs a non-empty roster".into(),
            ));
        }
        let start = Instant::now();
        let rec = &self.telemetry;
        let env_name = env.name().to_owned();
        let schedule = self.schedule(lanes.len());
        let levels = schedule.len();
        let workers_total = if self.jobs == 0 {
            Executor::available_parallelism()
        } else {
            self.jobs
        };

        let mut states: Vec<LaneState<E>> = lanes
            .into_iter()
            .enumerate()
            .map(|(id, lane)| LaneState {
                id,
                name: lane.name,
                agent: lane.agent,
                screener: lane.screener,
                env: env.clone(),
                samples_used: 0,
                best_reward: f64::NEG_INFINITY,
                best_action: None,
                best_observation: Vec::new(),
                slice_history: Vec::new(),
                eliminated_at: None,
            })
            .collect();
        rec.add(Counter::RaceLanesStarted, states.len() as u64);

        let mut rungs_out: Vec<RungOutcome> = Vec::with_capacity(levels);
        let mut global_history: Vec<f64> = Vec::new();
        let mut ensemble_out: Option<EnsembleOutcome> = None;
        let mut ensemble_best: Option<(f64, Action, Vec<f64>)> = None;

        for (r, rung) in schedule.iter().enumerate() {
            let _span = rec.span(Phase::Race);
            let live: Vec<usize> = states
                .iter()
                .filter(|s| s.eliminated_at.is_none())
                .map(|s| s.id)
                .collect();
            let is_final = r + 1 == levels;
            // With ensembling on, the last elimination is skipped, so
            // the final rung legitimately holds the prior rung's
            // survivor count instead of the schedule's solo lane.
            debug_assert!(
                live.len() == rung.lanes || (self.ensemble && is_final),
                "schedule out of sync"
            );

            // Ensemble hand-off: when enabled, the last elimination is
            // skipped (below), so more than one lane reaches the final
            // rung; their pooled proposals drive the final slice.
            if is_final && self.ensemble && live.len() > 1 {
                let (outcome, result) =
                    self.run_ensemble(&mut states, &live, rung.slice, workers_total, &env)?;
                global_history.extend_from_slice(&result.reward_history);
                if result.samples_used > 0 {
                    ensemble_best = Some((
                        result.best_reward,
                        result.best_action.clone(),
                        result.best_observation.clone(),
                    ));
                }
                if rec.is_enabled() {
                    rec.trace_event(&Json::Obj(vec![
                        ("event".into(), Json::Str("race_ensemble".into())),
                        ("rung".into(), Json::num_u64(r as u64)),
                        (
                            "members".into(),
                            Json::num_u64(outcome.members.len() as u64),
                        ),
                        ("slice".into(), Json::num_u64(rung.slice)),
                        ("best_reward".into(), Json::num_f64(result.best_reward)),
                        (
                            "samples_used".into(),
                            Json::num_u64(self.total_samples(&states) + result.samples_used),
                        ),
                    ]));
                }
                rungs_out.push(RungOutcome {
                    rung: r,
                    lanes: live.len(),
                    slice: rung.slice,
                    workers_per_lane: workers_total.max(1),
                    eliminated: Vec::new(),
                });
                ensemble_out = Some(outcome);
                break;
            }

            let pool_jobs = (workers_total / live.len().max(1)).max(1);
            if rung.slice > 0 {
                self.advance_wave(&mut states, r, rung.slice, pool_jobs, workers_total)?;
                for state in states.iter().filter(|s| s.eliminated_at.is_none()) {
                    global_history.extend_from_slice(&state.slice_history);
                    if rec.is_enabled() {
                        rec.trace_event(&Json::Obj(vec![
                            ("event".into(), Json::Str("race_lane".into())),
                            ("rung".into(), Json::num_u64(r as u64)),
                            ("lane".into(), Json::num_u64(state.id as u64)),
                            ("name".into(), Json::Str(state.name.clone())),
                            ("lane_samples".into(), Json::num_u64(state.samples_used)),
                            ("best_reward".into(), Json::num_f64(state.best_reward)),
                        ]));
                    }
                }
            }
            let global_best = self.best_lane(&states);
            if rec.is_enabled() {
                rec.trace_event(&Json::Obj(vec![
                    ("event".into(), Json::Str("race_rung".into())),
                    ("rung".into(), Json::num_u64(r as u64)),
                    ("lanes".into(), Json::num_u64(live.len() as u64)),
                    ("slice".into(), Json::num_u64(rung.slice)),
                    ("workers_per_lane".into(), Json::num_u64(pool_jobs as u64)),
                    (
                        "samples_used".into(),
                        Json::num_u64(self.total_samples(&states)),
                    ),
                    (
                        "best_reward".into(),
                        Json::num_f64(states[global_best].best_reward),
                    ),
                ]));
            }

            // Eliminate down to the next rung's lane count — except
            // before an ensemble final, which inherits all survivors.
            let mut eliminated: Vec<usize> = Vec::new();
            if !is_final {
                let about_to_ensemble = self.ensemble && r + 2 == levels && live.len() > 1;
                if !about_to_ensemble {
                    let keep = schedule[r + 1].lanes;
                    let scored: Vec<(usize, f64)> = live
                        .iter()
                        .map(|&id| (id, states[id].best_reward))
                        .collect();
                    let ranked = rank_lanes(&scored);
                    for &id in &ranked[keep..] {
                        states[id].eliminated_at = Some(r);
                        eliminated.push(id);
                    }
                    eliminated.sort_unstable();
                    rec.add(Counter::RaceLanesEliminated, eliminated.len() as u64);
                    rec.add(Counter::RaceLanesPromoted, keep as u64);
                    if rec.is_enabled() {
                        for &id in &eliminated {
                            rec.trace_event(&Json::Obj(vec![
                                ("event".into(), Json::Str("race_eliminate".into())),
                                ("rung".into(), Json::num_u64(r as u64)),
                                ("lane".into(), Json::num_u64(id as u64)),
                                ("name".into(), Json::Str(states[id].name.clone())),
                                ("best_reward".into(), Json::num_f64(states[id].best_reward)),
                            ]));
                        }
                        for &id in &ranked[..keep] {
                            rec.trace_event(&Json::Obj(vec![
                                ("event".into(), Json::Str("race_promote".into())),
                                ("rung".into(), Json::num_u64(r as u64)),
                                ("lane".into(), Json::num_u64(id as u64)),
                                ("name".into(), Json::Str(states[id].name.clone())),
                                ("best_reward".into(), Json::num_f64(states[id].best_reward)),
                            ]));
                        }
                    }
                }
            }
            rungs_out.push(RungOutcome {
                rung: r,
                lanes: live.len(),
                slice: rung.slice,
                workers_per_lane: pool_jobs,
                eliminated,
            });
        }

        // Crown the winner: the best lane, displaced by the ensemble
        // stream only when the ensemble found a strictly better design.
        let best_id = self.best_lane(&states);
        let mut winner = states[best_id].name.clone();
        let mut best_reward = states[best_id].best_reward;
        let mut best_action = states[best_id]
            .best_action
            .clone()
            .unwrap_or_else(|| Action::new(Vec::new()));
        let mut best_observation = states[best_id].best_observation.clone();
        if let Some((reward, action, observation)) = ensemble_best {
            if reward > best_reward {
                winner = "ensemble".into();
                best_reward = reward;
                best_action = action;
                best_observation = observation;
            }
        }
        let samples_used =
            self.total_samples(&states) + ensemble_out.as_ref().map_or(0, |e| e.samples_used);
        let wall_seconds = start.elapsed().as_secs_f64();
        rec.gauge("race_wall_seconds", wall_seconds);
        rec.gauge("race_best_reward", best_reward);

        Ok(RaceResult {
            env: env_name,
            budget: self.budget,
            eta: self.eta,
            winner,
            best_reward,
            best_action,
            best_observation,
            samples_used,
            wall_seconds,
            lanes: states
                .iter()
                .map(|s| LaneOutcome {
                    lane: s.id,
                    name: s.name.clone(),
                    best_reward: s.best_reward,
                    samples_used: s.samples_used,
                    eliminated_at: s.eliminated_at,
                })
                .collect(),
            rungs: rungs_out,
            ensemble: ensemble_out,
            reward_history: global_history,
            telemetry: rec.report(),
        })
    }

    /// True samples consumed by all lanes so far.
    fn total_samples<E>(&self, states: &[LaneState<E>]) -> u64 {
        states.iter().map(|s| s.samples_used).sum()
    }

    /// The lane id holding the race's best reward (lane-id tiebreak).
    fn best_lane<E>(&self, states: &[LaneState<E>]) -> usize {
        let scored: Vec<(usize, f64)> = states.iter().map(|s| (s.id, s.best_reward)).collect();
        rank_lanes(&scored)[0]
    }

    /// Advance every live lane by `slice` samples, fanning lanes over
    /// up to `workers` coordinator threads (each lane additionally runs
    /// its evaluations over `pool_jobs` pool replicas). Lane-to-thread
    /// assignment is round-robin in lane-id order and — because each
    /// lane's run is independent and bit-identical at any pool width —
    /// has no observable effect on results.
    fn advance_wave<E>(
        &self,
        states: &mut [LaneState<E>],
        rung: usize,
        slice: u64,
        pool_jobs: usize,
        workers: usize,
    ) -> Result<()>
    where
        E: Environment + Clone + Send,
    {
        let live: Vec<&mut LaneState<E>> = states
            .iter_mut()
            .filter(|s| s.eliminated_at.is_none())
            .collect();
        let workers = workers.min(live.len()).max(1);
        let mut buckets: Vec<Vec<&mut LaneState<E>>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, lane) in live.into_iter().enumerate() {
            buckets[i % workers].push(lane);
        }
        let failures: Mutex<Vec<(usize, ArchGymError)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for bucket in buckets {
                let failures = &failures;
                scope.spawn(move || {
                    for lane in bucket {
                        if let Err(e) = self.advance_lane(lane, rung, slice, pool_jobs) {
                            failures.lock().expect("poisoned").push((lane.id, e));
                        }
                    }
                });
            }
        });
        let mut failures = failures.into_inner().expect("poisoned");
        failures.sort_by_key(|&(id, _)| id);
        match failures.into_iter().next() {
            Some((id, e)) => Err(ArchGymError::Journal(format!("race lane {id}: {e}"))),
            None => Ok(()),
        }
    }

    /// Drive one lane through one rung slice: an ordinary search run
    /// at budget `slice`, journaled per `(lane, rung)` when the race
    /// has a journal prefix, proxy-screened when the lane carries a
    /// screener.
    fn advance_lane<E>(
        &self,
        lane: &mut LaneState<E>,
        rung: usize,
        slice: u64,
        pool_jobs: usize,
    ) -> Result<()>
    where
        E: Environment + Clone + Send,
    {
        let config = RunConfig::with_budget(slice)
            .batch(self.batch)
            .record(true)
            .jobs(pool_jobs)
            .retry(self.retry);
        let driver = SearchLoop::new(config)
            .with_telemetry(self.telemetry.clone())
            .with_journal_io(Arc::clone(&self.journal_io))
            .with_durability(self.durability);
        let env = lane.env.clone();
        let result = match (&self.journal_prefix, &mut lane.screener) {
            (Some(prefix), Some(screener)) => driver.run_screened_resumable_pooled(
                &mut lane.agent,
                env,
                &mut **screener,
                lane_journal(prefix, lane.id, rung),
            )?,
            (Some(prefix), None) => driver.run_resumable_pooled(
                &mut lane.agent,
                env,
                lane_journal(prefix, lane.id, rung),
            )?,
            (None, Some(screener)) => {
                driver.run_screened_pooled(&mut lane.agent, env, &mut **screener)
            }
            (None, None) => driver.run_pooled(&mut lane.agent, env),
        };
        lane.samples_used += result.samples_used;
        if result.samples_used > 0 && result.best_reward > lane.best_reward {
            lane.best_reward = result.best_reward;
            lane.best_action = Some(result.best_action.clone());
            lane.best_observation = result.best_observation.clone();
        }
        lane.slice_history = result.reward_history;
        Ok(())
    }

    /// Run the final rung as a reward-weighted ensemble of the live
    /// lanes' agents.
    fn run_ensemble<E>(
        &self,
        states: &mut [LaneState<E>],
        live: &[usize],
        slice: u64,
        workers: usize,
        env: &E,
    ) -> Result<(EnsembleOutcome, RunResult)>
    where
        E: Environment + Clone + Send,
    {
        let min_best = live
            .iter()
            .map(|&id| states[id].best_reward)
            .fold(f64::INFINITY, f64::min);
        let weights: Vec<f64> = live
            .iter()
            .map(|&id| {
                let w = states[id].best_reward - min_best + 1.0;
                if w.is_finite() && w > 0.0 {
                    w
                } else {
                    1.0
                }
            })
            .collect();
        let mut members: Vec<(&mut (dyn Agent + Send), f64)> = Vec::new();
        {
            let mut wanted: Vec<(usize, f64)> =
                live.iter().copied().zip(weights.iter().copied()).collect();
            for state in states.iter_mut() {
                if let Some(pos) = wanted.iter().position(|&(id, _)| id == state.id) {
                    let (_, w) = wanted.remove(pos);
                    members.push((&mut *state.agent, w));
                }
            }
        }
        let mut ensemble = EnsembleAgent::new(members);
        let config = RunConfig::with_budget(slice)
            .batch(self.batch)
            .record(true)
            .jobs(workers.max(1))
            .retry(self.retry);
        let driver = SearchLoop::new(config)
            .with_telemetry(self.telemetry.clone())
            .with_journal_io(Arc::clone(&self.journal_io))
            .with_durability(self.durability);
        let result = match &self.journal_prefix {
            Some(prefix) => {
                driver.run_resumable_pooled(&mut ensemble, env.clone(), ensemble_journal(prefix))?
            }
            None => driver.run_pooled(&mut ensemble, env.clone()),
        };
        let outcome = EnsembleOutcome {
            members: live.to_vec(),
            weights,
            best_reward: result.best_reward,
            samples_used: result.samples_used,
        };
        Ok((outcome, result))
    }
}

/// The journal file of one `(lane, rung)` slice under a race prefix.
pub fn lane_journal(prefix: &Path, lane: usize, rung: usize) -> PathBuf {
    let mut s = prefix.as_os_str().to_os_string();
    s.push(format!("-l{lane:03}-r{rung:02}.jsonl"));
    PathBuf::from(s)
}

/// The journal file of the ensemble stage under a race prefix.
pub fn ensemble_journal(prefix: &Path) -> PathBuf {
    let mut s = prefix.as_os_str().to_os_string();
    s.push("-ensemble.jsonl");
    PathBuf::from(s)
}

/// Reward-weighted proposal voting over the surviving lanes' agents.
///
/// Each proposal round, every member proposes up to the batch cap; a
/// candidate's vote is the sum of the weights of the members proposing
/// it (each member votes a given action at most once per round).
/// Candidates are ranked by `(vote desc, first-appearance asc)` — a
/// deterministic total order — and the top slice becomes the ensemble's
/// proposal. Observations fan out to every member, so all survivors
/// keep learning from the elite stream. The paper's agents already
/// accept arbitrary transitions (the warm-start path feeds them
/// offline datasets), which is what makes the fan-out sound.
pub struct EnsembleAgent<'a> {
    members: Vec<(&'a mut (dyn Agent + Send), f64)>,
}

impl<'a> EnsembleAgent<'a> {
    /// An ensemble over `(agent, vote weight)` members.
    pub fn new(members: Vec<(&'a mut (dyn Agent + Send), f64)>) -> Self {
        EnsembleAgent { members }
    }
}

impl Agent for EnsembleAgent<'_> {
    fn name(&self) -> &str {
        "ensemble"
    }

    fn propose(&mut self, max_batch: usize) -> Vec<Action> {
        // (action, vote, first-appearance order)
        let mut ballots: Vec<(Action, f64, usize)> = Vec::new();
        for (member, weight) in self.members.iter_mut() {
            let proposals = member.propose(max_batch);
            let mut voted: Vec<&Action> = Vec::new();
            for action in &proposals {
                if voted.contains(&action) {
                    continue;
                }
                match ballots.iter_mut().find(|(a, _, _)| a == action) {
                    Some((_, vote, _)) => *vote += *weight,
                    None => {
                        let order = ballots.len();
                        ballots.push((action.clone(), *weight, order));
                    }
                }
                voted.push(action);
            }
        }
        ballots.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.2.cmp(&b.2)));
        ballots.truncate(max_batch);
        ballots.into_iter().map(|(action, _, _)| action).collect()
    }

    fn observe(&mut self, results: &[(Action, crate::env::StepResult)]) {
        for (member, _) in self.members.iter_mut() {
            member.observe(results);
        }
    }

    fn batch_hint(&self) -> Option<usize> {
        self.members
            .iter()
            .filter_map(|(member, _)| member.batch_hint())
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::RandomWalker;
    use crate::toy::PeakEnv;

    fn roster(n: usize, space: &crate::space::ParamSpace) -> Vec<RaceLane> {
        (0..n)
            .map(|i| {
                RaceLane::new(
                    format!("rw#{i}"),
                    Box::new(RandomWalker::new(space.clone(), i as u64)),
                )
            })
            .collect()
    }

    #[test]
    fn schedule_covers_budget_exactly_and_ends_at_one() {
        for (lanes, eta, budget) in [(24, 3, 1000), (5, 2, 97), (1, 2, 13), (7, 4, 3)] {
            let schedule = rung_schedule(lanes, eta, budget);
            let total: u64 = schedule.iter().map(|r| r.lanes as u64 * r.slice).sum();
            assert_eq!(total, budget, "lanes={lanes} eta={eta} budget={budget}");
            assert_eq!(schedule.last().unwrap().lanes, 1);
            for pair in schedule.windows(2) {
                assert!(pair[1].slice >= pair[0].slice, "slices must be monotone");
                assert_eq!(pair[1].lanes, halving_keep(pair[0].lanes, eta));
            }
        }
    }

    #[test]
    fn rank_is_permutation_invariant_with_lane_id_tiebreak() {
        let scored = vec![(3, 1.0), (0, 2.0), (2, 1.0), (1, 2.0)];
        let mut shuffled = scored.clone();
        shuffled.reverse();
        assert_eq!(rank_lanes(&scored), vec![0, 1, 2, 3]);
        assert_eq!(rank_lanes(&scored), rank_lanes(&shuffled));
    }

    #[test]
    fn race_consumes_exact_budget_and_eliminates_down_to_one() {
        let env = PeakEnv::new(&[8, 8], vec![5, 1]);
        let space = env.space().clone();
        let result = Race::new(240, 2)
            .batch(8)
            .run(roster(6, &space), env)
            .unwrap();
        assert_eq!(result.samples_used, 240);
        assert_eq!(result.reward_history.len(), 240);
        let survivors = result
            .lanes
            .iter()
            .filter(|l| l.eliminated_at.is_none())
            .count();
        assert_eq!(survivors, 1);
        assert!(result.best_reward > 0.0);
    }

    #[test]
    fn race_is_bit_identical_across_jobs() {
        let env = PeakEnv::new(&[8, 8], vec![5, 1]);
        let space = env.space().clone();
        let run = |jobs| {
            Race::new(180, 3)
                .batch(8)
                .jobs(jobs)
                .run(roster(5, &space), env.clone())
                .unwrap()
        };
        let serial = run(1);
        let pooled = run(4);
        assert_eq!(serial.reward_history, pooled.reward_history);
        assert_eq!(serial.best_reward, pooled.best_reward);
        assert_eq!(serial.winner, pooled.winner);
    }

    #[test]
    fn ensemble_votes_deterministically_and_fans_observations() {
        let env = PeakEnv::new(&[8, 8], vec![5, 1]);
        let space = env.space().clone();
        let run = || {
            Race::new(200, 2)
                .batch(8)
                .ensemble(true)
                .run(roster(4, &space), env.clone())
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.reward_history, b.reward_history);
        let ensemble = a.ensemble.expect("ensemble stage must run");
        assert_eq!(ensemble.members.len(), 2);
        assert_eq!(a.samples_used, 200);
    }

    #[test]
    fn empty_roster_is_an_error() {
        let env = PeakEnv::new(&[4, 4], vec![1, 1]);
        assert!(Race::new(10, 2).run(Vec::new(), env).is_err());
    }
}
