//! Crash-safe run journal — write-ahead logging for [`SearchLoop`]
//! (see [`crate::search::SearchLoop::run_resumable`]).
//!
//! A journal is an append-only JSONL file: a header record naming the
//! run configuration, then for each evaluated batch a `batch` record
//! (the proposed actions, written *before* evaluation — write-ahead)
//! followed by one `step` record per settled evaluation. Alongside the
//! log, a compact snapshot (`<journal>.snap`) is refreshed after every
//! batch via the atomic tmp+rename idiom, so a reader can always find a
//! consistent best-so-far without replaying the log.
//!
//! Crash tolerance is asymmetric by design: a process killed mid-write
//! leaves at most one damaged line at the *tail* of the log, so
//! [`RunJournal::open`] silently drops an unterminated or unparsable
//! final line (truncating the file back to the last good record), while
//! damage anywhere else is real corruption and surfaces as
//! [`ArchGymError::Journal`].
//!
//! The records are encoded with the hand-rolled JSON codec in
//! [`crate::codec`] rather than serde: the journal must keep working in
//! offline verification builds where the serde facade is stubbed out,
//! and it needs bit-exact `f64` round-trips (Rust's `{:?}` shortest
//! representation) for the resume-bit-identity guarantee. Non-finite
//! rewards — a corrupted evaluation is journaled too — are encoded as
//! the quoted strings `"NaN"`, `"inf"` and `"-inf"`.

use crate::codec::{parse_json, push_json_f64, push_json_str, Json};
use crate::error::{ArchGymError, Result};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Journal format version; bumped on incompatible record changes.
pub const JOURNAL_VERSION: u64 = 1;

fn bad(msg: impl Into<String>) -> ArchGymError {
    ArchGymError::Journal(msg.into())
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// The run identity a journal belongs to; resume refuses to replay a
/// journal whose header does not match the live configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Format version ([`JOURNAL_VERSION`]).
    pub version: u64,
    /// Environment name.
    pub env: String,
    /// Agent name.
    pub agent: String,
    /// Total sample budget of the run.
    pub budget: u64,
    /// Requested batch size.
    pub batch: u64,
}

/// One settled evaluation within a journaled batch.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalStep {
    /// Position of this action within its batch.
    pub index: usize,
    /// Settled reward (may be the degrade penalty).
    pub reward: f64,
    /// Settled observation vector.
    pub observation: Vec<f64>,
    /// Terminal flag from the settled result.
    pub done: bool,
    /// Feasibility flag from the settled result.
    pub feasible: bool,
    /// Auxiliary metrics from the settled result.
    pub info: BTreeMap<String, f64>,
    /// Retry rounds this action consumed while settling.
    pub retries: u64,
    /// Failed evaluation outcomes observed while settling.
    pub faults: u64,
    /// Whether the action exhausted its retries and was degraded to the
    /// infeasible penalty.
    pub degraded: bool,
}

/// One line of the append-only journal log.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// Run identity; always the first record.
    Header(JournalHeader),
    /// A proposed batch of actions, written before evaluation.
    Batch(Vec<Vec<usize>>),
    /// The proxy screen's admission decision for the most recent batch:
    /// the candidate indices forwarded to true evaluation, sorted
    /// ascending. Written between the batch record and its steps, so a
    /// resumed run replays the exact screened decision instead of
    /// re-deriving it from a possibly-drifted model state.
    Screen(Vec<usize>),
    /// A settled evaluation within the most recent batch.
    Step(JournalStep),
}

impl JournalRecord {
    /// Encode as a single JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        match self {
            JournalRecord::Header(h) => {
                out.push_str("{\"type\":\"header\",\"version\":");
                let _ = write!(out, "{}", h.version);
                out.push_str(",\"env\":");
                push_json_str(&mut out, &h.env);
                out.push_str(",\"agent\":");
                push_json_str(&mut out, &h.agent);
                let _ = write!(out, ",\"budget\":{},\"batch\":{}}}", h.budget, h.batch);
            }
            JournalRecord::Batch(actions) => {
                out.push_str("{\"type\":\"batch\",\"actions\":[");
                for (i, action) in actions.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    for (j, index) in action.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{index}");
                    }
                    out.push(']');
                }
                out.push_str("]}");
            }
            JournalRecord::Screen(admitted) => {
                out.push_str("{\"type\":\"screen\",\"admitted\":[");
                for (i, index) in admitted.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{index}");
                }
                out.push_str("]}");
            }
            JournalRecord::Step(s) => {
                let _ = write!(out, "{{\"type\":\"step\",\"index\":{},\"reward\":", s.index);
                push_json_f64(&mut out, s.reward);
                out.push_str(",\"obs\":[");
                for (i, v) in s.observation.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_f64(&mut out, *v);
                }
                let _ = write!(
                    out,
                    "],\"done\":{},\"feasible\":{},\"info\":{{",
                    s.done, s.feasible
                );
                for (i, (key, value)) in s.info.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_str(&mut out, key);
                    out.push(':');
                    push_json_f64(&mut out, *value);
                }
                let _ = write!(
                    out,
                    "}},\"retries\":{},\"faults\":{},\"degraded\":{}}}",
                    s.retries, s.faults, s.degraded
                );
            }
        }
        out
    }

    /// Decode one JSONL line.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::Journal`] on malformed lines.
    pub fn from_line(line: &str) -> Result<Self> {
        Self::decode(line).map_err(bad)
    }

    fn decode(line: &str) -> std::result::Result<Self, String> {
        let value = parse_json(line)?;
        match value.field("type")?.as_str()? {
            "header" => Ok(JournalRecord::Header(JournalHeader {
                version: value.field("version")?.as_u64()?,
                env: value.field("env")?.as_str()?.to_owned(),
                agent: value.field("agent")?.as_str()?.to_owned(),
                budget: value.field("budget")?.as_u64()?,
                batch: value.field("batch")?.as_u64()?,
            })),
            "batch" => {
                let mut actions = Vec::new();
                for item in value.field("actions")?.as_arr()? {
                    let indices = item
                        .as_arr()?
                        .iter()
                        .map(Json::as_usize)
                        .collect::<std::result::Result<Vec<_>, String>>()?;
                    actions.push(indices);
                }
                Ok(JournalRecord::Batch(actions))
            }
            "screen" => {
                let admitted = value
                    .field("admitted")?
                    .as_arr()?
                    .iter()
                    .map(Json::as_usize)
                    .collect::<std::result::Result<Vec<_>, String>>()?;
                Ok(JournalRecord::Screen(admitted))
            }
            "step" => {
                let mut info = BTreeMap::new();
                match value.field("info")? {
                    Json::Obj(fields) => {
                        for (key, v) in fields {
                            info.insert(key.clone(), v.as_f64()?);
                        }
                    }
                    _ => return Err("step `info` is not an object".into()),
                }
                Ok(JournalRecord::Step(JournalStep {
                    index: value.field("index")?.as_usize()?,
                    reward: value.field("reward")?.as_f64()?,
                    observation: value
                        .field("obs")?
                        .as_arr()?
                        .iter()
                        .map(Json::as_f64)
                        .collect::<std::result::Result<Vec<_>, String>>()?,
                    done: value.field("done")?.as_bool()?,
                    feasible: value.field("feasible")?.as_bool()?,
                    info,
                    retries: value.field("retries")?.as_u64()?,
                    faults: value.field("faults")?.as_u64()?,
                    degraded: value.field("degraded")?.as_bool()?,
                }))
            }
            other => Err(format!("unknown journal record type `{other}`")),
        }
    }
}

/// The periodic best-so-far snapshot written next to the log.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Samples settled so far.
    pub samples: u64,
    /// Best reward seen so far.
    pub best_reward: f64,
    /// Action achieving the best reward.
    pub best_action: Vec<usize>,
    /// Observation of the best action.
    pub best_observation: Vec<f64>,
    /// Retry rounds consumed so far.
    pub eval_retries: u64,
    /// Failed evaluation outcomes so far.
    pub eval_failures: u64,
    /// Samples degraded to the penalty so far.
    pub degraded_samples: u64,
}

impl Snapshot {
    fn to_line(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"samples\":{},\"best_reward\":", self.samples);
        push_json_f64(&mut out, self.best_reward);
        out.push_str(",\"best_action\":[");
        for (i, v) in self.best_action.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push_str("],\"best_observation\":[");
        for (i, v) in self.best_observation.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_f64(&mut out, *v);
        }
        let _ = write!(
            out,
            "],\"eval_retries\":{},\"eval_failures\":{},\"degraded_samples\":{}}}",
            self.eval_retries, self.eval_failures, self.degraded_samples
        );
        out
    }

    fn from_line(line: &str) -> Result<Self> {
        Self::decode(line).map_err(bad)
    }

    fn decode(line: &str) -> std::result::Result<Self, String> {
        let value = parse_json(line)?;
        Ok(Snapshot {
            samples: value.field("samples")?.as_u64()?,
            best_reward: value.field("best_reward")?.as_f64()?,
            best_action: value
                .field("best_action")?
                .as_arr()?
                .iter()
                .map(Json::as_usize)
                .collect::<std::result::Result<Vec<_>, String>>()?,
            best_observation: value
                .field("best_observation")?
                .as_arr()?
                .iter()
                .map(Json::as_f64)
                .collect::<std::result::Result<Vec<_>, String>>()?,
            eval_retries: value.field("eval_retries")?.as_u64()?,
            eval_failures: value.field("eval_failures")?.as_u64()?,
            degraded_samples: value.field("degraded_samples")?.as_u64()?,
        })
    }
}

// ---------------------------------------------------------------------------
// RunJournal
// ---------------------------------------------------------------------------

/// An open write-ahead run journal: the records recovered from disk
/// plus an append handle flushing each new record before evaluation
/// proceeds.
#[derive(Debug)]
pub struct RunJournal {
    path: PathBuf,
    file: File,
    records: Vec<JournalRecord>,
    recovered_partial_tail: bool,
    telemetry: crate::telemetry::Recorder,
}

impl RunJournal {
    /// Open (or create) the journal at `path`, recovering any existing
    /// records. An unterminated or unparsable *final* line — the
    /// artifact of a crash mid-write — is dropped and the file is
    /// truncated back to the last good record; damage anywhere else is
    /// an error.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut records = Vec::new();
        let mut recovered_partial_tail = false;

        if path.exists() {
            let text = fs::read_to_string(&path)
                .map_err(|e| bad(format!("cannot read journal {}: {e}", path.display())))?;

            // (trimmed line, start offset, complete?) for non-blank lines.
            let mut entries: Vec<(&str, usize, bool)> = Vec::new();
            let mut offset = 0;
            for chunk in text.split_inclusive('\n') {
                let complete = chunk.ends_with('\n');
                let line = chunk.trim_end_matches(['\n', '\r']);
                if !line.trim().is_empty() {
                    entries.push((line, offset, complete));
                }
                offset += chunk.len();
            }

            let mut good_end = 0usize;
            for (i, (line, start, complete)) in entries.iter().enumerate() {
                let last = i + 1 == entries.len();
                if !complete {
                    // Unterminated tail: can't trust it even if it parses.
                    if last {
                        recovered_partial_tail = true;
                        break;
                    }
                    return Err(bad("unterminated journal line before end of file"));
                }
                match JournalRecord::from_line(line) {
                    Ok(record) => {
                        records.push(record);
                        good_end = start
                            + line.len()
                            + (text.as_bytes()[start + line.len()..]
                                .iter()
                                .take_while(|&&b| b == b'\r' || b == b'\n')
                                .count());
                    }
                    Err(err) if last => {
                        recovered_partial_tail = true;
                        let _ = err;
                        break;
                    }
                    Err(err) => {
                        return Err(bad(format!(
                            "corrupt journal record at line {}: {err}",
                            i + 1
                        )))
                    }
                }
            }

            if recovered_partial_tail {
                let file = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| bad(format!("cannot repair journal: {e}")))?;
                file.set_len(good_end as u64)
                    .map_err(|e| bad(format!("cannot truncate damaged journal tail: {e}")))?;
            }
        }

        if let Some(first) = records.first() {
            match first {
                JournalRecord::Header(h) if h.version == JOURNAL_VERSION => {}
                JournalRecord::Header(h) => {
                    return Err(bad(format!(
                        "journal version {} unsupported (expected {JOURNAL_VERSION})",
                        h.version
                    )))
                }
                _ => return Err(bad("journal does not start with a header record")),
            }
        }

        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| bad(format!("cannot open journal {}: {e}", path.display())))?;

        Ok(RunJournal {
            path,
            file,
            records,
            recovered_partial_tail,
            telemetry: crate::telemetry::Recorder::default(),
        })
    }

    /// Install a telemetry recorder: each [`RunJournal::append`] counts
    /// one journal-append and times its write+flush.
    pub fn set_telemetry(&mut self, recorder: &crate::telemetry::Recorder) {
        self.telemetry = recorder.clone();
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records recovered when the journal was opened (resume replays
    /// these; records appended later are not reflected here).
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// Whether the journal held no recovered records when opened.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The recovered header, if any.
    pub fn header(&self) -> Option<&JournalHeader> {
        match self.records.first() {
            Some(JournalRecord::Header(h)) => Some(h),
            _ => None,
        }
    }

    /// Whether a damaged tail line was dropped during recovery.
    pub fn recovered_partial_tail(&self) -> bool {
        self.recovered_partial_tail
    }

    /// Append one record and flush it to the OS before returning —
    /// write-ahead semantics for batch records.
    pub fn append(&mut self, record: &JournalRecord) -> Result<()> {
        let _span = self.telemetry.span(crate::telemetry::Phase::JournalAppend);
        self.telemetry
            .incr(crate::telemetry::Counter::JournalAppends);
        let mut line = record.to_line();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|_| self.file.flush())
            .map_err(|e| bad(format!("cannot append to journal: {e}")))
    }

    /// The snapshot path paired with a journal path.
    pub fn snapshot_path(path: &Path) -> PathBuf {
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        name.push(".snap");
        path.with_file_name(name)
    }

    /// Atomically replace the best-so-far snapshot (tmp + rename).
    pub fn write_snapshot(&self, snapshot: &Snapshot) -> Result<()> {
        let snap_path = Self::snapshot_path(&self.path);
        let mut tmp_name = snap_path.file_name().unwrap_or_default().to_os_string();
        tmp_name.push(".tmp");
        let tmp_path = snap_path.with_file_name(tmp_name);
        let mut line = snapshot.to_line();
        line.push('\n');
        fs::write(&tmp_path, line).map_err(|e| bad(format!("cannot write snapshot: {e}")))?;
        fs::rename(&tmp_path, &snap_path).map_err(|e| bad(format!("cannot publish snapshot: {e}")))
    }

    /// Read the snapshot paired with `path`, if one exists.
    pub fn read_snapshot(path: impl AsRef<Path>) -> Result<Option<Snapshot>> {
        let snap_path = Self::snapshot_path(path.as_ref());
        if !snap_path.exists() {
            return Ok(None);
        }
        let text = fs::read_to_string(&snap_path)
            .map_err(|e| bad(format!("cannot read snapshot: {e}")))?;
        Snapshot::from_line(text.trim()).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "archgym-journal-{tag}-{}.jsonl",
            std::process::id()
        ));
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(RunJournal::snapshot_path(&path));
        path
    }

    fn header() -> JournalRecord {
        JournalRecord::Header(JournalHeader {
            version: JOURNAL_VERSION,
            env: "dram/stream".into(),
            agent: "ga".into(),
            budget: 64,
            batch: 8,
        })
    }

    fn step(index: usize, reward: f64) -> JournalRecord {
        let mut info = BTreeMap::new();
        info.insert("power".into(), 0.125);
        info.insert("weird \"key\"\n".into(), -0.5);
        JournalRecord::Step(JournalStep {
            index,
            reward,
            observation: vec![1.0, -2.5e-3, 0.1 + 0.2],
            done: false,
            feasible: true,
            info,
            retries: 2,
            faults: 3,
            degraded: false,
        })
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        for record in [
            header(),
            JournalRecord::Batch(vec![vec![0, 7, 3], vec![], vec![usize::MAX >> 12]]),
            JournalRecord::Screen(vec![0, 3, 17]),
            JournalRecord::Screen(Vec::new()),
            step(0, 0.1 + 0.2),
            step(5, f64::NEG_INFINITY),
            step(9, -1.0e-308),
        ] {
            let line = record.to_line();
            let back = JournalRecord::from_line(&line).unwrap();
            assert_eq!(back, record, "line: {line}");
            // Encoding is canonical: a second round trip is identical text.
            assert_eq!(back.to_line(), line);
        }
    }

    #[test]
    fn nan_rewards_survive_the_round_trip() {
        let line = step(1, f64::NAN).to_line();
        match JournalRecord::from_line(&line).unwrap() {
            JournalRecord::Step(s) => assert!(s.reward.is_nan()),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn open_append_reopen_recovers_everything() {
        let path = temp_path("roundtrip");
        {
            let mut journal = RunJournal::open(&path).unwrap();
            assert!(journal.is_empty());
            journal.append(&header()).unwrap();
            journal
                .append(&JournalRecord::Batch(vec![vec![1, 2], vec![3, 4]]))
                .unwrap();
            journal.append(&step(0, 1.5)).unwrap();
        }
        let journal = RunJournal::open(&path).unwrap();
        assert_eq!(journal.records().len(), 3);
        assert_eq!(journal.header().unwrap().agent, "ga");
        assert!(!journal.recovered_partial_tail());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_is_dropped_and_file_repaired() {
        let path = temp_path("tail");
        {
            let mut journal = RunJournal::open(&path).unwrap();
            journal.append(&header()).unwrap();
            journal
                .append(&JournalRecord::Batch(vec![vec![1]]))
                .unwrap();
            journal.append(&step(0, 2.0)).unwrap();
        }
        // Simulate a crash mid-write: chop bytes off the final line.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 7]).unwrap();

        let mut journal = RunJournal::open(&path).unwrap();
        assert!(journal.recovered_partial_tail());
        assert_eq!(journal.records().len(), 2, "damaged step dropped");
        // The file was truncated back to a clean record boundary, so
        // appending resumes a valid log.
        journal.append(&step(0, 2.0)).unwrap();
        drop(journal);
        let journal = RunJournal::open(&path).unwrap();
        assert!(!journal.recovered_partial_tail());
        assert_eq!(journal.records().len(), 3);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_middle_line_is_an_error() {
        let path = temp_path("middle");
        fs::write(
            &path,
            format!(
                "{}\nnot json at all\n{}\n",
                header().to_line(),
                step(0, 1.0).to_line()
            ),
        )
        .unwrap();
        let err = RunJournal::open(&path).unwrap_err();
        assert!(matches!(err, ArchGymError::Journal(_)), "{err}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn journal_must_start_with_a_header() {
        let path = temp_path("noheader");
        fs::write(&path, format!("{}\n", step(0, 1.0).to_line())).unwrap();
        let err = RunJournal::open(&path).unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshots_are_atomic_and_round_trip() {
        let path = temp_path("snap");
        let mut journal = RunJournal::open(&path).unwrap();
        journal.append(&header()).unwrap();
        let snapshot = Snapshot {
            samples: 40,
            best_reward: 0.1 + 0.2,
            best_action: vec![3, 1, 4],
            best_observation: vec![1.5, f64::INFINITY],
            eval_retries: 7,
            eval_failures: 9,
            degraded_samples: 1,
        };
        journal.write_snapshot(&snapshot).unwrap();
        // No tmp file left behind; the published snapshot round-trips.
        let snap_path = RunJournal::snapshot_path(&path);
        let mut tmp_name = snap_path.file_name().unwrap().to_os_string();
        tmp_name.push(".tmp");
        assert!(!snap_path.with_file_name(tmp_name).exists());
        let back = RunJournal::read_snapshot(&path).unwrap().unwrap();
        assert_eq!(back.samples, snapshot.samples);
        assert_eq!(back.best_reward, snapshot.best_reward);
        assert_eq!(back.best_action, snapshot.best_action);
        assert_eq!(back.best_observation, snapshot.best_observation);
        fs::remove_file(&path).unwrap();
        fs::remove_file(snap_path).unwrap();
    }

    #[test]
    fn missing_snapshot_reads_as_none() {
        let path = temp_path("nosnap");
        assert_eq!(RunJournal::read_snapshot(&path).unwrap(), None);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Every step record round-trips through its JSONL line,
            /// with bit-exact floats (NaN compared by is_nan).
            #[test]
            fn prop_step_records_round_trip(
                index in 0usize..1024,
                reward in proptest::num::f64::ANY,
                obs in proptest::collection::vec(proptest::num::f64::ANY, 0..6),
                done in any::<bool>(),
                feasible in any::<bool>(),
                info in proptest::collection::btree_map(
                    "[a-z_\"\\\\]{1,8}", proptest::num::f64::ANY, 0..4),
                retries in any::<u64>(),
                faults in any::<u64>(),
                degraded in any::<bool>(),
            ) {
                let record = JournalRecord::Step(JournalStep {
                    index, reward, observation: obs, done, feasible,
                    info, retries, faults, degraded,
                });
                let back = JournalRecord::from_line(&record.to_line()).unwrap();
                let (JournalRecord::Step(a), JournalRecord::Step(b)) = (&record, &back)
                    else { panic!("variant changed") };
                // NaN payload bits collapse to the canonical NaN; every
                // other value must round-trip bit-exactly.
                fn same(x: f64, y: f64) -> bool {
                    (x.is_nan() && y.is_nan()) || x.to_bits() == y.to_bits()
                }
                prop_assert_eq!(a.index, b.index);
                prop_assert!(same(a.reward, b.reward));
                prop_assert_eq!(a.observation.len(), b.observation.len());
                for (x, y) in a.observation.iter().zip(&b.observation) {
                    prop_assert!(same(*x, *y));
                }
                prop_assert_eq!(a.info.len(), b.info.len());
                for ((ka, va), (kb, vb)) in a.info.iter().zip(&b.info) {
                    prop_assert_eq!(ka, kb);
                    prop_assert!(same(*va, *vb));
                }
            }

            /// Batch records round-trip for arbitrary index matrices.
            #[test]
            fn prop_batch_records_round_trip(
                actions in proptest::collection::vec(
                    proptest::collection::vec(0usize..1_000_000, 0..5), 0..5),
            ) {
                let record = JournalRecord::Batch(actions);
                prop_assert_eq!(
                    JournalRecord::from_line(&record.to_line()).unwrap(),
                    record
                );
            }
        }
    }
}
