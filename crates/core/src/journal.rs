//! Crash-safe run journal — write-ahead logging for [`SearchLoop`]
//! (see [`crate::search::SearchLoop::run_resumable`]).
//!
//! A journal is an append-only JSONL file: a header record naming the
//! run configuration, then for each evaluated batch a `batch` record
//! (the proposed actions, written *before* evaluation — write-ahead)
//! followed by one `step` record per settled evaluation. Alongside the
//! log, a compact snapshot (`<journal>.snap`) is refreshed after every
//! batch via the atomic tmp+rename idiom, so a reader can always find a
//! consistent best-so-far without replaying the log.
//!
//! Every line is checksum-framed (`<8-hex-crc32>|<json>`, see
//! [`crate::storeio`]) and verified on replay, so corruption anywhere
//! in the file is *detected* instead of replayed bit-for-bit as
//! garbage. Recovery is prefix-oriented: a process killed mid-write
//! leaves at most one damaged line at the *tail* of the log, which
//! [`RunJournal::open`] silently drops (truncating the file back to
//! the last good record); damage anywhere else — a flipped byte, a
//! hole — is quarantined: the damaged file is copied to
//! `<journal>.corrupt`, the log is truncated back to the last
//! checksummed prefix, and the resumed run replays that prefix and
//! re-evaluates forward, which keeps the final result bit-identical to
//! an undamaged run.
//!
//! All file operations go through the [`StoreIo`] seam, so the chaos
//! suite can inject deterministic write/rename/fsync faults; the
//! fsync policy is a [`Durability`] knob (`none` / `batch` / `always`)
//! applied at write-ahead batch boundaries and before every
//! tmp+rename.
//!
//! The records are encoded with the hand-rolled JSON codec in
//! [`crate::codec`] rather than serde: the journal must keep working in
//! offline verification builds where the serde facade is stubbed out,
//! and it needs bit-exact `f64` round-trips (Rust's `{:?}` shortest
//! representation) for the resume-bit-identity guarantee. Non-finite
//! rewards — a corrupted evaluation is journaled too — are encoded as
//! the quoted strings `"NaN"`, `"inf"` and `"-inf"`.

use crate::codec::{parse_json, push_json_f64, push_json_str, Json};
use crate::error::{ArchGymError, Result};
use crate::storeio::{
    frame_line, real_io, unframe_line, AppendFile, Durability, FrameError, StoreIo,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Journal format version; bumped on incompatible record changes.
/// Version 2 introduced per-line CRC32 checksum framing.
pub const JOURNAL_VERSION: u64 = 2;

fn bad(msg: impl Into<String>) -> ArchGymError {
    ArchGymError::Journal(msg.into())
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// The run identity a journal belongs to; resume refuses to replay a
/// journal whose header does not match the live configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Format version ([`JOURNAL_VERSION`]).
    pub version: u64,
    /// Environment name.
    pub env: String,
    /// Agent name.
    pub agent: String,
    /// Total sample budget of the run.
    pub budget: u64,
    /// Requested batch size.
    pub batch: u64,
}

/// One settled evaluation within a journaled batch.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalStep {
    /// Position of this action within its batch.
    pub index: usize,
    /// Settled reward (may be the degrade penalty).
    pub reward: f64,
    /// Settled observation vector.
    pub observation: Vec<f64>,
    /// Terminal flag from the settled result.
    pub done: bool,
    /// Feasibility flag from the settled result.
    pub feasible: bool,
    /// Auxiliary metrics from the settled result.
    pub info: BTreeMap<String, f64>,
    /// Retry rounds this action consumed while settling.
    pub retries: u64,
    /// Failed evaluation outcomes observed while settling.
    pub faults: u64,
    /// Whether the action exhausted its retries and was degraded to the
    /// infeasible penalty.
    pub degraded: bool,
}

/// One line of the append-only journal log.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// Run identity; always the first record.
    Header(JournalHeader),
    /// A proposed batch of actions, written before evaluation.
    Batch(Vec<Vec<usize>>),
    /// The proxy screen's admission decision for the most recent batch:
    /// the candidate indices forwarded to true evaluation, sorted
    /// ascending. Written between the batch record and its steps, so a
    /// resumed run replays the exact screened decision instead of
    /// re-deriving it from a possibly-drifted model state.
    Screen(Vec<usize>),
    /// A settled evaluation within the most recent batch.
    Step(JournalStep),
}

impl JournalRecord {
    /// Encode as a single JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        match self {
            JournalRecord::Header(h) => {
                out.push_str("{\"type\":\"header\",\"version\":");
                let _ = write!(out, "{}", h.version);
                out.push_str(",\"env\":");
                push_json_str(&mut out, &h.env);
                out.push_str(",\"agent\":");
                push_json_str(&mut out, &h.agent);
                let _ = write!(out, ",\"budget\":{},\"batch\":{}}}", h.budget, h.batch);
            }
            JournalRecord::Batch(actions) => {
                out.push_str("{\"type\":\"batch\",\"actions\":[");
                for (i, action) in actions.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    for (j, index) in action.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{index}");
                    }
                    out.push(']');
                }
                out.push_str("]}");
            }
            JournalRecord::Screen(admitted) => {
                out.push_str("{\"type\":\"screen\",\"admitted\":[");
                for (i, index) in admitted.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{index}");
                }
                out.push_str("]}");
            }
            JournalRecord::Step(s) => {
                let _ = write!(out, "{{\"type\":\"step\",\"index\":{},\"reward\":", s.index);
                push_json_f64(&mut out, s.reward);
                out.push_str(",\"obs\":[");
                for (i, v) in s.observation.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_f64(&mut out, *v);
                }
                let _ = write!(
                    out,
                    "],\"done\":{},\"feasible\":{},\"info\":{{",
                    s.done, s.feasible
                );
                for (i, (key, value)) in s.info.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_str(&mut out, key);
                    out.push(':');
                    push_json_f64(&mut out, *value);
                }
                let _ = write!(
                    out,
                    "}},\"retries\":{},\"faults\":{},\"degraded\":{}}}",
                    s.retries, s.faults, s.degraded
                );
            }
        }
        out
    }

    /// Decode one JSONL line.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::Journal`] on malformed lines.
    pub fn from_line(line: &str) -> Result<Self> {
        Self::decode(line).map_err(bad)
    }

    fn decode(line: &str) -> std::result::Result<Self, String> {
        let value = parse_json(line)?;
        match value.field("type")?.as_str()? {
            "header" => Ok(JournalRecord::Header(JournalHeader {
                version: value.field("version")?.as_u64()?,
                env: value.field("env")?.as_str()?.to_owned(),
                agent: value.field("agent")?.as_str()?.to_owned(),
                budget: value.field("budget")?.as_u64()?,
                batch: value.field("batch")?.as_u64()?,
            })),
            "batch" => {
                let mut actions = Vec::new();
                for item in value.field("actions")?.as_arr()? {
                    let indices = item
                        .as_arr()?
                        .iter()
                        .map(Json::as_usize)
                        .collect::<std::result::Result<Vec<_>, String>>()?;
                    actions.push(indices);
                }
                Ok(JournalRecord::Batch(actions))
            }
            "screen" => {
                let admitted = value
                    .field("admitted")?
                    .as_arr()?
                    .iter()
                    .map(Json::as_usize)
                    .collect::<std::result::Result<Vec<_>, String>>()?;
                Ok(JournalRecord::Screen(admitted))
            }
            "step" => {
                let mut info = BTreeMap::new();
                match value.field("info")? {
                    Json::Obj(fields) => {
                        for (key, v) in fields {
                            info.insert(key.clone(), v.as_f64()?);
                        }
                    }
                    _ => return Err("step `info` is not an object".into()),
                }
                Ok(JournalRecord::Step(JournalStep {
                    index: value.field("index")?.as_usize()?,
                    reward: value.field("reward")?.as_f64()?,
                    observation: value
                        .field("obs")?
                        .as_arr()?
                        .iter()
                        .map(Json::as_f64)
                        .collect::<std::result::Result<Vec<_>, String>>()?,
                    done: value.field("done")?.as_bool()?,
                    feasible: value.field("feasible")?.as_bool()?,
                    info,
                    retries: value.field("retries")?.as_u64()?,
                    faults: value.field("faults")?.as_u64()?,
                    degraded: value.field("degraded")?.as_bool()?,
                }))
            }
            other => Err(format!("unknown journal record type `{other}`")),
        }
    }
}

/// The periodic best-so-far snapshot written next to the log.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Samples settled so far.
    pub samples: u64,
    /// Best reward seen so far.
    pub best_reward: f64,
    /// Action achieving the best reward.
    pub best_action: Vec<usize>,
    /// Observation of the best action.
    pub best_observation: Vec<f64>,
    /// Retry rounds consumed so far.
    pub eval_retries: u64,
    /// Failed evaluation outcomes so far.
    pub eval_failures: u64,
    /// Samples degraded to the penalty so far.
    pub degraded_samples: u64,
}

impl Snapshot {
    fn to_line(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"samples\":{},\"best_reward\":", self.samples);
        push_json_f64(&mut out, self.best_reward);
        out.push_str(",\"best_action\":[");
        for (i, v) in self.best_action.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push_str("],\"best_observation\":[");
        for (i, v) in self.best_observation.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_f64(&mut out, *v);
        }
        let _ = write!(
            out,
            "],\"eval_retries\":{},\"eval_failures\":{},\"degraded_samples\":{}}}",
            self.eval_retries, self.eval_failures, self.degraded_samples
        );
        out
    }

    fn from_line(line: &str) -> Result<Self> {
        Self::decode(line).map_err(bad)
    }

    fn decode(line: &str) -> std::result::Result<Self, String> {
        let value = parse_json(line)?;
        Ok(Snapshot {
            samples: value.field("samples")?.as_u64()?,
            best_reward: value.field("best_reward")?.as_f64()?,
            best_action: value
                .field("best_action")?
                .as_arr()?
                .iter()
                .map(Json::as_usize)
                .collect::<std::result::Result<Vec<_>, String>>()?,
            best_observation: value
                .field("best_observation")?
                .as_arr()?
                .iter()
                .map(Json::as_f64)
                .collect::<std::result::Result<Vec<_>, String>>()?,
            eval_retries: value.field("eval_retries")?.as_u64()?,
            eval_failures: value.field("eval_failures")?.as_u64()?,
            degraded_samples: value.field("degraded_samples")?.as_u64()?,
        })
    }
}

// ---------------------------------------------------------------------------
// RunJournal
// ---------------------------------------------------------------------------

/// An open write-ahead run journal: the records recovered from disk
/// plus an append handle flushing each new record before evaluation
/// proceeds.
pub struct RunJournal {
    path: PathBuf,
    io: Arc<dyn StoreIo>,
    durability: Durability,
    file: Box<dyn AppendFile>,
    records: Vec<JournalRecord>,
    recovered_partial_tail: bool,
    quarantined: bool,
    telemetry: crate::telemetry::Recorder,
}

impl std::fmt::Debug for RunJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunJournal")
            .field("path", &self.path)
            .field("durability", &self.durability)
            .field("records", &self.records.len())
            .field("recovered_partial_tail", &self.recovered_partial_tail)
            .field("quarantined", &self.quarantined)
            .finish()
    }
}

/// The quarantine path paired with a damaged journal or store file.
pub fn corrupt_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".corrupt");
    path.with_file_name(name)
}

impl RunJournal {
    /// Open (or create) the journal at `path` on the real filesystem
    /// with no fsyncing — see [`RunJournal::open_with`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with(path, real_io(), Durability::None)
    }

    /// Open (or create) the journal at `path`, recovering any existing
    /// records through `io` and applying `durability` to every
    /// subsequent write.
    ///
    /// Recovery is prefix-oriented. An unterminated or unparsable
    /// *final* line — the artifact of a crash mid-write — is dropped
    /// and the file truncated back to the last good record. Damage
    /// anywhere earlier (a checksum mismatch, an unframed or torn
    /// mid-file line) is quarantined: the whole damaged file is copied
    /// to `<journal>.corrupt`, the log is truncated back to the last
    /// checksummed prefix, and the open succeeds with that prefix so
    /// resume can re-evaluate forward deterministically.
    pub fn open_with(
        path: impl AsRef<Path>,
        io: Arc<dyn StoreIo>,
        durability: Durability,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut records = Vec::new();
        let mut recovered_partial_tail = false;
        let mut quarantined = false;

        if io.exists(&path) {
            let text = io
                .read_to_string(&path)
                .map_err(|e| bad(format!("cannot read journal {}: {e}", path.display())))?;

            // (trimmed line, start offset, complete?) for non-blank lines.
            let mut entries: Vec<(&str, usize, bool)> = Vec::new();
            let mut offset = 0;
            for chunk in text.split_inclusive('\n') {
                let complete = chunk.ends_with('\n');
                let line = chunk.trim_end_matches(['\n', '\r']);
                if !line.trim().is_empty() {
                    entries.push((line, offset, complete));
                }
                offset += chunk.len();
            }

            let mut good_end = 0usize;
            for (i, (line, start, complete)) in entries.iter().enumerate() {
                let last = i + 1 == entries.len();
                // A damaged last line is the expected artifact of a
                // crash mid-write; damage anywhere earlier is silent
                // corruption and quarantines the file.
                let payload = if !complete {
                    // Unterminated: can't trust it even if it parses.
                    Err("unterminated journal line".to_string())
                } else {
                    match unframe_line(line) {
                        Ok(payload) => Ok(payload),
                        Err(FrameError::Unframed) => {
                            if i == 0 && JournalRecord::from_line(line).is_ok() {
                                return Err(bad(format!(
                                    "journal {} predates checksum framing (format version < \
                                     {JOURNAL_VERSION}); delete it to start fresh",
                                    path.display()
                                )));
                            }
                            Err("journal line is not checksum-framed".to_string())
                        }
                        Err(err @ FrameError::Mismatch { .. }) => Err(err.to_string()),
                    }
                };
                match payload.and_then(|p| JournalRecord::from_line(p).map_err(|e| e.to_string())) {
                    Ok(record) => {
                        records.push(record);
                        good_end = start
                            + line.len()
                            + (text.as_bytes()[start + line.len()..]
                                .iter()
                                .take_while(|&&b| b == b'\r' || b == b'\n')
                                .count());
                    }
                    Err(_) if last => {
                        recovered_partial_tail = true;
                        break;
                    }
                    Err(err) => {
                        // Mid-file corruption: quarantine a copy, keep
                        // the checksummed prefix, drop everything after
                        // the damage (it cannot be trusted to align
                        // with the records before the hole).
                        records.truncate(Self::count_good(&records));
                        io.write_file(&corrupt_path(&path), text.as_bytes(), false)
                            .map_err(|e| {
                                bad(format!(
                                    "corrupt journal record at line {} ({err}) and quarantine \
                                     failed: {e}",
                                    i + 1
                                ))
                            })?;
                        eprintln!(
                            "archgym: journal {} corrupt at line {} ({err}); quarantined to {} \
                             and resuming from the last {} good record(s)",
                            path.display(),
                            i + 1,
                            corrupt_path(&path).display(),
                            records.len()
                        );
                        quarantined = true;
                        break;
                    }
                }
            }

            if recovered_partial_tail || quarantined {
                io.truncate(&path, good_end as u64)
                    .map_err(|e| bad(format!("cannot truncate damaged journal tail: {e}")))?;
            }
        }

        if let Some(first) = records.first() {
            match first {
                JournalRecord::Header(h) if h.version == JOURNAL_VERSION => {}
                JournalRecord::Header(h) => {
                    return Err(bad(format!(
                        "journal version {} unsupported (expected {JOURNAL_VERSION})",
                        h.version
                    )))
                }
                _ => return Err(bad("journal does not start with a header record")),
            }
        }

        let file = io
            .open_append(&path)
            .map_err(|e| bad(format!("cannot open journal {}: {e}", path.display())))?;

        Ok(RunJournal {
            path,
            io,
            durability,
            file,
            records,
            recovered_partial_tail,
            quarantined,
            telemetry: crate::telemetry::Recorder::default(),
        })
    }

    // Records form a good prefix by construction; this is a seam for
    // future partial-prefix policies and keeps truncate() call sites
    // honest.
    fn count_good(records: &[JournalRecord]) -> usize {
        records.len()
    }

    /// Install a telemetry recorder: each [`RunJournal::append`] counts
    /// one journal-append and times its write+flush.
    pub fn set_telemetry(&mut self, recorder: &crate::telemetry::Recorder) {
        self.telemetry = recorder.clone();
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records recovered when the journal was opened (resume replays
    /// these; records appended later are not reflected here).
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// Whether the journal held no recovered records when opened.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The recovered header, if any.
    pub fn header(&self) -> Option<&JournalHeader> {
        match self.records.first() {
            Some(JournalRecord::Header(h)) => Some(h),
            _ => None,
        }
    }

    /// Whether a damaged tail line was dropped during recovery.
    pub fn recovered_partial_tail(&self) -> bool {
        self.recovered_partial_tail
    }

    /// Whether mid-file corruption was detected during recovery and the
    /// damaged file quarantined to `<journal>.corrupt`.
    pub fn quarantined(&self) -> bool {
        self.quarantined
    }

    /// Append one checksum-framed record and flush it to the OS before
    /// returning — write-ahead semantics for batch records. Under
    /// [`Durability::Always`] every append is fsynced; under
    /// [`Durability::Batch`] the log is fsynced whenever a batch record
    /// lands, so the write-ahead batch (and every step before it) is on
    /// stable storage before its evaluations begin.
    pub fn append(&mut self, record: &JournalRecord) -> Result<()> {
        let _span = self.telemetry.span(crate::telemetry::Phase::JournalAppend);
        self.telemetry
            .incr(crate::telemetry::Counter::JournalAppends);
        let mut line = frame_line(&record.to_line());
        line.push('\n');
        self.file
            .append(line.as_bytes())
            .map_err(|e| bad(format!("cannot append to journal: {e}")))?;
        let sync = match self.durability {
            Durability::Always => true,
            Durability::Batch => matches!(record, JournalRecord::Batch(_)),
            Durability::None => false,
        };
        if sync {
            self.file
                .sync()
                .map_err(|e| bad(format!("cannot fsync journal: {e}")))?;
        }
        Ok(())
    }

    /// The snapshot path paired with a journal path.
    pub fn snapshot_path(path: &Path) -> PathBuf {
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        name.push(".snap");
        path.with_file_name(name)
    }

    /// Atomically replace the best-so-far snapshot (tmp + rename). The
    /// tmp file is fsynced before the rename under any durability level
    /// other than [`Durability::None`].
    pub fn write_snapshot(&self, snapshot: &Snapshot) -> Result<()> {
        let snap_path = Self::snapshot_path(&self.path);
        let mut tmp_name = snap_path.file_name().unwrap_or_default().to_os_string();
        tmp_name.push(".tmp");
        let tmp_path = snap_path.with_file_name(tmp_name);
        let mut line = frame_line(&snapshot.to_line());
        line.push('\n');
        let sync = self.durability != Durability::None;
        self.io
            .write_file(&tmp_path, line.as_bytes(), sync)
            .map_err(|e| bad(format!("cannot write snapshot: {e}")))?;
        self.io
            .rename(&tmp_path, &snap_path)
            .map_err(|e| bad(format!("cannot publish snapshot: {e}")))
    }

    /// Read the snapshot paired with `path`, if one exists — see
    /// [`RunJournal::read_snapshot_with`].
    pub fn read_snapshot(path: impl AsRef<Path>) -> Result<Option<Snapshot>> {
        Self::read_snapshot_with(path, &real_io())
    }

    /// Read the snapshot paired with `path` through `io`, if one
    /// exists. The snapshot is derived data (the journal is the source
    /// of truth), so a snapshot that fails its checksum is quarantined
    /// to `<snapshot>.corrupt` and reported as absent rather than
    /// failing the open.
    pub fn read_snapshot_with(
        path: impl AsRef<Path>,
        io: &Arc<dyn StoreIo>,
    ) -> Result<Option<Snapshot>> {
        let snap_path = Self::snapshot_path(path.as_ref());
        if !io.exists(&snap_path) {
            return Ok(None);
        }
        let text = io
            .read_to_string(&snap_path)
            .map_err(|e| bad(format!("cannot read snapshot: {e}")))?;
        match unframe_line(text.trim()).map_err(|e| e.to_string()) {
            Ok(payload) => Snapshot::from_line(payload).map(Some),
            Err(err) => {
                io.rename(&snap_path, &corrupt_path(&snap_path))
                    .map_err(|e| {
                        bad(format!("corrupt snapshot ({err}); quarantine failed: {e}"))
                    })?;
                eprintln!(
                    "archgym: snapshot {} failed verification ({err}); quarantined to {}",
                    snap_path.display(),
                    corrupt_path(&snap_path).display()
                );
                Ok(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storeio::{FaultyIo, IoFaultPlan};
    use std::fs;

    fn framed(record: &JournalRecord) -> String {
        frame_line(&record.to_line())
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "archgym-journal-{tag}-{}.jsonl",
            std::process::id()
        ));
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(RunJournal::snapshot_path(&path));
        path
    }

    fn header() -> JournalRecord {
        JournalRecord::Header(JournalHeader {
            version: JOURNAL_VERSION,
            env: "dram/stream".into(),
            agent: "ga".into(),
            budget: 64,
            batch: 8,
        })
    }

    fn step(index: usize, reward: f64) -> JournalRecord {
        let mut info = BTreeMap::new();
        info.insert("power".into(), 0.125);
        info.insert("weird \"key\"\n".into(), -0.5);
        JournalRecord::Step(JournalStep {
            index,
            reward,
            observation: vec![1.0, -2.5e-3, 0.1 + 0.2],
            done: false,
            feasible: true,
            info,
            retries: 2,
            faults: 3,
            degraded: false,
        })
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        for record in [
            header(),
            JournalRecord::Batch(vec![vec![0, 7, 3], vec![], vec![usize::MAX >> 12]]),
            JournalRecord::Screen(vec![0, 3, 17]),
            JournalRecord::Screen(Vec::new()),
            step(0, 0.1 + 0.2),
            step(5, f64::NEG_INFINITY),
            step(9, -1.0e-308),
        ] {
            let line = record.to_line();
            let back = JournalRecord::from_line(&line).unwrap();
            assert_eq!(back, record, "line: {line}");
            // Encoding is canonical: a second round trip is identical text.
            assert_eq!(back.to_line(), line);
        }
    }

    #[test]
    fn nan_rewards_survive_the_round_trip() {
        let line = step(1, f64::NAN).to_line();
        match JournalRecord::from_line(&line).unwrap() {
            JournalRecord::Step(s) => assert!(s.reward.is_nan()),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn open_append_reopen_recovers_everything() {
        let path = temp_path("roundtrip");
        {
            let mut journal = RunJournal::open(&path).unwrap();
            assert!(journal.is_empty());
            journal.append(&header()).unwrap();
            journal
                .append(&JournalRecord::Batch(vec![vec![1, 2], vec![3, 4]]))
                .unwrap();
            journal.append(&step(0, 1.5)).unwrap();
        }
        let journal = RunJournal::open(&path).unwrap();
        assert_eq!(journal.records().len(), 3);
        assert_eq!(journal.header().unwrap().agent, "ga");
        assert!(!journal.recovered_partial_tail());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_is_dropped_and_file_repaired() {
        let path = temp_path("tail");
        {
            let mut journal = RunJournal::open(&path).unwrap();
            journal.append(&header()).unwrap();
            journal
                .append(&JournalRecord::Batch(vec![vec![1]]))
                .unwrap();
            journal.append(&step(0, 2.0)).unwrap();
        }
        // Simulate a crash mid-write: chop bytes off the final line.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 7]).unwrap();

        let mut journal = RunJournal::open(&path).unwrap();
        assert!(journal.recovered_partial_tail());
        assert_eq!(journal.records().len(), 2, "damaged step dropped");
        // The file was truncated back to a clean record boundary, so
        // appending resumes a valid log.
        journal.append(&step(0, 2.0)).unwrap();
        drop(journal);
        let journal = RunJournal::open(&path).unwrap();
        assert!(!journal.recovered_partial_tail());
        assert_eq!(journal.records().len(), 3);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_middle_line_is_quarantined_and_prefix_survives() {
        let path = temp_path("middle");
        fs::write(
            &path,
            format!(
                "{}\nnot json at all\n{}\n",
                framed(&header()),
                framed(&step(0, 1.0))
            ),
        )
        .unwrap();
        let journal = RunJournal::open(&path).unwrap();
        assert!(journal.quarantined());
        // Only the checksummed prefix before the hole survives; the
        // step after the damage cannot be trusted to align with it.
        assert_eq!(journal.records().len(), 1);
        assert!(journal.header().is_some());
        let quarantine = corrupt_path(&path);
        assert!(quarantine.exists(), "damaged file copied aside");
        assert!(fs::read_to_string(&quarantine)
            .unwrap()
            .contains("not json at all"));
        // The repaired file reopens cleanly.
        let journal = RunJournal::open(&path).unwrap();
        assert!(!journal.quarantined());
        assert_eq!(journal.records().len(), 1);
        fs::remove_file(&path).unwrap();
        fs::remove_file(&quarantine).unwrap();
    }

    #[test]
    fn flipped_byte_mid_file_is_detected_and_quarantined() {
        let path = temp_path("bitflip");
        {
            let mut journal = RunJournal::open(&path).unwrap();
            journal.append(&header()).unwrap();
            journal
                .append(&JournalRecord::Batch(vec![vec![1]]))
                .unwrap();
            journal.append(&step(0, 2.0)).unwrap();
        }
        let mut bytes = fs::read(&path).unwrap();
        // Flip a byte inside the *payload* of the middle (batch) record
        // — the pre-checksum format would replay this bit-for-bit.
        let first_nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes[first_nl + 12] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let journal = RunJournal::open(&path).unwrap();
        assert!(journal.quarantined());
        assert_eq!(journal.records().len(), 1, "only the header prefix replays");
        fs::remove_file(&path).unwrap();
        let _ = fs::remove_file(corrupt_path(&path));
    }

    #[test]
    fn journal_must_start_with_a_header() {
        let path = temp_path("noheader");
        fs::write(&path, format!("{}\n", framed(&step(0, 1.0)))).unwrap();
        let err = RunJournal::open(&path).unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pre_checksum_journals_are_refused_with_a_typed_error() {
        let path = temp_path("legacy");
        // A version-1 journal: valid records, no checksum frames.
        fs::write(
            &path,
            format!("{}\n{}\n", header().to_line(), step(0, 1.0).to_line()),
        )
        .unwrap();
        let err = RunJournal::open(&path).unwrap_err();
        assert!(matches!(err, ArchGymError::Journal(_)), "{err}");
        assert!(err.to_string().contains("checksum"), "{err}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn durability_always_syncs_every_append() {
        let path = temp_path("durable");
        let io = FaultyIo::new(real_io(), IoFaultPlan::new(3).sync_fail(1.0));
        let mut journal =
            RunJournal::open_with(&path, Arc::new(io.clone()), Durability::Always).unwrap();
        let err = journal.append(&header()).unwrap_err();
        assert!(err.to_string().contains("fsync"), "{err}");
        assert!(io.stats().syncs_failed() > 0);
        // Under Durability::None the same plan never syncs, so appends
        // succeed.
        let io = FaultyIo::new(real_io(), IoFaultPlan::new(3).sync_fail(1.0));
        let path2 = temp_path("durable-none");
        let mut journal =
            RunJournal::open_with(&path2, Arc::new(io.clone()), Durability::None).unwrap();
        journal.append(&header()).unwrap();
        assert_eq!(io.stats().total(), 0);
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&path2);
    }

    #[test]
    fn corrupt_snapshot_is_quarantined_and_reads_as_none() {
        let path = temp_path("badsnap");
        let mut journal = RunJournal::open(&path).unwrap();
        journal.append(&header()).unwrap();
        let snapshot = Snapshot {
            samples: 8,
            best_reward: 0.5,
            best_action: vec![1],
            best_observation: vec![0.25],
            eval_retries: 0,
            eval_failures: 0,
            degraded_samples: 0,
        };
        journal.write_snapshot(&snapshot).unwrap();
        let snap_path = RunJournal::snapshot_path(&path);
        let mut bytes = fs::read(&snap_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&snap_path, &bytes).unwrap();
        assert_eq!(RunJournal::read_snapshot(&path).unwrap(), None);
        assert!(corrupt_path(&snap_path).exists());
        fs::remove_file(&path).unwrap();
        let _ = fs::remove_file(corrupt_path(&snap_path));
    }

    #[test]
    fn snapshots_are_atomic_and_round_trip() {
        let path = temp_path("snap");
        let mut journal = RunJournal::open(&path).unwrap();
        journal.append(&header()).unwrap();
        let snapshot = Snapshot {
            samples: 40,
            best_reward: 0.1 + 0.2,
            best_action: vec![3, 1, 4],
            best_observation: vec![1.5, f64::INFINITY],
            eval_retries: 7,
            eval_failures: 9,
            degraded_samples: 1,
        };
        journal.write_snapshot(&snapshot).unwrap();
        // No tmp file left behind; the published snapshot round-trips.
        let snap_path = RunJournal::snapshot_path(&path);
        let mut tmp_name = snap_path.file_name().unwrap().to_os_string();
        tmp_name.push(".tmp");
        assert!(!snap_path.with_file_name(tmp_name).exists());
        let back = RunJournal::read_snapshot(&path).unwrap().unwrap();
        assert_eq!(back.samples, snapshot.samples);
        assert_eq!(back.best_reward, snapshot.best_reward);
        assert_eq!(back.best_action, snapshot.best_action);
        assert_eq!(back.best_observation, snapshot.best_observation);
        fs::remove_file(&path).unwrap();
        fs::remove_file(snap_path).unwrap();
    }

    #[test]
    fn missing_snapshot_reads_as_none() {
        let path = temp_path("nosnap");
        assert_eq!(RunJournal::read_snapshot(&path).unwrap(), None);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Every step record round-trips through its JSONL line,
            /// with bit-exact floats (NaN compared by is_nan).
            #[test]
            fn prop_step_records_round_trip(
                index in 0usize..1024,
                reward in proptest::num::f64::ANY,
                obs in proptest::collection::vec(proptest::num::f64::ANY, 0..6),
                done in any::<bool>(),
                feasible in any::<bool>(),
                info in proptest::collection::btree_map(
                    "[a-z_\"\\\\]{1,8}", proptest::num::f64::ANY, 0..4),
                retries in any::<u64>(),
                faults in any::<u64>(),
                degraded in any::<bool>(),
            ) {
                let record = JournalRecord::Step(JournalStep {
                    index, reward, observation: obs, done, feasible,
                    info, retries, faults, degraded,
                });
                let back = JournalRecord::from_line(&record.to_line()).unwrap();
                let (JournalRecord::Step(a), JournalRecord::Step(b)) = (&record, &back)
                    else { panic!("variant changed") };
                // NaN payload bits collapse to the canonical NaN; every
                // other value must round-trip bit-exactly.
                fn same(x: f64, y: f64) -> bool {
                    (x.is_nan() && y.is_nan()) || x.to_bits() == y.to_bits()
                }
                prop_assert_eq!(a.index, b.index);
                prop_assert!(same(a.reward, b.reward));
                prop_assert_eq!(a.observation.len(), b.observation.len());
                for (x, y) in a.observation.iter().zip(&b.observation) {
                    prop_assert!(same(*x, *y));
                }
                prop_assert_eq!(a.info.len(), b.info.len());
                for ((ka, va), (kb, vb)) in a.info.iter().zip(&b.info) {
                    prop_assert_eq!(ka, kb);
                    prop_assert!(same(*va, *vb));
                }
            }

            /// Batch records round-trip for arbitrary index matrices.
            #[test]
            fn prop_batch_records_round_trip(
                actions in proptest::collection::vec(
                    proptest::collection::vec(0usize..1_000_000, 0..5), 0..5),
            ) {
                let record = JournalRecord::Batch(actions);
                prop_assert_eq!(
                    JournalRecord::from_line(&record.to_line()).unwrap(),
                    record
                );
            }
        }
    }
}
