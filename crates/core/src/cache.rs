//! Memoized design-point evaluation — [`EvalCache`] and [`CachedEnv`].
//!
//! Search agents revisit configurations constantly: a GA's crossover
//! re-produces elite genomes, ACO's pheromone trails concentrate on a
//! few paths, SA re-proposes neighbors near its current point. ArchGym
//! environments are *deterministic* one-shot cost models — the same
//! action always yields the same [`StepResult`] — so a revisit can be
//! answered from a hash map instead of a full simulation.
//!
//! [`EvalCache`] is a sharded, lock-striped map from the canonical
//! action encoding (the per-dimension index vector) to the full step
//! result (cost-vector observation, reward, feasibility and diagnostic
//! stats). Sharding keeps lock contention negligible when a parallel
//! [`Executor`](crate::executor::Executor) sweep shares one cache across
//! workers. [`CachedEnv`] wraps any [`Environment`] to consult the cache
//! on every step; built without a cache it is a zero-cost passthrough,
//! which lets sweep infrastructure keep a single code path.
//!
//! Caching is only sound for environments whose `step` is a pure
//! function of the action — true for every bundled ArchGym cost model.
//! Do not share one cache across *different* environments or workloads;
//! key collisions would silently return the wrong cost.
//!
//! ```
//! use archgym_core::cache::{CachedEnv, EvalCache};
//! use archgym_core::prelude::*;
//! use archgym_core::toy::PeakEnv;
//! use std::sync::Arc;
//!
//! let cache = Arc::new(EvalCache::new());
//! let mut env = CachedEnv::new(PeakEnv::new(&[8], vec![3]), cache.clone());
//! let action = Action::new(vec![3]);
//! let first = env.step(&action); // simulated, inserted
//! let second = env.step(&action); // served from the cache
//! assert_eq!(first, second);
//! assert_eq!(cache.stats().hits, 1);
//! assert_eq!(cache.stats().misses, 1);
//! ```

use crate::env::{Environment, Observation, StepResult};
use crate::space::{Action, ParamSpace};
use crate::telemetry::{Counter, Phase, Recorder};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default shard count — enough stripes that a handful of sweep workers
/// rarely collide on a lock, small enough to stay cache-friendly.
const DEFAULT_SHARDS: usize = 16;

/// Counter snapshot of an [`EvalCache`].
///
/// `hits + misses` equals the number of lookups issued; `inserts` can
/// exceed `entries` when parallel workers race to fill the same key
/// (both simulate, both insert the identical result — the map keeps
/// one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a simulation.
    pub misses: u64,
    /// Results written into the cache.
    pub inserts: u64,
    /// Distinct design points currently stored.
    pub entries: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (`0.0` when none).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// A sharded, lock-striped memo table: canonical action encoding →
/// evaluated [`StepResult`].
///
/// All methods take `&self`, so one cache behind an [`Arc`] can be
/// shared freely across sweep workers.
#[derive(Debug)]
pub struct EvalCache {
    shards: Vec<Mutex<HashMap<Vec<usize>, StepResult>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl EvalCache {
    /// A cache with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A cache striped over `shards` independent locks.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "cache needs at least one shard");
        EvalCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// FNV-1a over the index vector — deterministic across processes
    /// (unlike `DefaultHasher`'s randomized state) and plenty uniform
    /// for shard selection.
    fn shard_of(&self, key: &[usize]) -> usize {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &index in key {
            let mut value = index as u64;
            // Hash each index one byte at a time, LSB first.
            for _ in 0..8 {
                hash ^= value & 0xff;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
                value >>= 8;
            }
        }
        (hash % self.shards.len() as u64) as usize
    }

    /// Look up a design point, counting the outcome as a hit or miss.
    pub fn get(&self, action: &Action) -> Option<StepResult> {
        let shard = &self.shards[self.shard_of(action.as_slice())];
        let found = shard
            .lock()
            .expect("cache shard poisoned")
            .get(action.as_slice())
            .cloned();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Store a design point's result.
    pub fn insert(&self, action: &Action, result: StepResult) {
        let shard = &self.shards[self.shard_of(action.as_slice())];
        shard
            .lock()
            .expect("cache shard poisoned")
            .insert(action.as_slice().to_vec(), result);
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of distinct design points stored.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the hit/miss/insert counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache::new()
    }
}

/// An [`Environment`] wrapper that answers repeated design points from
/// an [`EvalCache`].
///
/// Built with [`CachedEnv::uncached`] the wrapper is a passthrough, so
/// callers like [`Sweep`](crate::sweep::Sweep) can always wrap and let
/// the optional cache decide whether memoization happens.
#[derive(Debug, Clone)]
pub struct CachedEnv<E> {
    inner: E,
    cache: Option<Arc<EvalCache>>,
    telemetry: Recorder,
}

impl<E: Environment> CachedEnv<E> {
    /// Wrap `inner`, memoizing through `cache`.
    pub fn new(inner: E, cache: Arc<EvalCache>) -> Self {
        Self::with_cache(inner, Some(cache))
    }

    /// Wrap `inner` with no cache — every step hits the simulator.
    pub fn uncached(inner: E) -> Self {
        Self::with_cache(inner, None)
    }

    /// Wrap `inner` with an optional cache (the sweep plumbing form).
    pub fn with_cache(inner: E, cache: Option<Arc<EvalCache>>) -> Self {
        CachedEnv {
            inner,
            cache,
            telemetry: Recorder::default(),
        }
    }

    /// Probe the cache for `action`, mirroring the outcome into the
    /// telemetry recorder (`lookups == hits + misses` holds exactly
    /// because each probe counts one lookup and exactly one of the
    /// two outcomes).
    fn probe(&self, cache: &EvalCache, action: &Action) -> Option<StepResult> {
        let _span = self.telemetry.span(Phase::CacheLookup);
        let found = cache.get(action);
        self.telemetry.incr(Counter::CacheLookups);
        self.telemetry.incr(match found {
            Some(_) => Counter::CacheHits,
            None => Counter::CacheMisses,
        });
        found
    }

    /// Insert a settled result, mirroring the write into telemetry.
    fn remember(&self, cache: &EvalCache, action: &Action, result: &StepResult) {
        if cacheable(result) {
            cache.insert(action, result.clone());
            self.telemetry.incr(Counter::CacheInserts);
        }
    }

    /// The wrapped environment.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The shared cache, if memoization is enabled.
    pub fn cache(&self) -> Option<&Arc<EvalCache>> {
        self.cache.as_ref()
    }

    /// Unwrap, discarding the cache handle.
    pub fn into_inner(self) -> E {
        self.inner
    }
}

impl<E: Environment> Environment for CachedEnv<E> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn space(&self) -> &ParamSpace {
        self.inner.space()
    }
    fn observation_labels(&self) -> Vec<String> {
        self.inner.observation_labels()
    }
    fn reset(&mut self) -> Observation {
        self.inner.reset()
    }
    fn step(&mut self, action: &Action) -> StepResult {
        let Some(cache) = self.cache.clone() else {
            return self.inner.step(action);
        };
        if let Some(memoized) = self.probe(&cache, action) {
            return memoized;
        }
        let result = self.inner.step(action);
        self.remember(&cache, action, &result);
        result
    }
    fn try_step(&mut self, action: &Action) -> crate::error::Result<StepResult> {
        let Some(cache) = self.cache.clone() else {
            return self.inner.try_step(action);
        };
        if let Some(memoized) = self.probe(&cache, action) {
            return Ok(memoized);
        }
        // A failed attempt must never poison the memo: errors propagate
        // uncached (the retry machinery will probe again), and corrupted
        // non-finite results are likewise not worth remembering.
        let result = self.inner.try_step(action)?;
        self.remember(&cache, action, &result);
        Ok(result)
    }
    fn set_telemetry(&mut self, recorder: &Recorder) {
        self.telemetry = recorder.clone();
        self.inner.set_telemetry(recorder);
    }
}

/// Only clean evaluations belong in the memo: a NaN/Inf reward or
/// metric is a corrupted report (a transient simulator fault), and a
/// degraded penalty placeholder (marked by the retry machinery via the
/// `degraded`/`eval_degraded` info keys) is a verdict about this run's
/// retry budget, not about the design point. Caching either would
/// replay the fault on every future visit.
fn cacheable(result: &StepResult) -> bool {
    result.reward.is_finite()
        && result.observation.as_slice().iter().all(|v| v.is_finite())
        && !result.info.contains_key("degraded")
        && !result.info.contains_key("eval_degraded")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::toy::PeakEnv;

    fn action(i: usize) -> Action {
        Action::new(vec![i])
    }

    #[test]
    fn hit_returns_identical_result_without_resimulating() {
        let cache = Arc::new(EvalCache::new());
        let mut env = CachedEnv::new(
            crate::env::CountingEnv::new(PeakEnv::new(&[8], vec![5])),
            cache.clone(),
        );
        let first = env.step(&action(5));
        let second = env.step(&action(5));
        assert_eq!(first, second);
        // The inner simulator ran exactly once.
        assert_eq!(env.inner().samples(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn uncached_wrapper_is_a_passthrough() {
        let mut plain = PeakEnv::new(&[8], vec![2]);
        let mut wrapped = CachedEnv::uncached(PeakEnv::new(&[8], vec![2]));
        for i in 0..8 {
            assert_eq!(plain.step(&action(i)), wrapped.step(&action(i)));
        }
        assert!(wrapped.cache().is_none());
        assert_eq!(wrapped.name(), "peak");
    }

    #[test]
    fn distinct_actions_occupy_distinct_entries() {
        let cache = EvalCache::with_shards(4);
        for i in 0..32 {
            assert!(cache.get(&action(i)).is_none());
            cache.insert(
                &action(i),
                StepResult::terminal(Observation::new(vec![i as f64]), 0.0),
            );
        }
        assert_eq!(cache.len(), 32);
        assert!(!cache.is_empty());
        for i in 0..32 {
            let got = cache.get(&action(i)).expect("inserted");
            assert_eq!(got.observation.get(0), i as f64);
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 32);
        assert_eq!(stats.misses, 32);
        assert_eq!(stats.inserts, 32);
    }

    #[test]
    fn counters_are_exact_under_executor_parallelism() {
        // Pre-fill every key, then issue a known number of parallel
        // lookups: with no fill races, hits must count exactly.
        let cache = Arc::new(EvalCache::new());
        for i in 0..16 {
            cache.insert(
                &action(i),
                StepResult::terminal(Observation::new(vec![0.0]), 0.0),
            );
        }
        let lookups: Vec<usize> = (0..400).map(|k| k % 16).collect();
        let results = Executor::new(4).map(&lookups, |&i| cache.get(&action(i)).is_some());
        assert!(results.into_iter().all(|hit| hit));
        let stats = cache.stats();
        assert_eq!(stats.hits, 400);
        assert_eq!(stats.misses, 0); // inserts don't probe
        assert_eq!(stats.inserts, 16);
        assert_eq!(stats.entries, 16);
    }

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        let cache = EvalCache::with_shards(7);
        for i in 0..100 {
            let key = vec![i, i * 3, 12];
            let a = cache.shard_of(&key);
            let b = cache.shard_of(&key);
            assert_eq!(a, b);
            assert!(a < 7);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = EvalCache::with_shards(0);
    }

    #[test]
    fn failed_evaluations_are_never_cached() {
        use crate::fault::{FaultPlan, FaultyEnv};
        // Find an action that fails on attempt 0 and succeeds on attempt 1.
        let plan = FaultPlan::new(5).transient(0.5);
        let probe = (0..64)
            .find(|&i| {
                use crate::fault::FaultKind;
                plan.decide(&action(i), 0) == FaultKind::Transient
                    && plan.decide(&action(i), 1) == FaultKind::None
            })
            .expect("some action faults once then clears");
        let cache = Arc::new(EvalCache::new());
        let mut env = CachedEnv::new(
            FaultyEnv::new(
                crate::env::CountingEnv::new(PeakEnv::new(&[64], vec![3])),
                plan,
            ),
            cache.clone(),
        );
        // Attempt 0 fails: the miss is counted, nothing is inserted.
        assert!(env.try_step(&action(probe)).is_err());
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.inserts, stats.entries),
            (0, 1, 0, 0),
            "a transient EvalFailed must not poison the memo"
        );
        // The retry (attempt 1) succeeds and fills the cache...
        let settled = env.try_step(&action(probe)).unwrap();
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.inserts, stats.entries),
            (0, 2, 1, 1)
        );
        // ...and the next visit is a pure hit: no simulation, no fault
        // roll (the FaultyEnv is never consulted again).
        let revisit = env.try_step(&action(probe)).unwrap();
        assert_eq!(revisit, settled);
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.inserts, stats.entries),
            (1, 2, 1, 1)
        );
        assert_eq!(env.inner().inner().samples(), 1, "simulated exactly once");
    }

    #[test]
    fn corrupted_results_are_never_cached() {
        use crate::fault::{FaultPlan, FaultyEnv};
        let plan = FaultPlan::new(3).corrupt(1.0);
        let cache = Arc::new(EvalCache::new());
        let mut env = CachedEnv::new(
            FaultyEnv::new(PeakEnv::new(&[8], vec![3]), plan),
            cache.clone(),
        );
        // Corrupt evaluations are Ok(..) but non-finite: the fallible
        // path must not memoize them. The infallible path degrades the
        // corruption to a *finite* penalty — equally uncacheable (it
        // reflects this run's retry budget, not the design point).
        let corrupt = env.try_step(&action(2)).unwrap();
        assert!(!corrupt.reward.is_finite());
        let degraded = env.step(&action(4));
        assert!(degraded.reward.is_finite());
        assert!(degraded.info.contains_key("eval_degraded"));
        let stats = cache.stats();
        assert_eq!((stats.inserts, stats.entries), (0, 0));
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 0);
    }
}
