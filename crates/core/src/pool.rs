//! In-run batch evaluation — [`BatchEvaluator`] and [`EnvPool`].
//!
//! The ArchGym loop (paper §3, Fig. 2) is agent-proposes-batch →
//! simulator-evaluates → agent-observes. Population agents (GA
//! generations, ACO ant cohorts, SA neighbor batches) propose whole
//! batches whose members are independent by construction, so the
//! evaluate stage can fan out across threads *within one run* — a
//! different axis from the across-runs parallelism of
//! [`Executor::map`](crate::executor::Executor::map)-driven sweeps.
//!
//! [`BatchEvaluator`] is the seam: the
//! [`SearchLoop`](crate::search::SearchLoop) evaluates through it
//! instead of calling [`Environment::step`] directly. A blanket impl
//! makes every `Environment` a serial evaluator, so existing call
//! sites keep working unchanged. [`EnvPool`] is the parallel
//! implementation: it holds one cloned environment replica per worker
//! (cloning is cheap — e.g. `DramEnv` shares its trace through an
//! `Arc`) and fans each batch out via
//! [`Executor::map_with`](crate::executor::Executor::map_with).
//!
//! Results always come back **in proposal order**, and every bundled
//! environment is a deterministic pure function of the action, so a
//! pooled run is bit-identical to a serial one — same rewards, same
//! history, same dataset. The search loop's tests enforce this.
//!
//! ```
//! use archgym_core::pool::{BatchEvaluator, EnvPool};
//! use archgym_core::prelude::*;
//! use archgym_core::toy::PeakEnv;
//!
//! let mut pool = EnvPool::new(PeakEnv::new(&[8], vec![3]), 4);
//! let batch: Vec<Action> = (0..8).map(|i| Action::new(vec![i])).collect();
//! let results = pool.eval_batch(&batch);
//! assert_eq!(results.len(), 8);
//! assert_eq!(results[3].reward, 1.0); // order preserved: index 3 is the peak
//! ```

use crate::env::{Environment, Observation, StepResult};
use crate::error::{ArchGymError, Result};
use crate::executor::Executor;
use crate::space::Action;
use crate::telemetry::Recorder;

/// Evaluates batches of proposed design points.
///
/// The [`SearchLoop`](crate::search::SearchLoop) is generic over this
/// trait rather than over [`Environment`] directly. The blanket impl
/// below turns any environment into a serial evaluator; [`EnvPool`]
/// evaluates in parallel across replicas. Implementations must return
/// exactly one result per action, in the same order.
pub trait BatchEvaluator {
    /// The wrapped environment's name (for dataset/trajectory records).
    /// Deliberately not called `name` so the blanket impl never makes
    /// [`Environment`] method calls ambiguous.
    fn env_name(&self) -> &str;

    /// Reset episode state, returning the initial observation.
    fn reset_env(&mut self) -> Observation;

    /// Evaluate `actions`, returning results in proposal order.
    fn eval_batch(&mut self, actions: &[Action]) -> Vec<StepResult>;

    /// The width of the observation vector this evaluator produces —
    /// what the retry machinery sizes degraded placeholder results to.
    fn observation_width(&self) -> usize;

    /// Fallibly evaluate `actions`, returning one outcome per action in
    /// proposal order. The default delegates to the infallible
    /// [`BatchEvaluator::eval_batch`]; fault-aware implementations
    /// (environments with a real [`Environment::try_step`], pools with
    /// panic isolation) surface per-action failures instead, which the
    /// [`SearchLoop`](crate::search::SearchLoop) retries and degrades
    /// per its [`RetryPolicy`](crate::search::RetryPolicy).
    fn try_eval_batch(&mut self, actions: &[Action]) -> Vec<Result<StepResult>> {
        self.eval_batch(actions).into_iter().map(Ok).collect()
    }

    /// Install a telemetry recorder on the evaluator and everything it
    /// wraps (see [`Environment::set_telemetry`]). The default is a
    /// no-op.
    fn set_telemetry(&mut self, _recorder: &Recorder) {}
}

/// Every environment is a serial batch evaluator: step each action in
/// order on the caller's thread.
impl<E: Environment + ?Sized> BatchEvaluator for E {
    fn env_name(&self) -> &str {
        self.name()
    }
    fn reset_env(&mut self) -> Observation {
        self.reset()
    }
    fn eval_batch(&mut self, actions: &[Action]) -> Vec<StepResult> {
        actions.iter().map(|action| self.step(action)).collect()
    }
    fn observation_width(&self) -> usize {
        self.observation_labels().len()
    }
    fn try_eval_batch(&mut self, actions: &[Action]) -> Vec<Result<StepResult>> {
        actions.iter().map(|action| self.try_step(action)).collect()
    }
    fn set_telemetry(&mut self, recorder: &Recorder) {
        Environment::set_telemetry(self, recorder);
    }
}

/// A pool of cloned environment replicas that evaluates batches in
/// parallel, one replica per worker thread.
///
/// Wrapping a [`CachedEnv`](crate::cache::CachedEnv) composes with the
/// shared [`EvalCache`](crate::cache::EvalCache): replicas clone the
/// `Arc` handle, so all workers fill and probe one memo table.
#[derive(Debug)]
pub struct EnvPool<E> {
    replicas: Vec<E>,
    executor: Executor,
}

impl<E: Environment + Clone + Send> EnvPool<E> {
    /// A pool of `jobs` replicas of `env` (`jobs == 0` means one per
    /// available hardware thread; `jobs == 1` degenerates to serial).
    pub fn new(env: E, jobs: usize) -> Self {
        let executor = Executor::new(jobs);
        let replicas = vec![env; executor.jobs()];
        EnvPool { replicas, executor }
    }

    /// The number of environment replicas (== worker threads).
    pub fn jobs(&self) -> usize {
        self.replicas.len()
    }

    /// The first replica (they are interchangeable — bundled
    /// environments are stateless between designs).
    pub fn env(&self) -> &E {
        &self.replicas[0]
    }

    /// Unwrap, returning the first replica and dropping the rest.
    pub fn into_env(mut self) -> E {
        self.replicas.swap_remove(0)
    }
}

impl<E: Environment + Clone + Send> BatchEvaluator for EnvPool<E> {
    fn env_name(&self) -> &str {
        self.replicas[0].name()
    }
    fn reset_env(&mut self) -> Observation {
        // Reset every replica so all workers observe the same episode
        // state; return the first observation (they are identical).
        let mut first = None;
        for replica in &mut self.replicas {
            let obs = replica.reset();
            first.get_or_insert(obs);
        }
        first.expect("pool holds at least one replica")
    }
    fn eval_batch(&mut self, actions: &[Action]) -> Vec<StepResult> {
        self.executor
            .map_with(&mut self.replicas, actions, |env, action| env.step(action))
    }
    fn observation_width(&self) -> usize {
        self.replicas[0].observation_labels().len()
    }
    fn try_eval_batch(&mut self, actions: &[Action]) -> Vec<Result<StepResult>> {
        // Fan out through the panic-isolating primitive: a panicking
        // evaluation loses only its own slot (surfacing as EvalFailed),
        // while the surviving workers keep draining the batch.
        self.executor
            .map_with_catch(&mut self.replicas, actions, |env, action| {
                env.try_step(action)
            })
            .into_iter()
            .map(|slot| match slot {
                Ok(outcome) => outcome,
                Err(msg) => Err(ArchGymError::EvalFailed(format!("worker panicked: {msg}"))),
            })
            .collect()
    }
    fn set_telemetry(&mut self, recorder: &Recorder) {
        // Replicas share Arc-backed recorder cells, so the pooled
        // counters land in the same report as the serial ones would.
        for replica in &mut self.replicas {
            replica.set_telemetry(recorder);
        }
        self.executor.set_telemetry(recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CachedEnv, EvalCache};
    use crate::env::CountingEnv;
    use crate::toy::PeakEnv;
    use std::sync::Arc;

    fn batch(n: usize) -> Vec<Action> {
        (0..n).map(|i| Action::new(vec![i % 8])).collect()
    }

    #[test]
    fn pool_matches_serial_evaluation_in_order() {
        let mut serial = PeakEnv::new(&[8], vec![3]);
        let expected = serial.eval_batch(&batch(100));
        for jobs in [1, 2, 4, 16] {
            let mut pool = EnvPool::new(PeakEnv::new(&[8], vec![3]), jobs);
            assert_eq!(pool.eval_batch(&batch(100)), expected, "jobs={jobs}");
        }
    }

    #[test]
    fn pool_reports_wrapped_env_metadata() {
        let mut pool = EnvPool::new(PeakEnv::new(&[8, 8], vec![1, 2]), 4);
        assert_eq!(pool.env_name(), "peak");
        assert_eq!(pool.env().space().len(), 2);
        assert_eq!(
            pool.reset_env().len(),
            pool.env().observation_labels().len()
        );
        assert_eq!(pool.jobs(), 4);
        assert_eq!(pool.into_env().name(), "peak");
    }

    #[test]
    fn zero_jobs_sizes_pool_to_available_parallelism() {
        let pool = EnvPool::new(PeakEnv::new(&[4], vec![0]), 0);
        assert_eq!(pool.jobs(), Executor::available_parallelism());
    }

    #[test]
    fn pool_composes_with_shared_eval_cache() {
        // All replicas share one cache: 32 distinct points evaluated
        // across a pool leave exactly 32 entries, and a repeat batch is
        // answered entirely from the cache.
        let cache = Arc::new(EvalCache::new());
        let env = CachedEnv::new(
            CountingEnv::new(PeakEnv::new(&[32], vec![7])),
            cache.clone(),
        );
        let mut pool = EnvPool::new(env, 4);
        let points: Vec<Action> = (0..32).map(|i| Action::new(vec![i])).collect();
        let first = pool.eval_batch(&points);
        assert_eq!(cache.stats().entries, 32);
        let second = pool.eval_batch(&points);
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!(stats.hits, 32);
        assert_eq!(stats.misses, 32);
    }

    #[test]
    fn boxed_clone_environment_can_be_pooled() {
        use crate::env::CloneEnvironment;
        let boxed: Box<dyn CloneEnvironment> = Box::new(PeakEnv::new(&[8], vec![5]));
        let mut serial = boxed.clone();
        let expected = serial.eval_batch(&batch(24));
        let mut pool = EnvPool::new(boxed, 3);
        assert_eq!(pool.eval_batch(&batch(24)), expected);
    }

    #[test]
    fn empty_batch_returns_empty_results() {
        let mut pool = EnvPool::new(PeakEnv::new(&[4], vec![0]), 4);
        assert!(pool.eval_batch(&[]).is_empty());
    }

    #[test]
    fn default_try_eval_batch_wraps_the_infallible_path() {
        let mut env = PeakEnv::new(&[8], vec![3]);
        let expected = env.eval_batch(&batch(8));
        let outcomes = env.try_eval_batch(&batch(8));
        assert_eq!(env.observation_width(), env.observation_labels().len());
        for (outcome, want) in outcomes.into_iter().zip(expected) {
            assert_eq!(outcome.unwrap(), want);
        }
    }

    #[test]
    fn pooled_faults_match_serial_faults_in_order() {
        use crate::fault::{FaultPlan, FaultyEnv};
        // Distinct actions: duplicates would race the shared attempt
        // counters under pooling and legitimately settle differently.
        let plan = FaultPlan::new(11).transient(0.4);
        let actions: Vec<Action> = (0..40).map(|i| Action::new(vec![i])).collect();
        let mut serial = FaultyEnv::new(PeakEnv::new(&[64], vec![3]), plan);
        let expected: Vec<bool> = serial
            .try_eval_batch(&actions)
            .iter()
            .map(|o| o.is_ok())
            .collect();
        let mut pool = EnvPool::new(FaultyEnv::new(PeakEnv::new(&[64], vec![3]), plan), 4);
        let got: Vec<bool> = pool
            .try_eval_batch(&actions)
            .iter()
            .map(|o| o.is_ok())
            .collect();
        assert_eq!(got, expected);
        assert!(expected.iter().any(|ok| !ok), "fault rate 0.4 fired");
    }

    /// An environment whose evaluation panics on one specific action.
    #[derive(Clone)]
    struct Exploding(PeakEnv);
    impl Environment for Exploding {
        fn name(&self) -> &str {
            "exploding"
        }
        fn space(&self) -> &crate::space::ParamSpace {
            self.0.space()
        }
        fn observation_labels(&self) -> Vec<String> {
            self.0.observation_labels()
        }
        fn reset(&mut self) -> Observation {
            self.0.reset()
        }
        fn step(&mut self, action: &Action) -> StepResult {
            assert!(action.index(0) != 5, "simulator segfault");
            self.0.step(action)
        }
    }

    #[test]
    fn pooled_panic_loses_only_its_own_work_item() {
        let actions: Vec<Action> = (0..16).map(|i| Action::new(vec![i % 8])).collect();
        let mut pool = EnvPool::new(Exploding(PeakEnv::new(&[8], vec![3])), 4);
        let outcomes = pool.try_eval_batch(&actions);
        for (i, outcome) in outcomes.iter().enumerate() {
            if i % 8 == 5 {
                match outcome {
                    Err(ArchGymError::EvalFailed(msg)) => {
                        assert!(msg.contains("worker panicked"), "{msg}");
                        assert!(msg.contains("simulator segfault"), "{msg}");
                    }
                    other => panic!("slot {i}: expected panic error, got {other:?}"),
                }
            } else {
                assert!(outcome.is_ok(), "slot {i} survived");
            }
        }
    }
}
