//! A small deterministic thread-pool executor for embarrassingly
//! parallel run fan-out.
//!
//! The paper's lottery studies execute tens of thousands of independent
//! `(hyperparameter assignment, seed)` runs; this module spreads such run
//! units across worker threads while keeping the *results* in exactly the
//! input order, so a parallel sweep is bit-identical to a serial one.
//!
//! The design is deliberately dependency-free: [`std::thread::scope`]
//! workers pull the next unclaimed *chunk* of indices off a shared
//! atomic cursor (self-scheduling: chunks amortize coordination on
//! fine-grained items while staying small enough to load-balance uneven
//! ones), stash `(index, result)` pairs locally, and the results are
//! stitched back into input order after the scope joins.
//!
//! Work items are *panic-isolated*: every invocation runs under
//! [`std::panic::catch_unwind`], so a panicking item surfaces as an
//! error result in its own slot ([`Executor::map_with_catch`]) while
//! the surviving workers keep draining the cursor. The infallible
//! [`Executor::map`]/[`Executor::map_with`] wrappers re-raise the first
//! caught panic after the full fan-out completes.
//!
//! ```
//! use archgym_core::executor::Executor;
//!
//! let squares = Executor::new(4).map(&[1u64, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use crate::telemetry::{Phase, Recorder};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Render a caught panic payload as text (panics carry `&str` or
/// `String` in practice; anything else gets a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Fans independent work items out across worker threads, returning
/// results in input order.
#[derive(Debug, Clone)]
pub struct Executor {
    jobs: usize,
    recorder: Recorder,
}

/// Equality is configuration equality (worker count); the telemetry
/// handle is observability plumbing, not configuration.
impl PartialEq for Executor {
    fn eq(&self, other: &Self) -> bool {
        self.jobs == other.jobs
    }
}

impl Eq for Executor {}

impl Executor {
    /// An executor running on `jobs` worker threads. `jobs == 0` selects
    /// [`Executor::available_parallelism`]; `jobs == 1` runs serially on
    /// the caller's thread.
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            Self::available_parallelism()
        } else {
            jobs
        };
        Executor {
            jobs,
            recorder: Recorder::default(),
        }
    }

    /// Install a telemetry recorder: every fan-out
    /// ([`Executor::map_with_catch`] and the wrappers built on it)
    /// records one [`Phase::ExecutorBatch`] span covering worker
    /// scheduling plus the work itself.
    pub fn set_telemetry(&mut self, recorder: &Recorder) {
        self.recorder = recorder.clone();
    }

    /// The number of hardware threads available, falling back to 1 when
    /// the platform cannot say.
    pub fn available_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// The resolved worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// How many indices a worker claims per cursor bump: roughly four
    /// claims per worker, so coordination is amortized on fine-grained
    /// items without starving stragglers on uneven ones.
    fn chunk(items: usize, workers: usize) -> usize {
        (items / (workers * 4)).max(1)
    }

    /// Apply `f` to every item, in parallel across the executor's
    /// workers, and return the results **in input order**.
    ///
    /// `f` must be safe to call concurrently from several threads
    /// (`Sync`); each invocation receives a shared reference to its item.
    /// Panics in `f` propagate to the caller once all workers stop.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let mut units = vec![(); self.jobs];
        self.map_with_catch(&mut units, items, |_, item| f(item))
            .into_iter()
            .map(|result| result.unwrap_or_else(|msg| panic!("executor worker panicked: {msg}")))
            .collect()
    }

    /// Like [`Executor::map`], but each worker thread owns one mutable
    /// state from `states` (at most one thread per state, never shared) —
    /// the fan-out primitive behind
    /// [`EnvPool`](crate::pool::EnvPool)'s per-worker environment
    /// replicas. Results come back **in input order**.
    ///
    /// Runs on `min(jobs, states.len(), items.len())` workers; with one
    /// worker (or one state) everything runs serially on the caller's
    /// thread against `states[0]`.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty while `items` is not, and propagates
    /// worker panics.
    pub fn map_with<W, T, R, F>(&self, states: &mut [W], items: &[T], f: F) -> Vec<R>
    where
        W: Send,
        T: Sync,
        R: Send,
        F: Fn(&mut W, &T) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        assert!(!states.is_empty(), "map_with needs at least one state");
        self.map_with_catch(states, items, f)
            .into_iter()
            .map(|result| result.unwrap_or_else(|msg| panic!("executor worker panicked: {msg}")))
            .collect()
    }

    /// The panic-isolating primitive [`Executor::map`] and
    /// [`Executor::map_with`] are built on: apply `f` to every item as
    /// `map_with` does, but run each invocation under
    /// [`catch_unwind`], so a panicking work item becomes
    /// `Err(panic message)` in its slot while **every other item —
    /// including later items claimed by the same worker — still runs**.
    /// Results come back in input order.
    ///
    /// This is what keeps one exploding design-point evaluation from
    /// sinking a whole parallel batch: the search runtime maps the `Err`
    /// to [`ArchGymError::EvalFailed`](crate::error::ArchGymError) and
    /// lets the retry/degrade machinery handle it like any other fault.
    ///
    /// The worker's state is handed back to `f` for subsequent items
    /// even after a catch; states must therefore tolerate an unwound
    /// invocation (environment replicas do — `reset` restores them).
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty while `items` is not.
    pub fn map_with_catch<W, T, R, F>(
        &self,
        states: &mut [W],
        items: &[T],
        f: F,
    ) -> Vec<std::result::Result<R, String>>
    where
        W: Send,
        T: Sync,
        R: Send,
        F: Fn(&mut W, &T) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        assert!(
            !states.is_empty(),
            "map_with_catch needs at least one state"
        );
        let _span = self.recorder.span(Phase::ExecutorBatch);
        let run_one = |state: &mut W, item: &T| -> std::result::Result<R, String> {
            catch_unwind(AssertUnwindSafe(|| f(state, item))).map_err(panic_message)
        };

        // Never spawn more workers than the machine has hardware
        // threads: oversubscribed workers only contend (results are
        // stitched back by index, so the answer is bit-identical at any
        // width). On a single-core host this collapses a pooled run to
        // the serial path, which is exactly as fast as an unpooled one.
        let workers = self
            .jobs
            .min(states.len())
            .min(items.len())
            .min(Self::available_parallelism());
        if workers <= 1 {
            let state = &mut states[0];
            return items.iter().map(|item| run_one(state, item)).collect();
        }

        let chunk = Self::chunk(items.len(), workers);
        let cursor = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, std::result::Result<R, String>)> =
            Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = states[..workers]
                .iter_mut()
                .map(|state| {
                    let cursor = &cursor;
                    let run_one = &run_one;
                    // Pre-size each worker's scratch for its fair share
                    // (plus one chunk of load-balancing slack) so result
                    // staging never reallocates mid-drain.
                    let scratch = items.len() / workers + chunk;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, std::result::Result<R, String>)> =
                            Vec::with_capacity(scratch);
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= items.len() {
                                break;
                            }
                            let end = (start + chunk).min(items.len());
                            for (index, item) in items.iter().enumerate().take(end).skip(start) {
                                local.push((index, run_one(state, item)));
                            }
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                tagged.extend(handle.join().expect("executor worker panicked"));
            }
        });

        // Stitch results back into input order. Every index appears
        // exactly once, so a by-index sort restores determinism.
        tagged.sort_unstable_by_key(|(index, _)| *index);
        tagged.into_iter().map(|(_, result)| result).collect()
    }
}

impl Default for Executor {
    /// An executor using every available hardware thread.
    fn default() -> Self {
        Executor::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn zero_jobs_resolves_to_available_parallelism() {
        let executor = Executor::new(0);
        assert_eq!(executor.jobs(), Executor::available_parallelism());
        assert!(executor.jobs() >= 1);
    }

    #[test]
    fn map_preserves_input_order_at_any_width() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 4, 16] {
            let got = Executor::new(jobs).map(&items, |&x| x * 3 + 1);
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn map_handles_empty_and_single_item_inputs() {
        let executor = Executor::new(8);
        assert_eq!(executor.map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(executor.map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn map_visits_every_item_exactly_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<usize> = (0..100).collect();
        let results = Executor::new(4).map(&items, |&i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(results, items);
    }

    #[test]
    fn map_works_with_fallible_results() {
        let items = [1i64, -2, 3];
        let results =
            Executor::new(2).map(&items, |&x| if x < 0 { Err("negative") } else { Ok(x * 2) });
        assert_eq!(results, vec![Ok(2), Err("negative"), Ok(6)]);
    }

    #[test]
    fn chunk_sizes_amortize_without_starving() {
        assert_eq!(Executor::chunk(8, 8), 1); // small sweeps: per-item
        assert_eq!(Executor::chunk(1000, 4), 62); // big inputs: coarse
        assert_eq!(Executor::chunk(1, 16), 1);
    }

    #[test]
    fn map_with_preserves_order_and_confines_states_to_workers() {
        let items: Vec<u64> = (0..100).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 7).collect();
        for jobs in [1, 2, 4, 16] {
            // Each worker state counts how many items it handled; the
            // counts must sum to the item count (every item exactly once).
            let mut states = vec![0u64; 4];
            let got = Executor::new(jobs).map_with(&mut states, &items, |count, &x| {
                *count += 1;
                x * 7
            });
            assert_eq!(got, expected, "jobs={jobs}");
            assert_eq!(states.iter().sum::<u64>(), 100, "jobs={jobs}");
        }
    }

    #[test]
    fn map_with_handles_empty_input_without_states() {
        let got = Executor::new(4).map_with(&mut [] as &mut [u8], &[] as &[u64], |_, &x| x);
        assert_eq!(got, Vec::<u64>::new());
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn map_with_rejects_missing_states() {
        let _ = Executor::new(4).map_with(&mut [] as &mut [u8], &[1u64], |_, &x| x);
    }

    #[test]
    #[should_panic(expected = "executor worker panicked")]
    fn worker_panics_propagate() {
        let items = [1u64, 2, 3, 4];
        let _ = Executor::new(2).map(&items, |&x| {
            assert!(x < 3, "boom");
            x
        });
    }

    #[test]
    fn catch_isolates_a_panicking_item_from_the_rest() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 4] {
            let mut states = vec![(); 4];
            let results = Executor::new(jobs).map_with_catch(&mut states, &items, |_, &x| {
                if x == 13 {
                    panic!("boom on {x}");
                }
                x * 2
            });
            assert_eq!(results.len(), 100, "jobs={jobs}");
            for (i, result) in results.iter().enumerate() {
                if i == 13 {
                    let msg = result.as_ref().unwrap_err();
                    assert!(msg.contains("boom on 13"), "jobs={jobs}: {msg}");
                } else {
                    assert_eq!(result.as_ref().unwrap(), &(i as u64 * 2), "jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn workers_keep_draining_after_a_caught_panic() {
        // Panic on several items spread across chunks; every remaining
        // item must still be visited exactly once (no worker dies, no
        // chunk is abandoned).
        let items: Vec<u64> = (0..64).collect();
        let visited = AtomicU64::new(0);
        let mut states = vec![0u64; 4];
        let results = Executor::new(4).map_with_catch(&mut states, &items, |count, &x| {
            visited.fetch_add(1, Ordering::Relaxed);
            *count += 1;
            assert!(x % 10 != 7, "unlucky item");
            x
        });
        assert_eq!(visited.load(Ordering::Relaxed), 64);
        assert_eq!(states.iter().sum::<u64>(), 64);
        let failures = results.iter().filter(|r| r.is_err()).count();
        assert_eq!(failures, 6); // 7, 17, 27, 37, 47, 57
        assert!(results[7].as_ref().unwrap_err().contains("unlucky item"));
    }
}
