//! A small deterministic thread-pool executor for embarrassingly
//! parallel run fan-out.
//!
//! The paper's lottery studies execute tens of thousands of independent
//! `(hyperparameter assignment, seed)` runs; this module spreads such run
//! units across worker threads while keeping the *results* in exactly the
//! input order, so a parallel sweep is bit-identical to a serial one.
//!
//! The design is deliberately dependency-free: [`std::thread::scope`]
//! workers pull the next unclaimed index off a shared atomic cursor
//! (self-scheduling / work stealing at item granularity — run units are
//! heavy enough that one `fetch_add` per unit is noise), stash
//! `(index, result)` pairs locally, and the results are stitched back
//! into input order after the scope joins.
//!
//! ```
//! use archgym_core::executor::Executor;
//!
//! let squares = Executor::new(4).map(&[1u64, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Fans independent work items out across worker threads, returning
/// results in input order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    jobs: usize,
}

impl Executor {
    /// An executor running on `jobs` worker threads. `jobs == 0` selects
    /// [`Executor::available_parallelism`]; `jobs == 1` runs serially on
    /// the caller's thread.
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            Self::available_parallelism()
        } else {
            jobs
        };
        Executor { jobs }
    }

    /// The number of hardware threads available, falling back to 1 when
    /// the platform cannot say.
    pub fn available_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// The resolved worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Apply `f` to every item, in parallel across the executor's
    /// workers, and return the results **in input order**.
    ///
    /// `f` must be safe to call concurrently from several threads
    /// (`Sync`); each invocation receives a shared reference to its item.
    /// Panics in `f` propagate to the caller once all workers stop.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            return items.iter().map(&f).collect();
        }

        let cursor = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, R)> = Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let f = &f;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            if index >= items.len() {
                                break;
                            }
                            local.push((index, f(&items[index])));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                tagged.extend(handle.join().expect("executor worker panicked"));
            }
        });

        // Stitch results back into input order. Every index appears
        // exactly once, so a by-index sort restores determinism.
        tagged.sort_unstable_by_key(|(index, _)| *index);
        tagged.into_iter().map(|(_, result)| result).collect()
    }
}

impl Default for Executor {
    /// An executor using every available hardware thread.
    fn default() -> Self {
        Executor::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn zero_jobs_resolves_to_available_parallelism() {
        let executor = Executor::new(0);
        assert_eq!(executor.jobs(), Executor::available_parallelism());
        assert!(executor.jobs() >= 1);
    }

    #[test]
    fn map_preserves_input_order_at_any_width() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 4, 16] {
            let got = Executor::new(jobs).map(&items, |&x| x * 3 + 1);
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn map_handles_empty_and_single_item_inputs() {
        let executor = Executor::new(8);
        assert_eq!(executor.map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(executor.map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn map_visits_every_item_exactly_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<usize> = (0..100).collect();
        let results = Executor::new(4).map(&items, |&i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(results, items);
    }

    #[test]
    fn map_works_with_fallible_results() {
        let items = [1i64, -2, 3];
        let results =
            Executor::new(2).map(&items, |&x| if x < 0 { Err("negative") } else { Ok(x * 2) });
        assert_eq!(results, vec![Ok(2), Err("negative"), Ok(6)]);
    }

    #[test]
    #[should_panic(expected = "executor worker panicked")]
    fn worker_panics_propagate() {
        let items = [1u64, 2, 3, 4];
        let _ = Executor::new(2).map(&items, |&x| {
            assert!(x < 3, "boom");
            x
        });
    }
}
