//! Toy environments for testing and demonstrating search agents.
//!
//! Real ArchGym environments wrap architecture simulators; these toys wrap
//! closed-form landscapes with known optima, so agent behaviour can be
//! asserted exactly. They are used throughout the workspace's test suites
//! and are handy when integrating a new agent (Section 4 of the paper).

use crate::env::{Environment, Observation, StepResult};
use crate::space::{Action, ParamSpace};

/// A separable landscape with a single peak at a known target action;
/// reward is `1 / (1 + L1 distance to the target)`.
#[derive(Debug, Clone)]
pub struct PeakEnv {
    space: ParamSpace,
    target: Vec<usize>,
}

impl PeakEnv {
    /// Create a peak environment with per-dimension cardinalities `cards`
    /// and the optimum at `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target` does not fit the given cardinalities.
    pub fn new(cards: &[usize], target: Vec<usize>) -> Self {
        assert_eq!(cards.len(), target.len(), "target dimensionality mismatch");
        assert!(
            target.iter().zip(cards).all(|(&t, &c)| t < c),
            "target outside the space"
        );
        let mut builder = ParamSpace::builder();
        for (i, &c) in cards.iter().enumerate() {
            assert!(c >= 1, "cardinalities must be at least 1");
            builder = builder.int(&format!("p{i}"), 0, c as i64 - 1, 1);
        }
        PeakEnv {
            space: builder.build().expect("generated space is valid"),
            target,
        }
    }

    /// The optimum action's indices.
    pub fn target(&self) -> &[usize] {
        &self.target
    }
}

impl Environment for PeakEnv {
    fn name(&self) -> &str {
        "peak"
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn observation_labels(&self) -> Vec<String> {
        vec!["distance".into()]
    }

    fn step(&mut self, action: &Action) -> StepResult {
        let dist: usize = action
            .iter()
            .zip(&self.target)
            .map(|(&a, &t)| a.abs_diff(t))
            .sum();
        StepResult::terminal(
            Observation::new(vec![dist as f64]),
            1.0 / (1.0 + dist as f64),
        )
    }
}

/// A deceptive multimodal landscape: a global peak plus a broad local
/// ridge, for exercising exploration/exploitation trade-offs (the paper's
/// Q3). Reward of the global peak is `1.0`; the decoy ridge tops out at
/// `decoy_height`.
#[derive(Debug, Clone)]
pub struct DecoyEnv {
    space: ParamSpace,
    peak: Vec<usize>,
    decoy: Vec<usize>,
    decoy_height: f64,
}

impl DecoyEnv {
    /// Create a decoy environment.
    ///
    /// # Panics
    ///
    /// Panics if the points do not fit the space or `decoy_height` is not
    /// within `(0, 1)`.
    pub fn new(cards: &[usize], peak: Vec<usize>, decoy: Vec<usize>, decoy_height: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&decoy_height),
            "decoy height must be in (0, 1)"
        );
        assert_eq!(cards.len(), peak.len());
        assert_eq!(cards.len(), decoy.len());
        assert!(peak.iter().zip(cards).all(|(&t, &c)| t < c));
        assert!(decoy.iter().zip(cards).all(|(&t, &c)| t < c));
        let mut builder = ParamSpace::builder();
        for (i, &c) in cards.iter().enumerate() {
            builder = builder.int(&format!("p{i}"), 0, c as i64 - 1, 1);
        }
        DecoyEnv {
            space: builder.build().expect("generated space is valid"),
            peak,
            decoy,
            decoy_height,
        }
    }
}

impl Environment for DecoyEnv {
    fn name(&self) -> &str {
        "decoy"
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn observation_labels(&self) -> Vec<String> {
        vec!["distance".into()]
    }

    fn step(&mut self, action: &Action) -> StepResult {
        let dist = |target: &[usize]| -> f64 {
            action
                .iter()
                .zip(target)
                .map(|(&a, &t)| a.abs_diff(t))
                .sum::<usize>() as f64
        };
        let d_peak = dist(&self.peak);
        let d_decoy = dist(&self.decoy);
        // The peak is sharp; the decoy ridge is broad.
        let r_peak = 1.0 / (1.0 + 2.0 * d_peak);
        let r_decoy = self.decoy_height / (1.0 + 0.3 * d_decoy);
        StepResult::terminal(
            Observation::new(vec![d_peak.min(d_decoy)]),
            r_peak.max(r_decoy),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_env_reward_structure() {
        let mut env = PeakEnv::new(&[4, 4], vec![2, 3]);
        assert_eq!(env.step(&Action::new(vec![2, 3])).reward, 1.0);
        assert_eq!(env.step(&Action::new(vec![2, 2])).reward, 0.5);
        assert_eq!(env.target(), &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "target outside the space")]
    fn peak_env_rejects_bad_target() {
        let _ = PeakEnv::new(&[4], vec![4]);
    }

    #[test]
    fn decoy_env_peak_beats_decoy_at_their_centers() {
        let mut env = DecoyEnv::new(&[10, 10], vec![8, 8], vec![1, 1], 0.6);
        let at_peak = env.step(&Action::new(vec![8, 8])).reward;
        let at_decoy = env.step(&Action::new(vec![1, 1])).reward;
        assert_eq!(at_peak, 1.0);
        assert!((at_decoy - 0.6).abs() < 1e-12);
        // Near the decoy the ridge is broad: one step away barely hurts.
        let near_decoy = env.step(&Action::new(vec![1, 2])).reward;
        assert!(near_decoy > 0.4);
        // Near the peak the drop is sharp.
        let near_peak = env.step(&Action::new(vec![8, 7])).reward;
        assert!(near_peak < 0.5);
    }

    #[test]
    #[should_panic(expected = "decoy height")]
    fn decoy_env_rejects_bad_height() {
        let _ = DecoyEnv::new(&[4], vec![0], vec![1], 1.5);
    }
}
