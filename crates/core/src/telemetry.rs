//! Run telemetry — low-overhead tracing and metrics for the search
//! runtime.
//!
//! Long searches against slow cost models are opaque: when a run is
//! 40 minutes in, the operator wants to know *where the time goes*
//! (propose vs evaluate vs journal I/O), *how the cache is doing*, and
//! *how many evaluations the fault machinery absorbed* — without
//! grepping debug logs or paying for the answer in throughput.
//!
//! The design is a single cheap handle, [`Recorder`]:
//!
//! * **Disabled by default.** `Recorder::default()` carries no
//!   allocation; every instrumentation site costs one branch on an
//!   `Option` and — crucially — skips the `Instant::now()` syscalls
//!   entirely, so the uninstrumented hot path is unchanged (CI pins
//!   the overhead of an *enabled* recorder below 5%).
//! * **Counters** are a fixed [`Counter`] enum indexed into an array of
//!   `AtomicU64`s — no hashing, no locking, saturating on overflow.
//!   Their accounting model is exact and test-enforced: cache
//!   `hits + misses == lookups`, the failure counter equals both the
//!   search loop's `eval_failures` and the fault injector's
//!   [`FaultStats::total`](crate::fault::FaultStats::total), and the
//!   totals are identical at any `--jobs` width.
//! * **Phase timers** ([`Phase`]/[`Span`]) are drop-guard spans feeding
//!   fixed log-bucket latency [`Histogram`]s (65 power-of-two buckets,
//!   zero allocation per sample) from which p50/p95/p99 are read.
//! * **Snapshots** ([`RunReport`]) serialize through the in-repo
//!   [`codec`](crate::codec) (the offline `serde_json` stub is
//!   unusable), render as a human table, and expose a
//!   [`stable_json`](RunReport::stable_json) subset containing only the
//!   order-independent counters — the byte-stable surface golden tests
//!   pin across runs and job counts.
//! * **Trace events** stream as JSONL through an optional sink
//!   ([`Recorder::set_trace`]) — one event per settled batch.
//!
//! The handle is `Arc`-backed: clones share one set of cells, so the
//! search loop, the env-pool replicas on worker threads, the journal
//! writer and the fault injector all feed the same report.
//!
//! ```
//! use archgym_core::telemetry::{Counter, Phase, Recorder};
//!
//! let rec = Recorder::new();
//! rec.incr(Counter::CacheLookups);
//! rec.incr(Counter::CacheMisses);
//! {
//!     let _span = rec.span(Phase::Evaluate);
//!     // ... simulate ...
//! }
//! let report = rec.report().unwrap();
//! assert_eq!(report.counters["cache_lookups"], 1);
//! assert_eq!(report.phases["evaluate"].count, 1);
//! ```

use crate::codec::{parse_json, Json};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The fixed set of run counters. Adding a variant is cheap (one array
/// slot); renaming one is a report-format change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Samples settled by live evaluation (retries/degradation done).
    SamplesSettled,
    /// Samples absorbed from a journal during resume replay — counted
    /// separately from [`Counter::SamplesSettled`] precisely so a
    /// resumed run never double-counts: `settled + replayed` equals the
    /// run's `samples_used`.
    SamplesReplayed,
    /// Proposal batches driven through the loop (live or replayed).
    Batches,
    /// Retry rounds charged to failing evaluations.
    EvalRetries,
    /// Failed evaluation outcomes observed (mirrors
    /// [`RunResult::eval_failures`](crate::search::RunResult)).
    EvalFailures,
    /// Samples degraded to the retry policy's penalty.
    DegradedSamples,
    /// Cache probes issued (each is exactly one hit or one miss).
    CacheLookups,
    /// Cache probes answered from the memo.
    CacheHits,
    /// Cache probes that fell through to a simulation.
    CacheMisses,
    /// Results written into the cache.
    CacheInserts,
    /// Records appended to the run journal.
    JournalAppends,
    /// Injected transient faults observed.
    FaultTransient,
    /// Injected latched crashes observed.
    FaultLatched,
    /// Injected corrupted (NaN/Inf) results observed.
    FaultCorrupt,
    /// Injected stalls (timeouts) observed.
    FaultStall,
    /// Knock-on rejections while the crash latch was set.
    FaultCrashedRejections,
    /// DRAM scheduling decisions made (row hits + misses + conflicts).
    DramDecisions,
    /// DRAM row-buffer hits across simulated requests.
    DramRowHits,
    /// DRAM row-buffer misses (empty-row activations).
    DramRowMisses,
    /// DRAM row-buffer conflicts (precharge + activate).
    DramRowConflicts,
    /// Candidate proposals ranked by the online proxy screen.
    ProxyScreened,
    /// Screened candidates admitted to true evaluation (top-k by
    /// predicted reward plus the uncertainty exploration slice).
    ProxyAdmitted,
    /// Online proxy model (re)fits.
    ProxyRefits,
    /// Full-batch drift re-validations driven through the screen.
    ProxyRevalidations,
    /// Lanes launched by a racing scheduler.
    RaceLanesStarted,
    /// Lanes eliminated at race rung boundaries.
    RaceLanesEliminated,
    /// Lanes promoted past a race rung boundary.
    RaceLanesPromoted,
}

impl Counter {
    /// Every counter, in report order.
    pub const ALL: [Counter; 27] = [
        Counter::SamplesSettled,
        Counter::SamplesReplayed,
        Counter::Batches,
        Counter::EvalRetries,
        Counter::EvalFailures,
        Counter::DegradedSamples,
        Counter::CacheLookups,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheInserts,
        Counter::JournalAppends,
        Counter::FaultTransient,
        Counter::FaultLatched,
        Counter::FaultCorrupt,
        Counter::FaultStall,
        Counter::FaultCrashedRejections,
        Counter::DramDecisions,
        Counter::DramRowHits,
        Counter::DramRowMisses,
        Counter::DramRowConflicts,
        Counter::ProxyScreened,
        Counter::ProxyAdmitted,
        Counter::ProxyRefits,
        Counter::ProxyRevalidations,
        Counter::RaceLanesStarted,
        Counter::RaceLanesEliminated,
        Counter::RaceLanesPromoted,
    ];

    /// The counter's stable report key.
    pub fn name(self) -> &'static str {
        match self {
            Counter::SamplesSettled => "samples_settled",
            Counter::SamplesReplayed => "samples_replayed",
            Counter::Batches => "batches",
            Counter::EvalRetries => "eval_retries",
            Counter::EvalFailures => "eval_failures",
            Counter::DegradedSamples => "degraded_samples",
            Counter::CacheLookups => "cache_lookups",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::CacheInserts => "cache_inserts",
            Counter::JournalAppends => "journal_appends",
            Counter::FaultTransient => "fault_transient",
            Counter::FaultLatched => "fault_latched",
            Counter::FaultCorrupt => "fault_corrupt",
            Counter::FaultStall => "fault_stall",
            Counter::FaultCrashedRejections => "fault_crashed_rejections",
            Counter::DramDecisions => "dram_decisions",
            Counter::DramRowHits => "dram_row_hits",
            Counter::DramRowMisses => "dram_row_misses",
            Counter::DramRowConflicts => "dram_row_conflicts",
            Counter::ProxyScreened => "proxy_screened",
            Counter::ProxyAdmitted => "proxy_admitted",
            Counter::ProxyRefits => "proxy_refits",
            Counter::ProxyRevalidations => "proxy_revalidations",
            Counter::RaceLanesStarted => "race_lanes_started",
            Counter::RaceLanesEliminated => "race_lanes_eliminated",
            Counter::RaceLanesPromoted => "race_lanes_promoted",
        }
    }
}

/// Instrumented phases of the run pipeline. Each phase owns one latency
/// histogram; a [`Span`] samples into it on drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Agent proposal ([`Agent::propose`](crate::agent::Agent::propose)).
    Propose,
    /// One `try_eval_batch` fan-out (simulator time).
    Evaluate,
    /// One full batch settlement, retries and degradation included.
    Settle,
    /// One journal record append (fsync-path I/O).
    JournalAppend,
    /// One memo-table probe.
    CacheLookup,
    /// Backoff sleep between retry rounds.
    RetryBackoff,
    /// One executor fan-out (worker scheduling + work).
    ExecutorBatch,
    /// One DRAM controller simulation of a full trace.
    Simulate,
    /// One proxy screen pass: batch prediction + admission ranking.
    Proxy,
    /// One full race rung: advance every live lane, rank, eliminate.
    Race,
}

impl Phase {
    /// Every phase, in report order.
    pub const ALL: [Phase; 10] = [
        Phase::Propose,
        Phase::Evaluate,
        Phase::Settle,
        Phase::JournalAppend,
        Phase::CacheLookup,
        Phase::RetryBackoff,
        Phase::ExecutorBatch,
        Phase::Simulate,
        Phase::Proxy,
        Phase::Race,
    ];

    /// The phase's stable report key.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Propose => "propose",
            Phase::Evaluate => "evaluate",
            Phase::Settle => "settle",
            Phase::JournalAppend => "journal_append",
            Phase::CacheLookup => "cache_lookup",
            Phase::RetryBackoff => "retry_backoff",
            Phase::ExecutorBatch => "executor_batch",
            Phase::Simulate => "simulate",
            Phase::Proxy => "proxy",
            Phase::Race => "race",
        }
    }
}

/// Number of log buckets: one for zero, one per bit position of a
/// nonzero `u64` nanosecond count.
const BUCKETS: usize = 65;

/// The bucket a nanosecond sample lands in: `0` holds exactly `0`,
/// bucket `i >= 1` holds `[2^(i-1), 2^i - 1]`.
fn bucket_of(ns: u64) -> usize {
    (u64::BITS - ns.leading_zeros()) as usize
}

/// The largest value bucket `i` can hold — what percentiles report
/// (a conservative upper bound, never an underestimate).
fn bucket_upper_bound(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A fixed log-bucket latency histogram. Lock-free, zero allocation
/// per sample; percentiles resolve to the upper bound of the smallest
/// bucket whose cumulative count reaches `ceil(q * total)`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Record one nanosecond sample.
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&self.total_ns, ns);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples in nanoseconds (saturating).
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Largest sample recorded.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket upper bound; `0`
    /// when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }

    /// Summarize for a [`RunReport`].
    pub fn summary(&self) -> PhaseSummary {
        PhaseSummary {
            count: self.count(),
            total_ns: self.total_ns(),
            p50_ns: self.percentile(0.50),
            p95_ns: self.percentile(0.95),
            p99_ns: self.percentile(0.99),
            max_ns: self.max_ns(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Saturating atomic add: a counter that overflows pins to `u64::MAX`
/// instead of silently wrapping to a small number.
fn saturating_fetch_add(cell: &AtomicU64, n: u64) {
    if n == 0 {
        return;
    }
    let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_add(n))
    });
}

/// The shared telemetry cells behind an enabled [`Recorder`].
struct Inner {
    counters: [AtomicU64; Counter::ALL.len()],
    phases: [Histogram; Phase::ALL.len()],
    gauges: Mutex<BTreeMap<String, f64>>,
    trace: Mutex<Option<Box<dyn Write + Send>>>,
}

impl Inner {
    fn new() -> Self {
        Inner {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            phases: std::array::from_fn(|_| Histogram::new()),
            gauges: Mutex::new(BTreeMap::new()),
            trace: Mutex::new(None),
        }
    }
}

/// The telemetry handle instrumentation sites hold.
///
/// Cheap to clone (an `Option<Arc>`), disabled by default. Every
/// recording method is a no-op costing one branch when disabled; spans
/// additionally skip their `Instant::now()` calls.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "Recorder(on)"
        } else {
            "Recorder(off)"
        })
    }
}

impl Recorder {
    /// An enabled recorder with fresh cells.
    pub fn new() -> Self {
        Recorder {
            inner: Some(Arc::new(Inner::new())),
        }
    }

    /// The disabled recorder (same as [`Recorder::default`]).
    pub fn disabled() -> Self {
        Recorder::default()
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `n` to a counter (saturating).
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            saturating_fetch_add(&inner.counters[counter as usize], n);
        }
    }

    /// Increment a counter by one.
    #[inline]
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Read a counter (`0` when disabled).
    pub fn get(&self, counter: Counter) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            inner.counters[counter as usize].load(Ordering::Relaxed)
        })
    }

    /// Set a named gauge to `value` (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner
                .gauges
                .lock()
                .expect("telemetry gauge map poisoned")
                .insert(name.to_owned(), value);
        }
    }

    /// Record a raw nanosecond sample into a phase histogram.
    #[inline]
    pub fn record_ns(&self, phase: Phase, ns: u64) {
        if let Some(inner) = &self.inner {
            inner.phases[phase as usize].record(ns);
        }
    }

    /// Start a drop-guard span timing `phase`. When the recorder is
    /// disabled the span is inert and no clock is read.
    #[inline]
    pub fn span(&self, phase: Phase) -> Span<'_> {
        Span {
            active: self
                .inner
                .as_deref()
                .map(|inner| (inner, phase, Instant::now())),
        }
    }

    /// Install a streaming JSONL trace sink. Ignored when disabled.
    pub fn set_trace<W: Write + Send + 'static>(&self, sink: W) {
        if let Some(inner) = &self.inner {
            *inner.trace.lock().expect("telemetry trace sink poisoned") = Some(Box::new(sink));
        }
    }

    /// Emit one event line to the trace sink, if one is installed.
    pub fn trace_event(&self, event: &Json) {
        if let Some(inner) = &self.inner {
            let mut guard = inner.trace.lock().expect("telemetry trace sink poisoned");
            if let Some(sink) = guard.as_mut() {
                let mut line = event.encode();
                line.push('\n');
                // Telemetry must never fail the run it observes: a dead
                // sink (full disk, closed pipe) drops events silently.
                let _ = sink.write_all(line.as_bytes()).and_then(|_| sink.flush());
            }
        }
    }

    /// Snapshot everything recorded so far. `None` when disabled.
    ///
    /// All counters are always present (zeros included) so reports from
    /// different runs share one schema; phases appear only once they
    /// have at least one sample.
    pub fn report(&self) -> Option<RunReport> {
        let inner = self.inner.as_deref()?;
        let counters = Counter::ALL
            .iter()
            .map(|&c| {
                (
                    c.name().to_owned(),
                    inner.counters[c as usize].load(Ordering::Relaxed),
                )
            })
            .collect();
        let phases = Phase::ALL
            .iter()
            .filter(|&&p| inner.phases[p as usize].count() > 0)
            .map(|&p| (p.name().to_owned(), inner.phases[p as usize].summary()))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .expect("telemetry gauge map poisoned")
            .clone();
        Some(RunReport {
            counters,
            gauges,
            phases,
        })
    }
}

/// A drop-guard phase timer produced by [`Recorder::span`].
#[must_use = "a span records its phase when dropped; binding it to _ drops it immediately"]
pub struct Span<'a> {
    active: Option<(&'a Inner, Phase, Instant)>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((inner, phase, start)) = self.active.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            inner.phases[phase as usize].record(ns);
        }
    }
}

/// Latency summary of one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples in nanoseconds (saturating).
    pub total_ns: u64,
    /// Median, as a log-bucket upper bound.
    pub p50_ns: u64,
    /// 95th percentile, as a log-bucket upper bound.
    pub p95_ns: u64,
    /// 99th percentile, as a log-bucket upper bound.
    pub p99_ns: u64,
    /// Largest sample (exact).
    pub max_ns: u64,
}

/// A serializable snapshot of one run's telemetry.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Counter name → value (all counters, zeros included).
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → last value.
    pub gauges: BTreeMap<String, f64>,
    /// Phase name → latency summary (only phases with samples).
    pub phases: BTreeMap<String, PhaseSummary>,
}

/// Counters excluded from [`RunReport::stable_json`]: under pooled
/// evaluation two workers can miss the same key concurrently (both
/// simulate, both insert), so hit/miss/insert *splits* legitimately
/// depend on the job count. Lookup and every other counter do not.
const JOB_DEPENDENT_COUNTERS: [&str; 3] = ["cache_hits", "cache_misses", "cache_inserts"];

impl RunReport {
    /// Encode as an offline-safe JSON value (see [`crate::codec`]).
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::num_u64(v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone(), Json::num_f64(v)))
            .collect();
        let phases = self
            .phases
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    Json::Obj(vec![
                        ("count".into(), Json::num_u64(s.count)),
                        ("total_ns".into(), Json::num_u64(s.total_ns)),
                        ("p50_ns".into(), Json::num_u64(s.p50_ns)),
                        ("p95_ns".into(), Json::num_u64(s.p95_ns)),
                        ("p99_ns".into(), Json::num_u64(s.p99_ns)),
                        ("max_ns".into(), Json::num_u64(s.max_ns)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("counters".into(), Json::Obj(counters)),
            ("gauges".into(), Json::Obj(gauges)),
            ("phases".into(), Json::Obj(phases)),
        ])
    }

    /// Decode a report encoded by [`RunReport::to_json`].
    ///
    /// # Errors
    ///
    /// Describes the first missing or mistyped field.
    pub fn from_json(value: &Json) -> std::result::Result<Self, String> {
        fn entries(value: &Json) -> std::result::Result<&[(String, Json)], String> {
            match value {
                Json::Obj(fields) => Ok(fields),
                other => Err(format!("expected object, got {other:?}")),
            }
        }
        let mut counters = BTreeMap::new();
        for (name, v) in entries(value.field("counters")?)? {
            counters.insert(name.clone(), v.as_u64()?);
        }
        let mut gauges = BTreeMap::new();
        for (name, v) in entries(value.field("gauges")?)? {
            gauges.insert(name.clone(), v.as_f64()?);
        }
        let mut phases = BTreeMap::new();
        for (name, v) in entries(value.field("phases")?)? {
            phases.insert(
                name.clone(),
                PhaseSummary {
                    count: v.field("count")?.as_u64()?,
                    total_ns: v.field("total_ns")?.as_u64()?,
                    p50_ns: v.field("p50_ns")?.as_u64()?,
                    p95_ns: v.field("p95_ns")?.as_u64()?,
                    p99_ns: v.field("p99_ns")?.as_u64()?,
                    max_ns: v.field("max_ns")?.as_u64()?,
                },
            );
        }
        Ok(RunReport {
            counters,
            gauges,
            phases,
        })
    }

    /// The full report as one JSON line.
    pub fn encode(&self) -> String {
        self.to_json().encode()
    }

    /// Parse a report line written by [`RunReport::encode`].
    ///
    /// # Errors
    ///
    /// Returns the parse failure as text.
    pub fn parse(text: &str) -> std::result::Result<Self, String> {
        parse_json(text).and_then(|v| Self::from_json(&v))
    }

    /// The order-independent counter subset as canonical JSON — byte
    /// stable across repeated runs *and* across `--jobs` widths for a
    /// deterministic workload, which is what the golden test pins.
    /// Timings, gauges, and the job-dependent cache hit/miss/insert
    /// splits are excluded; `cache_lookups` stays (each design point is
    /// probed exactly once per evaluation, regardless of which worker
    /// does it).
    pub fn stable_json(&self) -> String {
        let counters = self
            .counters
            .iter()
            .filter(|(k, _)| !JOB_DEPENDENT_COUNTERS.contains(&k.as_str()))
            .map(|(k, &v)| (k.clone(), Json::num_u64(v)))
            .collect();
        Json::Obj(vec![("counters".into(), Json::Obj(counters))]).encode()
    }

    /// Render as a fixed-width human table (counters, gauges, then
    /// per-phase latencies in microseconds).
    pub fn human_table(&self) -> String {
        let mut out = String::new();
        out.push_str("counter                       value\n");
        for (name, value) in &self.counters {
            out.push_str(&format!("{name:<28} {value:>6}\n"));
        }
        if !self.gauges.is_empty() {
            out.push_str("\ngauge                         value\n");
            for (name, value) in &self.gauges {
                out.push_str(&format!("{name:<28} {value:>10.4}\n"));
            }
        }
        if !self.phases.is_empty() {
            out.push_str(
                "\nphase            count   total_ms    p50_us    p95_us    p99_us    max_us\n",
            );
            for (name, s) in &self.phases {
                out.push_str(&format!(
                    "{name:<16} {:>5} {:>10.3} {:>9.1} {:>9.1} {:>9.1} {:>9.1}\n",
                    s.count,
                    s.total_ns as f64 / 1e6,
                    s.p50_ns as f64 / 1e3,
                    s.p95_ns as f64 / 1e3,
                    s.p99_ns as f64 / 1e3,
                    s.max_ns as f64 / 1e3,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert_and_reports_nothing() {
        let rec = Recorder::default();
        assert!(!rec.is_enabled());
        rec.incr(Counter::Batches);
        rec.add(Counter::EvalFailures, 10);
        rec.gauge("x", 1.0);
        rec.record_ns(Phase::Evaluate, 100);
        drop(rec.span(Phase::Propose));
        assert_eq!(rec.get(Counter::Batches), 0);
        assert!(rec.report().is_none());
        assert_eq!(format!("{rec:?}"), "Recorder(off)");
    }

    #[test]
    fn clones_share_cells() {
        let rec = Recorder::new();
        let other = rec.clone();
        rec.incr(Counter::CacheLookups);
        other.incr(Counter::CacheLookups);
        assert_eq!(rec.get(Counter::CacheLookups), 2);
        assert_eq!(format!("{rec:?}"), "Recorder(on)");
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let rec = Recorder::new();
        rec.add(Counter::EvalFailures, u64::MAX - 1);
        rec.add(Counter::EvalFailures, 5);
        assert_eq!(rec.get(Counter::EvalFailures), u64::MAX);
        rec.incr(Counter::EvalFailures);
        assert_eq!(rec.get(Counter::EvalFailures), u64::MAX);
    }

    #[test]
    fn histogram_bucket_boundaries_are_exact() {
        // Bucket 0 holds exactly 0; bucket i >= 1 holds [2^(i-1), 2^i - 1].
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        for i in 1..64 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(bucket_of(lo), i, "lower edge of bucket {i}");
            assert_eq!(bucket_of(hi), i, "upper edge of bucket {i}");
            assert_eq!(bucket_upper_bound(i), hi);
        }
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        assert_eq!(bucket_upper_bound(0), 0);
    }

    #[test]
    fn percentiles_report_bucket_upper_bounds() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0, "empty histogram");
        // 90 samples in [1, 2), 10 samples in [1024, 2048).
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(1500);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(0.50), 1); // bucket 1 upper bound
        assert_eq!(h.percentile(0.90), 1); // rank 90 still in bucket 1
        assert_eq!(h.percentile(0.95), 2047); // bucket 11 upper bound
        assert_eq!(h.percentile(1.0), 2047);
        assert_eq!(h.max_ns(), 1500);
        assert_eq!(h.total_ns(), 90 + 15_000);
        let s = h.summary();
        assert_eq!(
            (s.count, s.p50_ns, s.p95_ns, s.p99_ns),
            (100, 1, 2047, 2047)
        );
    }

    #[test]
    fn percentile_of_a_single_sample_is_its_bucket() {
        let h = Histogram::new();
        h.record(0);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), 0);
        let h = Histogram::new();
        h.record(700);
        // 700 lands in bucket 10 → upper bound 1023, at every quantile.
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 1023, "q={q}");
        }
    }

    #[test]
    fn spans_time_their_phase() {
        let rec = Recorder::new();
        {
            let _span = rec.span(Phase::Settle);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let report = rec.report().unwrap();
        let s = &report.phases["settle"];
        assert_eq!(s.count, 1);
        assert!(s.total_ns >= 2_000_000, "slept 2ms, got {}ns", s.total_ns);
        assert!(s.max_ns >= 2_000_000);
        assert!(
            !report.phases.contains_key("propose"),
            "unused phase omitted"
        );
    }

    #[test]
    fn report_round_trips_through_the_codec() {
        let rec = Recorder::new();
        rec.add(Counter::SamplesSettled, 128);
        rec.incr(Counter::Batches);
        rec.gauge("wall_seconds", 1.25);
        rec.record_ns(Phase::Evaluate, 1_000);
        rec.record_ns(Phase::Evaluate, 2_000_000);
        let report = rec.report().unwrap();
        let line = report.encode();
        let back = RunReport::parse(&line).unwrap();
        assert_eq!(back, report);
        // Canonical: re-encoding is byte-identical.
        assert_eq!(back.encode(), line);
    }

    #[test]
    fn stable_json_excludes_job_dependent_counters_and_timings() {
        let rec = Recorder::new();
        rec.add(Counter::CacheLookups, 10);
        rec.add(Counter::CacheHits, 4);
        rec.add(Counter::CacheMisses, 6);
        rec.add(Counter::CacheInserts, 6);
        rec.record_ns(Phase::Evaluate, 42);
        rec.gauge("wall_seconds", 0.5);
        let stable = rec.report().unwrap().stable_json();
        assert!(stable.contains("\"cache_lookups\":10"), "{stable}");
        assert!(!stable.contains("cache_hits"), "{stable}");
        assert!(!stable.contains("cache_misses"), "{stable}");
        assert!(!stable.contains("cache_inserts"), "{stable}");
        assert!(!stable.contains("evaluate"), "{stable}");
        assert!(!stable.contains("wall_seconds"), "{stable}");
    }

    #[test]
    fn trace_sink_receives_one_line_per_event() {
        use std::sync::Mutex as StdMutex;
        #[derive(Clone, Default)]
        struct Sink(Arc<StdMutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = Sink::default();
        let rec = Recorder::new();
        rec.set_trace(sink.clone());
        rec.trace_event(&Json::Obj(vec![(
            "event".into(),
            Json::Str("batch".into()),
        )]));
        rec.trace_event(&Json::Obj(vec![(
            "event".into(),
            Json::Str("batch".into()),
        )]));
        let bytes = sink.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            parse_json(line).unwrap();
        }
    }

    #[test]
    fn human_table_lists_counters_and_phases() {
        let rec = Recorder::new();
        rec.add(Counter::SamplesSettled, 64);
        rec.record_ns(Phase::Evaluate, 10_000);
        rec.gauge("wall_seconds", 2.0);
        let table = rec.report().unwrap().human_table();
        assert!(table.contains("samples_settled"));
        assert!(table.contains("64"));
        assert!(table.contains("evaluate"));
        assert!(table.contains("wall_seconds"));
    }

    #[test]
    fn counter_names_are_unique_and_indices_dense() {
        let mut names = std::collections::HashSet::new();
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "dense discriminants");
            assert!(names.insert(c.name()), "duplicate name {}", c.name());
        }
        let mut names = std::collections::HashSet::new();
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i, "dense discriminants");
            assert!(names.insert(p.name()), "duplicate name {}", p.name());
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Any interleaving of hit/miss outcomes — the order a
            /// parallel pool settles lookups in is arbitrary — keeps
            /// `lookups == hits + misses` exact and never loses or
            /// duplicates a sample.
            #[test]
            fn prop_lookup_accounting_is_exact(
                outcomes in proptest::collection::vec(any::<bool>(), 0..200),
            ) {
                let rec = Recorder::new();
                for &hit in &outcomes {
                    rec.incr(Counter::CacheLookups);
                    rec.incr(if hit { Counter::CacheHits } else { Counter::CacheMisses });
                }
                let hits = outcomes.iter().filter(|&&h| h).count() as u64;
                prop_assert_eq!(rec.get(Counter::CacheHits), hits);
                prop_assert_eq!(
                    rec.get(Counter::CacheHits) + rec.get(Counter::CacheMisses),
                    rec.get(Counter::CacheLookups)
                );
                prop_assert_eq!(rec.get(Counter::CacheLookups), outcomes.len() as u64);
            }

            /// Histograms never lose samples and percentiles never
            /// underestimate: the reported bound is >= the true value's
            /// bucket lower edge for every recorded sample.
            #[test]
            fn prop_histogram_counts_every_sample(
                samples in proptest::collection::vec(any::<u64>(), 1..100),
            ) {
                let h = Histogram::new();
                for &s in &samples {
                    h.record(s);
                }
                prop_assert_eq!(h.count(), samples.len() as u64);
                let max = *samples.iter().max().unwrap();
                prop_assert_eq!(h.max_ns(), max);
                prop_assert!(h.percentile(1.0) >= max);
                prop_assert!(h.percentile(0.0) <= h.percentile(1.0));
            }

            /// Reports round-trip through the hand-rolled codec for
            /// arbitrary counter values.
            #[test]
            fn prop_report_roundtrips(
                values in proptest::collection::vec(any::<u64>(), Counter::ALL.len()),
                // Finite gauges only: a NaN gauge round-trips through
                // the codec but defeats PartialEq.
                gauge in -1e300f64..1e300,
            ) {
                let rec = Recorder::new();
                for (&c, &v) in Counter::ALL.iter().zip(&values) {
                    rec.add(c, v);
                }
                rec.gauge("g", gauge);
                let report = rec.report().unwrap();
                let back = RunReport::parse(&report.encode()).unwrap();
                prop_assert_eq!(back, report);
            }
        }
    }
}
