//! # archgym-core
//!
//! Core abstractions of **ArchGym**, an open-source gymnasium for
//! machine-learning-assisted architecture design space exploration
//! (Krishnan et al., ISCA 2023).
//!
//! ArchGym standardizes the interface between *search agents* (reinforcement
//! learning, Bayesian optimization, genetic algorithms, ant colony
//! optimization, random walkers, ...) and *architecture cost models*
//! (DRAM memory controllers, DNN accelerators, SoCs, DNN mappers, ...).
//! Everything flows through three signals — **action**, **observation**,
//! **reward** — mirroring the OpenAI gym `step()` protocol:
//!
//! ```text
//!           action (parameter indices)
//!   Agent  ---------------------------->  Environment (cost model + workload)
//!          <----------------------------
//!           observation + reward/fitness
//! ```
//!
//! The crate provides:
//!
//! * [`space`] — finite, index-encoded parameter spaces ([`ParamSpace`]).
//! * [`mod@env`] — the [`Environment`] trait and its signal types.
//! * [`cache`] — memoized design-point evaluation ([`EvalCache`]).
//! * [`codec`] — offline-safe JSON with bit-exact `f64` round-trips.
//! * [`reward`] — the reward/fitness formulations of the paper's Table 3.
//! * [`agent`] — the [`Agent`] trait plus hyperparameter plumbing.
//! * [`search`] — the agent↔environment driver ([`SearchLoop`]).
//! * [`screen`] — online proxy screening policy and interface
//!   ([`ScreenPolicy`]/[`Screener`]).
//! * [`executor`] — deterministic parallel fan-out of independent runs.
//! * [`pool`] — in-run parallel batch evaluation ([`EnvPool`]).
//! * [`fault`] — deterministic fault injection ([`FaultyEnv`]).
//! * [`storeio`] — checksummed, fsync-policied store I/O with seeded
//!   fault injection ([`StoreIo`]/[`FaultyIo`]).
//! * [`journal`] — crash-safe write-ahead run journaling ([`RunJournal`]).
//! * [`jobs`] — multi-tenant job scheduling for `archgymd` ([`Scheduler`]).
//! * [`trajectory`] — standardized exploration datasets (Section 3.4).
//! * [`bundle`] — self-describing dataset artifacts (schema + data).
//! * [`pareto`] — Pareto-front extraction for multi-objective datasets.
//! * [`sweep`] — hyperparameter sweeps for "lottery" studies (Section 6.1).
//! * [`stats`] — the summary statistics the paper reports (IQR, RMSE, ...).
//! * [`telemetry`] — run tracing and metrics ([`Recorder`]/[`RunReport`]).
//!
//! # Example
//!
//! Running a trivial random search against a quadratic toy environment:
//!
//! ```
//! use archgym_core::prelude::*;
//!
//! // A one-dimensional toy cost model: reward peaks at index 7.
//! struct Toy {
//!     space: ParamSpace,
//! }
//! impl Environment for Toy {
//!     fn name(&self) -> &str { "toy" }
//!     fn space(&self) -> &ParamSpace { &self.space }
//!     fn observation_labels(&self) -> Vec<String> { vec!["cost".into()] }
//!     fn step(&mut self, action: &Action) -> StepResult {
//!         let x = action.index(0) as f64;
//!         let cost = (x - 7.0).abs();
//!         StepResult::terminal(Observation::new(vec![cost]), 1.0 / (1.0 + cost))
//!     }
//! }
//!
//! let space = ParamSpace::builder()
//!     .int("x", 0, 15, 1)
//!     .build()
//!     .unwrap();
//! let mut env = Toy { space };
//! let mut best = f64::NEG_INFINITY;
//! let mut rng = seeded_rng(42);
//! for _ in 0..64 {
//!     let action = env.space().sample(&mut rng);
//!     let result = env.step(&action);
//!     best = best.max(result.reward);
//! }
//! assert!(best > 0.9);
//! ```

pub mod agent;
pub mod bundle;
pub mod cache;
pub mod codec;
pub mod env;
pub mod error;
pub mod executor;
pub mod fault;
pub mod jobs;
pub mod journal;
pub mod pareto;
pub mod pool;
pub mod race;
pub mod reward;
pub mod screen;
pub mod search;
pub mod space;
pub mod stats;
pub mod storeio;
pub mod sweep;
pub mod telemetry;
pub mod toy;
pub mod trajectory;

pub use agent::{warm_start, Agent, HyperGrid, HyperMap, HyperValue};
pub use bundle::DatasetBundle;
pub use cache::{CacheStats, CachedEnv, EvalCache};
pub use env::{CloneEnvironment, Environment, Observation, StepResult};
pub use error::{ArchGymError, Result};
pub use executor::Executor;
pub use fault::{FaultKind, FaultPlan, FaultStats, FaultyEnv};
pub use jobs::{Admission, JobId, JobKind, JobSpec, JobState, QuotaPolicy, Scheduler, Watchdog};
pub use journal::{JournalHeader, JournalRecord, JournalStep, RunJournal, Snapshot};
pub use pool::{BatchEvaluator, EnvPool};
pub use race::{
    rank_lanes, rung_schedule, EnsembleAgent, EnsembleOutcome, LaneOutcome, Race, RaceLane,
    RaceResult, Rung, RungOutcome,
};
pub use reward::{BudgetTerm, Objective, RewardSpec};
pub use screen::{select_admitted, ScreenPolicy, Screener};
pub use search::{RetryPolicy, RunConfig, RunResult, SearchLoop};
pub use space::{Action, ParamDomain, ParamSpace, ParamValue, SpaceBuilder};
pub use storeio::{Durability, FaultyIo, IoFaultPlan, RealIo, StoreIo};
pub use telemetry::{Counter, Phase, PhaseSummary, Recorder, RunReport};
pub use trajectory::{Dataset, Transition};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Construct the deterministic RNG used throughout ArchGym.
///
/// Every stochastic component in the workspace receives an explicit `u64`
/// seed so that experiments are reproducible artifact-for-artifact.
///
/// ```
/// use rand::Rng;
/// let mut a = archgym_core::seeded_rng(7);
/// let mut b = archgym_core::seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::agent::{warm_start, Agent, HyperGrid, HyperMap, HyperValue};
    pub use crate::cache::{CacheStats, CachedEnv, EvalCache};
    pub use crate::env::{CloneEnvironment, Environment, Observation, StepResult};
    pub use crate::error::{ArchGymError, Result};
    pub use crate::executor::Executor;
    pub use crate::fault::{FaultPlan, FaultStats, FaultyEnv};
    pub use crate::journal::RunJournal;
    pub use crate::pool::{BatchEvaluator, EnvPool};
    pub use crate::race::{Race, RaceLane, RaceResult};
    pub use crate::reward::{BudgetTerm, Objective, RewardSpec};
    pub use crate::screen::{ScreenPolicy, Screener};
    pub use crate::search::{RetryPolicy, RunConfig, RunResult, SearchLoop};
    pub use crate::seeded_rng;
    pub use crate::space::{Action, ParamDomain, ParamSpace, ParamValue};
    pub use crate::telemetry::{Counter, Phase, Recorder, RunReport};
    pub use crate::trajectory::{Dataset, Transition};
}
