//! Deterministic fault injection — [`FaultPlan`] and [`FaultyEnv`].
//!
//! The real cost models ArchGym couples to (DRAMSys, Timeloop, FARSI)
//! crash, stall, or emit garbage on awkward configurations, and the
//! framework must degrade those events into penalty rewards rather than
//! kill a multi-day search. This module makes such misbehavior
//! *reproducible*: a seeded [`FaultPlan`] decides — as a pure function
//! of `(seed, action, attempt)` — whether an evaluation fails, and
//! [`FaultyEnv`] wraps any [`Environment`] to act the decision out
//! through the fallible [`Environment::try_step`] path.
//!
//! Four failure modes are modeled, mirroring the field taxonomy:
//!
//! * **transient** — the evaluation errors once; an immediate retry of
//!   the same action may succeed ([`ArchGymError::EvalFailed`]).
//! * **latched** — the evaluation errors *and* crashes the simulator:
//!   every subsequent evaluation is rejected with
//!   [`ArchGymError::EnvCrashed`] until [`Environment::reset`] is
//!   called (the retry loop does this between rounds).
//! * **corrupt** — the evaluation "succeeds" but reports a NaN reward
//!   and an infinite first metric; callers must treat non-finite
//!   results as failures.
//! * **stall** — the evaluation exceeds its step budget and surfaces
//!   [`ArchGymError::Timeout`].
//!
//! Because the schedule is a pure hash of `(seed, action, attempt)`, it
//! is identical regardless of worker count, evaluation order, or how
//! often *other* actions are evaluated — the property the resume and
//! `--jobs` determinism tests lean on. The only per-process state is
//! the attempt counter of each in-flight action (shared across cloned
//! replicas, cleared on success) and the crash latch.
//!
//! ```
//! use archgym_core::fault::{FaultPlan, FaultyEnv};
//! use archgym_core::prelude::*;
//! use archgym_core::toy::PeakEnv;
//!
//! let plan = FaultPlan::new(7).transient(0.5);
//! let mut env = FaultyEnv::new(PeakEnv::new(&[8], vec![3]), plan);
//! let mut failures = 0;
//! for i in 0..8 {
//!     if env.try_step(&Action::new(vec![i])).is_err() {
//!         failures += 1;
//!     }
//! }
//! assert_eq!(failures as u64, env.stats().transient);
//! ```

use crate::env::{Environment, Observation, StepResult};
use crate::error::{ArchGymError, Result};
use crate::space::{Action, ParamSpace};
use crate::telemetry::{Counter, Recorder};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The outcome a [`FaultPlan`] schedules for one evaluation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Evaluate normally.
    None,
    /// Crash the simulator: fail this attempt and latch until `reset`.
    Latched,
    /// Exceed the step budget ([`ArchGymError::Timeout`]).
    Stall,
    /// Report a corrupted (NaN/Inf) result.
    Corrupt,
    /// Fail this attempt only ([`ArchGymError::EvalFailed`]).
    Transient,
}

/// A seeded, fully deterministic fault schedule.
///
/// `decide(action, attempt)` is a pure function — no interior state —
/// so the same seed yields the same injected faults no matter how the
/// evaluations are ordered or parallelized. Rates are independent
/// per-kind probabilities in `[0, 1]`; when several kinds fire on the
/// same attempt the most severe wins (latched > stall > corrupt >
/// transient).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    transient_rate: f64,
    latched_rate: f64,
    corrupt_rate: f64,
    stall_rate: f64,
}

/// The split-mix finalizer: a cheap, well-distributed 64-bit mix.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan with the given seed and all fault rates at zero.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: 0.0,
            latched_rate: 0.0,
            corrupt_rate: 0.0,
            stall_rate: 0.0,
        }
    }

    fn checked(rate: f64, what: &str) -> f64 {
        assert!(
            (0.0..=1.0).contains(&rate),
            "{what} rate {rate} outside [0, 1]"
        );
        rate
    }

    /// Set the transient failure rate, builder-style.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn transient(mut self, rate: f64) -> Self {
        self.transient_rate = Self::checked(rate, "transient");
        self
    }

    /// Set the latched-crash rate, builder-style.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn latched(mut self, rate: f64) -> Self {
        self.latched_rate = Self::checked(rate, "latched");
        self
    }

    /// Set the corrupted-result rate, builder-style.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn corrupt(mut self, rate: f64) -> Self {
        self.corrupt_rate = Self::checked(rate, "corrupt");
        self
    }

    /// Set the stall (timeout) rate, builder-style.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn stall(mut self, rate: f64) -> Self {
        self.stall_rate = Self::checked(rate, "stall");
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether every fault rate is zero (the wrapper is a passthrough).
    pub fn is_quiet(&self) -> bool {
        self.transient_rate == 0.0
            && self.latched_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.stall_rate == 0.0
    }

    /// A uniform roll in `[0, 1)`, pure in `(seed, tag, action, attempt)`.
    fn roll(&self, tag: u64, action: &Action, attempt: u32) -> f64 {
        let mut h = mix(self.seed ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        for &index in action.iter() {
            h = mix(h ^ (index as u64).wrapping_add(0x2545_f491_4f6c_dd1d));
        }
        h = mix(h ^ u64::from(attempt));
        // 53 high bits → an exactly representable f64 in [0, 1).
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// What happens on the `attempt`-th evaluation of `action`
    /// (attempts are numbered from zero per settle episode).
    pub fn decide(&self, action: &Action, attempt: u32) -> FaultKind {
        // Independent per-kind rolls; most severe kind wins.
        if self.roll(1, action, attempt) < self.latched_rate {
            FaultKind::Latched
        } else if self.roll(2, action, attempt) < self.stall_rate {
            FaultKind::Stall
        } else if self.roll(3, action, attempt) < self.corrupt_rate {
            FaultKind::Corrupt
        } else if self.roll(4, action, attempt) < self.transient_rate {
            FaultKind::Transient
        } else {
            FaultKind::None
        }
    }
}

/// Counter snapshot of the faults a [`FaultyEnv`] has injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Transient failures injected.
    pub transient: u64,
    /// Latched crashes injected.
    pub latched: u64,
    /// Corrupted (NaN/Inf) results injected.
    pub corrupt: u64,
    /// Stalls (timeouts) injected.
    pub stall: u64,
    /// Evaluations rejected because the crash latch was set — knock-on
    /// [`ArchGymError::EnvCrashed`] rejections, not scheduled faults.
    pub crashed_rejections: u64,
}

impl FaultStats {
    /// Every failed outcome the wrapper has produced, scheduled or
    /// knock-on. Matches the search loop's `eval_failures` counter when
    /// this wrapper is the only failure source.
    pub fn total(&self) -> u64 {
        self.transient + self.latched + self.corrupt + self.stall + self.crashed_rejections
    }
}

#[derive(Debug, Default)]
struct StatsCells {
    transient: AtomicU64,
    latched: AtomicU64,
    corrupt: AtomicU64,
    stall: AtomicU64,
    crashed_rejections: AtomicU64,
}

/// An [`Environment`] wrapper that injects the faults a [`FaultPlan`]
/// schedules.
///
/// Cloned replicas (an [`EnvPool`](crate::pool::EnvPool) fan-out) share
/// the attempt counters, the crash latch, and the stats through `Arc`s,
/// so a pooled faulty run sees exactly one coherent fault state.
///
/// * [`Environment::try_step`] surfaces scheduled faults as errors (or
///   corrupted `Ok` results) — the path the retry machinery drives.
/// * [`Environment::step`] stays infallible: a failed attempt degrades
///   immediately to an infeasible penalty result (single attempt, no
///   retry) so the wrapper composes with legacy call sites.
/// * [`Environment::reset`] clears the crash latch (and forwards to the
///   inner environment) — the recovery step a latched crash demands.
///
/// Attempt counters are per-action, incremented on each genuine
/// evaluation, and cleared on success, so every settle episode of an
/// action replays the same fault prefix from attempt zero. Knock-on
/// `EnvCrashed` rejections consume no attempt — they are symptoms of
/// the latch, not evaluations — which keeps settled outcomes identical
/// across worker counts and across interrupt/resume boundaries.
#[derive(Debug, Clone)]
pub struct FaultyEnv<E> {
    inner: E,
    plan: FaultPlan,
    penalty: f64,
    attempts: Arc<Mutex<HashMap<Vec<usize>, u32>>>,
    latch: Arc<AtomicBool>,
    stats: Arc<StatsCells>,
    telemetry: Recorder,
}

impl<E: Environment> FaultyEnv<E> {
    /// Wrap `inner`, injecting faults per `plan`.
    pub fn new(inner: E, plan: FaultPlan) -> Self {
        FaultyEnv {
            inner,
            plan,
            penalty: -1.0,
            attempts: Arc::new(Mutex::new(HashMap::new())),
            latch: Arc::new(AtomicBool::new(false)),
            stats: Arc::new(StatsCells::default()),
            telemetry: Recorder::default(),
        }
    }

    /// Override the penalty reward the infallible [`Environment::step`]
    /// path reports for a failed attempt, builder-style.
    pub fn penalty(mut self, penalty: f64) -> Self {
        self.penalty = penalty;
        self
    }

    /// The wrapped environment.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The fault schedule.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether the crash latch is currently set.
    pub fn is_crashed(&self) -> bool {
        self.latch.load(Ordering::Relaxed)
    }

    /// Snapshot the injected-fault counters (shared across clones).
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            transient: self.stats.transient.load(Ordering::Relaxed),
            latched: self.stats.latched.load(Ordering::Relaxed),
            corrupt: self.stats.corrupt.load(Ordering::Relaxed),
            stall: self.stats.stall.load(Ordering::Relaxed),
            crashed_rejections: self.stats.crashed_rejections.load(Ordering::Relaxed),
        }
    }

    /// Unwrap, discarding the fault machinery.
    pub fn into_inner(self) -> E {
        self.inner
    }

    /// Claim the next attempt number for `action`.
    fn next_attempt(&self, action: &Action) -> u32 {
        let mut attempts = self.attempts.lock().expect("fault attempt map poisoned");
        let slot = attempts.entry(action.as_slice().to_vec()).or_insert(0);
        let attempt = *slot;
        *slot += 1;
        attempt
    }

    /// Forget `action`'s attempt counter (evaluation succeeded).
    fn clear_attempts(&self, action: &Action) {
        self.attempts
            .lock()
            .expect("fault attempt map poisoned")
            .remove(action.as_slice());
    }
}

impl<E: Environment> Environment for FaultyEnv<E> {
    /// Reports the inner environment's name so datasets and journals
    /// are indistinguishable from fault-free runs.
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn space(&self) -> &ParamSpace {
        self.inner.space()
    }
    fn observation_labels(&self) -> Vec<String> {
        self.inner.observation_labels()
    }
    fn reset(&mut self) -> Observation {
        self.latch.store(false, Ordering::Relaxed);
        self.inner.reset()
    }
    fn step(&mut self, action: &Action) -> StepResult {
        // Infallible path: one attempt, failures degrade immediately.
        let width = self.inner.observation_labels().len();
        match self.try_step(action) {
            Ok(result) if result.reward.is_finite() => result,
            Ok(_) | Err(_) => {
                StepResult::infeasible(Observation::new(vec![0.0; width]), self.penalty)
                    .with_info("eval_degraded", 1.0)
            }
        }
    }
    fn try_step(&mut self, action: &Action) -> Result<StepResult> {
        if self.plan.is_quiet() {
            return self.inner.try_step(action);
        }
        if self.latch.load(Ordering::Relaxed) {
            self.stats
                .crashed_rejections
                .fetch_add(1, Ordering::Relaxed);
            self.telemetry.incr(Counter::FaultCrashedRejections);
            return Err(ArchGymError::EnvCrashed(
                "simulator is down (latched crash); reset required".into(),
            ));
        }
        let attempt = self.next_attempt(action);
        match self.plan.decide(action, attempt) {
            FaultKind::None => {
                let result = self.inner.try_step(action)?;
                self.clear_attempts(action);
                Ok(result)
            }
            FaultKind::Transient => {
                self.stats.transient.fetch_add(1, Ordering::Relaxed);
                self.telemetry.incr(Counter::FaultTransient);
                Err(ArchGymError::EvalFailed(format!(
                    "injected transient fault (attempt {attempt})"
                )))
            }
            FaultKind::Stall => {
                self.stats.stall.fetch_add(1, Ordering::Relaxed);
                self.telemetry.incr(Counter::FaultStall);
                Err(ArchGymError::Timeout(format!(
                    "injected stall: step budget exceeded (attempt {attempt})"
                )))
            }
            FaultKind::Corrupt => {
                self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
                self.telemetry.incr(Counter::FaultCorrupt);
                let mut result = self.inner.try_step(action)?;
                result.reward = f64::NAN;
                if let Some(first) = result.observation.as_slice().first().copied() {
                    let mut values = result.observation.into_inner();
                    values[0] = if first < 0.0 {
                        f64::NEG_INFINITY
                    } else {
                        f64::INFINITY
                    };
                    result.observation = Observation::new(values);
                }
                Ok(result)
            }
            FaultKind::Latched => {
                self.stats.latched.fetch_add(1, Ordering::Relaxed);
                self.telemetry.incr(Counter::FaultLatched);
                self.latch.store(true, Ordering::Relaxed);
                Err(ArchGymError::EvalFailed(format!(
                    "injected latched crash (attempt {attempt}); reset required"
                )))
            }
        }
    }
    fn set_telemetry(&mut self, recorder: &Recorder) {
        self.telemetry = recorder.clone();
        self.inner.set_telemetry(recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::PeakEnv;

    fn action(i: usize) -> Action {
        Action::new(vec![i])
    }

    #[test]
    fn quiet_plan_is_a_passthrough() {
        let mut plain = PeakEnv::new(&[8], vec![3]);
        let mut faulty = FaultyEnv::new(PeakEnv::new(&[8], vec![3]), FaultPlan::new(1));
        for i in 0..8 {
            assert_eq!(faulty.try_step(&action(i)).unwrap(), plain.step(&action(i)));
        }
        assert_eq!(faulty.stats(), FaultStats::default());
        assert_eq!(faulty.name(), "peak");
        assert!(!faulty.is_crashed());
    }

    #[test]
    fn decide_is_pure_and_seed_sensitive() {
        let plan = FaultPlan::new(42)
            .transient(0.3)
            .latched(0.05)
            .corrupt(0.1)
            .stall(0.1);
        let other = FaultPlan::new(43)
            .transient(0.3)
            .latched(0.05)
            .corrupt(0.1)
            .stall(0.1);
        let mut diverged = false;
        for i in 0..64 {
            for attempt in 0..4 {
                let a = action(i);
                assert_eq!(plan.decide(&a, attempt), plan.decide(&a, attempt));
                diverged |= plan.decide(&a, attempt) != other.decide(&a, attempt);
            }
        }
        assert!(diverged, "seeds 42 and 43 scheduled identical faults");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = FaultPlan::new(9).transient(0.25);
        let fails = (0..4000)
            .filter(|&i| plan.decide(&action(i), 0) == FaultKind::Transient)
            .count();
        // 4000 rolls at p=0.25: expect ~1000, allow wide slack.
        assert!((800..1200).contains(&fails), "{fails}");
    }

    #[test]
    fn transient_faults_clear_on_retry_and_counters_reset_on_success() {
        // Rate 1.0 at attempt 0 would never clear; instead probe for an
        // action whose attempt 0 faults but attempt 1 does not.
        let plan = FaultPlan::new(5).transient(0.5);
        let probe = (0..64)
            .find(|&i| {
                plan.decide(&action(i), 0) == FaultKind::Transient
                    && plan.decide(&action(i), 1) == FaultKind::None
            })
            .expect("some action faults once then clears");
        let mut env = FaultyEnv::new(PeakEnv::new(&[64], vec![3]), plan);
        assert!(env.try_step(&action(probe)).is_err());
        let ok = env.try_step(&action(probe)).unwrap();
        assert!(ok.reward.is_finite());
        // Counter cleared on success: the next visit replays attempt 0.
        assert!(env.try_step(&action(probe)).is_err());
        assert_eq!(env.stats().transient, 2);
    }

    #[test]
    fn latched_crash_rejects_until_reset() {
        let plan = FaultPlan::new(0).latched(1.0);
        let mut env = FaultyEnv::new(PeakEnv::new(&[8], vec![3]), plan);
        assert!(matches!(
            env.try_step(&action(0)),
            Err(ArchGymError::EvalFailed(_))
        ));
        assert!(env.is_crashed());
        // Any action is now rejected without consuming an attempt.
        assert!(matches!(
            env.try_step(&action(5)),
            Err(ArchGymError::EnvCrashed(_))
        ));
        env.reset();
        assert!(!env.is_crashed());
        // Action 5's first *genuine* attempt is still attempt 0.
        assert!(matches!(
            env.try_step(&action(5)),
            Err(ArchGymError::EvalFailed(_))
        ));
        let stats = env.stats();
        assert_eq!(stats.latched, 2);
        assert_eq!(stats.crashed_rejections, 1);
        assert_eq!(stats.total(), 3);
    }

    #[test]
    fn corrupt_results_are_non_finite_but_ok() {
        let plan = FaultPlan::new(3).corrupt(1.0);
        let mut env = FaultyEnv::new(PeakEnv::new(&[8], vec![3]), plan);
        let result = env.try_step(&action(3)).unwrap();
        assert!(result.reward.is_nan());
        assert!(result.observation.get(0).is_infinite());
        assert_eq!(env.stats().corrupt, 1);
    }

    #[test]
    fn stalls_surface_as_timeouts() {
        let plan = FaultPlan::new(3).stall(1.0);
        let mut env = FaultyEnv::new(PeakEnv::new(&[8], vec![3]), plan);
        assert!(matches!(
            env.try_step(&action(1)),
            Err(ArchGymError::Timeout(_))
        ));
        assert_eq!(env.stats().stall, 1);
    }

    #[test]
    fn infallible_step_degrades_to_penalty() {
        let plan = FaultPlan::new(3).transient(1.0);
        let mut env = FaultyEnv::new(PeakEnv::new(&[8], vec![3]), plan).penalty(-7.0);
        let result = env.step(&action(2));
        assert!(!result.feasible);
        assert_eq!(result.reward, -7.0);
        assert_eq!(result.info["eval_degraded"], 1.0);
        assert_eq!(
            result.observation.len(),
            env.inner().observation_labels().len()
        );
    }

    #[test]
    fn clones_share_latch_attempts_and_stats() {
        let plan = FaultPlan::new(0).latched(1.0);
        let mut env = FaultyEnv::new(PeakEnv::new(&[8], vec![3]), plan);
        let mut replica = env.clone();
        assert!(env.try_step(&action(0)).is_err());
        assert!(replica.is_crashed());
        assert!(matches!(
            replica.try_step(&action(1)),
            Err(ArchGymError::EnvCrashed(_))
        ));
        replica.reset();
        assert!(!env.is_crashed());
        assert_eq!(env.stats(), replica.stats());
        assert_eq!(env.stats().crashed_rejections, 1);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rates_outside_unit_interval_are_rejected() {
        let _ = FaultPlan::new(0).transient(1.5);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Same seed ⇒ same schedule, independent of evaluation
            /// order (purity is what makes the schedule `--jobs`- and
            /// resume-invariant).
            #[test]
            fn prop_schedule_is_deterministic(
                seed in any::<u64>(),
                indices in proptest::collection::vec(0usize..1000, 1..6),
                attempt in 0u32..8,
            ) {
                let plan = FaultPlan::new(seed)
                    .transient(0.2).latched(0.05).corrupt(0.1).stall(0.1);
                let a = Action::new(indices);
                let first = plan.decide(&a, attempt);
                // Interleave decisions about other actions: purity means
                // they cannot perturb the original decision.
                for other in 0..16usize {
                    let _ = plan.decide(&Action::new(vec![other]), attempt);
                }
                prop_assert_eq!(plan.decide(&a, attempt), first);
            }

            /// Rolls stay inside [0, 1) for any seed/action/attempt.
            #[test]
            fn prop_rolls_are_unit_interval(
                seed in any::<u64>(),
                index in any::<usize>(),
                attempt in any::<u32>(),
            ) {
                let plan = FaultPlan::new(seed).transient(1.0);
                let r = plan.roll(4, &Action::new(vec![index]), attempt);
                prop_assert!((0.0..1.0).contains(&r));
            }
        }
    }
}
