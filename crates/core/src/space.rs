//! Finite, index-encoded architecture parameter spaces.
//!
//! Every ArchGym design space (the paper's Fig. 3) is a Cartesian product of
//! finite one-dimensional domains: linear integer ranges, power-of-two
//! ranges, and categorical choices. Each domain is *index-encoded*: its
//! values are enumerated `0..cardinality`, and an [`Action`] is simply a
//! vector with one index per dimension. This uniform encoding is what lets
//! every agent — RL, BO, GA, ACO, random walker — operate on every
//! environment without bespoke glue.

use crate::codec::Json;
use crate::error::{ArchGymError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One finite parameter domain.
///
/// The paper specifies numerical parameters as `(min, max, step)` tuples and
/// exponential parameters as `(min, max, 2^x)`; categorical parameters are
/// explicit value lists. All three appear in Fig. 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamDomain {
    /// Linear range `{min, min+step, ..., <= max}`.
    Int { min: i64, max: i64, step: i64 },
    /// Power-of-two range `{min, 2*min, 4*min, ..., <= max}`; `min` must be a
    /// power of two itself.
    Pow2 { min: u64, max: u64 },
    /// An explicit, ordered set of named choices.
    Categorical { choices: Vec<String> },
}

impl ParamDomain {
    /// Number of distinct values in the domain.
    pub fn cardinality(&self) -> usize {
        match self {
            ParamDomain::Int { min, max, step } => ((max - min) / step + 1) as usize,
            ParamDomain::Pow2 { min, max } => {
                let mut count = 0usize;
                let mut v = *min;
                while v <= *max {
                    count += 1;
                    match v.checked_mul(2) {
                        Some(next) => v = next,
                        None => break,
                    }
                }
                count
            }
            ParamDomain::Categorical { choices } => choices.len(),
        }
    }

    /// Decode an index into the concrete value it denotes.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.cardinality()`; use [`ParamSpace::validate`]
    /// to check whole actions first.
    pub fn value(&self, index: usize) -> ParamValue {
        debug_assert!(
            index < self.cardinality(),
            "index {index} out of range for domain {self:?}"
        );
        match self {
            ParamDomain::Int { min, step, .. } => ParamValue::Int(min + step * index as i64),
            ParamDomain::Pow2 { min, .. } => ParamValue::Int((min << index) as i64),
            ParamDomain::Categorical { choices } => ParamValue::Cat(choices[index].clone()),
        }
    }

    /// Find the index of a concrete value, if it belongs to the domain.
    pub fn index_of(&self, value: &ParamValue) -> Option<usize> {
        match (self, value) {
            (ParamDomain::Int { min, max, step }, ParamValue::Int(v)) => {
                if v < min || v > max || (v - min) % step != 0 {
                    None
                } else {
                    Some(((v - min) / step) as usize)
                }
            }
            (ParamDomain::Pow2 { min, max }, ParamValue::Int(v)) => {
                let v = u64::try_from(*v).ok()?;
                if v < *min || v > *max || !v.is_power_of_two() || !min.is_power_of_two() {
                    return None;
                }
                Some((v.trailing_zeros() - min.trailing_zeros()) as usize)
            }
            (ParamDomain::Categorical { choices }, ParamValue::Cat(name)) => {
                choices.iter().position(|c| c == name)
            }
            _ => None,
        }
    }

    /// Encode as an offline-safe JSON value (see [`crate::codec`]).
    pub fn to_json(&self) -> Json {
        match self {
            ParamDomain::Int { min, max, step } => Json::Obj(vec![
                ("kind".into(), Json::Str("int".into())),
                ("min".into(), Json::num_i64(*min)),
                ("max".into(), Json::num_i64(*max)),
                ("step".into(), Json::num_i64(*step)),
            ]),
            ParamDomain::Pow2 { min, max } => Json::Obj(vec![
                ("kind".into(), Json::Str("pow2".into())),
                ("min".into(), Json::num_u64(*min)),
                ("max".into(), Json::num_u64(*max)),
            ]),
            ParamDomain::Categorical { choices } => Json::Obj(vec![
                ("kind".into(), Json::Str("categorical".into())),
                (
                    "choices".into(),
                    Json::Arr(choices.iter().map(|c| Json::Str(c.clone())).collect()),
                ),
            ]),
        }
    }

    /// Decode a value produced by [`ParamDomain::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on schema mismatches.
    pub fn from_json(value: &Json) -> std::result::Result<Self, String> {
        match value.field("kind")?.as_str()? {
            "int" => Ok(ParamDomain::Int {
                min: value.field("min")?.as_i64()?,
                max: value.field("max")?.as_i64()?,
                step: value.field("step")?.as_i64()?,
            }),
            "pow2" => Ok(ParamDomain::Pow2 {
                min: value.field("min")?.as_u64()?,
                max: value.field("max")?.as_u64()?,
            }),
            "categorical" => Ok(ParamDomain::Categorical {
                choices: value
                    .field("choices")?
                    .as_arr()?
                    .iter()
                    .map(|c| c.as_str().map(str::to_owned))
                    .collect::<std::result::Result<Vec<_>, String>>()?,
            }),
            other => Err(format!("unknown domain kind `{other}`")),
        }
    }

    fn validate(&self, name: &str) -> Result<()> {
        match self {
            ParamDomain::Int { min, max, step } => {
                if step <= &0 {
                    return Err(ArchGymError::InvalidSpace(format!(
                        "`{name}`: step {step} must be positive"
                    )));
                }
                if min > max {
                    return Err(ArchGymError::InvalidSpace(format!(
                        "`{name}`: min {min} > max {max}"
                    )));
                }
                Ok(())
            }
            ParamDomain::Pow2 { min, max } => {
                if !min.is_power_of_two() {
                    return Err(ArchGymError::InvalidSpace(format!(
                        "`{name}`: pow2 min {min} is not a power of two"
                    )));
                }
                if min > max {
                    return Err(ArchGymError::InvalidSpace(format!(
                        "`{name}`: min {min} > max {max}"
                    )));
                }
                Ok(())
            }
            ParamDomain::Categorical { choices } => {
                if choices.is_empty() {
                    return Err(ArchGymError::InvalidSpace(format!(
                        "`{name}`: empty categorical domain"
                    )));
                }
                Ok(())
            }
        }
    }
}

/// A concrete, decoded parameter value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// A numeric value (linear or power-of-two domains).
    Int(i64),
    /// A categorical choice by name.
    Cat(String),
}

impl ParamValue {
    /// The numeric payload, if this is an [`ParamValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ParamValue::Int(v) => Some(*v),
            ParamValue::Cat(_) => None,
        }
    }

    /// The categorical payload, if this is a [`ParamValue::Cat`].
    pub fn as_cat(&self) -> Option<&str> {
        match self {
            ParamValue::Cat(name) => Some(name),
            ParamValue::Int(_) => None,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Cat(name) => write!(f, "{name}"),
        }
    }
}

/// A named dimension of a [`ParamSpace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamDef {
    name: String,
    domain: ParamDomain,
}

impl ParamDef {
    /// The dimension's name, e.g. `"PagePolicy"` or `"NumPEs"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dimension's domain.
    pub fn domain(&self) -> &ParamDomain {
        &self.domain
    }
}

/// An index-encoded point in a [`ParamSpace`]: one index per dimension.
///
/// Agents emit actions; environments decode them via
/// [`ParamSpace::decode`] into typed simulator configurations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Action(Vec<usize>);

impl Action {
    /// Wrap a vector of per-dimension indices.
    pub fn new(indices: Vec<usize>) -> Self {
        Action(indices)
    }

    /// The index chosen for dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of bounds.
    pub fn index(&self, dim: usize) -> usize {
        self.0[dim]
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the action has zero dimensions.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate over the per-dimension indices.
    pub fn iter(&self) -> std::slice::Iter<'_, usize> {
        self.0.iter()
    }

    /// View the indices as a slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.0
    }

    /// Mutable access to the indices (used by mutation operators).
    pub fn as_mut_slice(&mut self) -> &mut [usize] {
        &mut self.0
    }

    /// Consume the action, returning the underlying index vector.
    pub fn into_inner(self) -> Vec<usize> {
        self.0
    }
}

impl From<Vec<usize>> for Action {
    fn from(indices: Vec<usize>) -> Self {
        Action(indices)
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// A finite Cartesian design space: an ordered list of named domains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpace {
    params: Vec<ParamDef>,
}

impl ParamSpace {
    /// Start building a space; see [`SpaceBuilder`].
    pub fn builder() -> SpaceBuilder {
        SpaceBuilder::new()
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the space has zero dimensions.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The dimension definitions in order.
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// Look up a dimension index by name.
    pub fn dim_of(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// Per-dimension cardinalities, in order.
    pub fn cardinalities(&self) -> Vec<usize> {
        self.params.iter().map(|p| p.domain.cardinality()).collect()
    }

    /// Total number of points in the space, as `f64` (spaces like the
    /// MAESTRO mapping space exceed `u64`).
    pub fn cardinality(&self) -> f64 {
        self.params
            .iter()
            .map(|p| p.domain.cardinality() as f64)
            .product()
    }

    /// Encode as an offline-safe JSON value (see [`crate::codec`]).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![(
            "params".into(),
            Json::Arr(
                self.params
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(p.name.clone())),
                            ("domain".into(), p.domain.to_json()),
                        ])
                    })
                    .collect(),
            ),
        )])
    }

    /// Decode a value produced by [`ParamSpace::to_json`], re-validating
    /// every domain.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on schema mismatches or invalid
    /// domains.
    pub fn from_json(value: &Json) -> std::result::Result<Self, String> {
        let mut params = Vec::new();
        for item in value.field("params")?.as_arr()? {
            let name = item.field("name")?.as_str()?.to_owned();
            let domain = ParamDomain::from_json(item.field("domain")?)?;
            domain.validate(&name).map_err(|e| e.to_string())?;
            params.push(ParamDef { name, domain });
        }
        Ok(ParamSpace { params })
    }

    /// Check that an action matches this space.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::InvalidAction`] when the dimensionality
    /// differs or any index is out of range.
    pub fn validate(&self, action: &Action) -> Result<()> {
        if action.len() != self.params.len() {
            return Err(ArchGymError::InvalidAction(format!(
                "expected {} dimensions, got {}",
                self.params.len(),
                action.len()
            )));
        }
        for (dim, (&idx, param)) in action.iter().zip(&self.params).enumerate() {
            let card = param.domain.cardinality();
            if idx >= card {
                return Err(ArchGymError::InvalidAction(format!(
                    "dimension {dim} (`{}`): index {idx} >= cardinality {card}",
                    param.name
                )));
            }
        }
        Ok(())
    }

    /// Decode an action into named, concrete parameter values.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::InvalidAction`] when the action does not
    /// validate against this space.
    pub fn decode(&self, action: &Action) -> Result<Vec<(String, ParamValue)>> {
        self.validate(action)?;
        Ok(self
            .params
            .iter()
            .zip(action.iter())
            .map(|(p, &idx)| (p.name.clone(), p.domain.value(idx)))
            .collect())
    }

    /// Decode a single named dimension of an action.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a dimension of this space or the action is
    /// shorter than the dimension index (use [`ParamSpace::validate`] first).
    pub fn decode_one(&self, action: &Action, name: &str) -> ParamValue {
        let dim = self
            .dim_of(name)
            .unwrap_or_else(|| panic!("no dimension named `{name}`"));
        self.params[dim].domain.value(action.index(dim))
    }

    /// Encode named concrete values back into an action.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::InvalidAction`] if any name is unknown, any
    /// value lies outside its domain, or any dimension is missing.
    pub fn encode(&self, values: &[(String, ParamValue)]) -> Result<Action> {
        let mut indices = vec![usize::MAX; self.params.len()];
        for (name, value) in values {
            let dim = self.dim_of(name).ok_or_else(|| {
                ArchGymError::InvalidAction(format!("unknown dimension `{name}`"))
            })?;
            indices[dim] = self.params[dim].domain.index_of(value).ok_or_else(|| {
                ArchGymError::InvalidAction(format!("value {value} not in domain of `{name}`"))
            })?;
        }
        if let Some(dim) = indices.iter().position(|&i| i == usize::MAX) {
            return Err(ArchGymError::InvalidAction(format!(
                "missing dimension `{}`",
                self.params[dim].name
            )));
        }
        Ok(Action(indices))
    }

    /// Draw a uniformly random action.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Action {
        Action(
            self.params
                .iter()
                .map(|p| rng.gen_range(0..p.domain.cardinality()))
                .collect(),
        )
    }

    /// Map an action to the normalized unit hypercube `[0, 1]^d`.
    ///
    /// Dimensions with a single value map to `0.5`. This is the feature
    /// encoding used by the Bayesian-optimization surrogate and the proxy
    /// cost models.
    pub fn normalize(&self, action: &Action) -> Vec<f64> {
        self.params
            .iter()
            .zip(action.iter())
            .map(|(p, &idx)| {
                let card = p.domain.cardinality();
                if card <= 1 {
                    0.5
                } else {
                    idx as f64 / (card - 1) as f64
                }
            })
            .collect()
    }

    /// Inverse of [`ParamSpace::normalize`]: snap a unit-hypercube point to
    /// the nearest valid action (coordinates are clamped to `[0, 1]`).
    pub fn denormalize(&self, point: &[f64]) -> Action {
        Action(
            self.params
                .iter()
                .zip(point)
                .map(|(p, &x)| {
                    let card = p.domain.cardinality();
                    let x = x.clamp(0.0, 1.0);
                    ((x * (card - 1) as f64).round() as usize).min(card - 1)
                })
                .collect(),
        )
    }

    /// Enumerate every action in the space, in lexicographic order.
    ///
    /// Intended for exhaustive sweeps of small spaces; iterating a space
    /// with astronomically many points is the caller's own misfortune.
    pub fn iter(&self) -> SpaceIter<'_> {
        SpaceIter {
            space: self,
            next: Some(vec![0; self.params.len()]),
        }
    }
}

/// Iterator over all actions of a [`ParamSpace`], lexicographic order.
#[derive(Debug)]
pub struct SpaceIter<'a> {
    space: &'a ParamSpace,
    next: Option<Vec<usize>>,
}

impl Iterator for SpaceIter<'_> {
    type Item = Action;

    fn next(&mut self) -> Option<Action> {
        let current = self.next.take()?;
        let mut succ = current.clone();
        let cards = self.space.cardinalities();
        let mut dim = succ.len();
        loop {
            if dim == 0 {
                self.next = None;
                break;
            }
            dim -= 1;
            succ[dim] += 1;
            if succ[dim] < cards[dim] {
                self.next = Some(succ);
                break;
            }
            succ[dim] = 0;
        }
        if self.space.is_empty() {
            self.next = None;
        }
        Some(Action(current))
    }
}

/// Builder for [`ParamSpace`] (C-BUILDER).
///
/// ```
/// use archgym_core::space::ParamSpace;
///
/// let space = ParamSpace::builder()
///     .int("RefreshMaxPostponed", 1, 8, 1)
///     .pow2("MaxActiveTransactions", 1, 128)
///     .categorical("PagePolicy", ["Open", "OpenAdaptive", "Closed", "ClosedAdaptive"])
///     .build()
///     .unwrap();
/// assert_eq!(space.len(), 3);
/// assert_eq!(space.cardinality(), 8.0 * 8.0 * 4.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpaceBuilder {
    params: Vec<ParamDef>,
}

impl SpaceBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        SpaceBuilder { params: Vec::new() }
    }

    /// Add a linear integer dimension `{min, min+step, ..., <= max}`.
    pub fn int(mut self, name: &str, min: i64, max: i64, step: i64) -> Self {
        self.params.push(ParamDef {
            name: name.to_owned(),
            domain: ParamDomain::Int { min, max, step },
        });
        self
    }

    /// Add a power-of-two dimension `{min, 2min, 4min, ..., <= max}`.
    pub fn pow2(mut self, name: &str, min: u64, max: u64) -> Self {
        self.params.push(ParamDef {
            name: name.to_owned(),
            domain: ParamDomain::Pow2 { min, max },
        });
        self
    }

    /// Add a categorical dimension with the given ordered choices.
    pub fn categorical<I, S>(mut self, name: &str, choices: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.params.push(ParamDef {
            name: name.to_owned(),
            domain: ParamDomain::Categorical {
                choices: choices.into_iter().map(Into::into).collect(),
            },
        });
        self
    }

    /// Finish the space.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::InvalidSpace`] for malformed domains or
    /// duplicate dimension names.
    pub fn build(self) -> Result<ParamSpace> {
        for (i, p) in self.params.iter().enumerate() {
            p.domain.validate(&p.name)?;
            if self.params[..i].iter().any(|q| q.name == p.name) {
                return Err(ArchGymError::InvalidSpace(format!(
                    "duplicate dimension name `{}`",
                    p.name
                )));
            }
        }
        Ok(ParamSpace {
            params: self.params,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use proptest::prelude::*;

    fn small_space() -> ParamSpace {
        ParamSpace::builder()
            .int("a", 1, 8, 1)
            .pow2("b", 1, 128)
            .categorical("c", ["x", "y", "z"])
            .build()
            .unwrap()
    }

    #[test]
    fn int_domain_cardinality_and_values() {
        let d = ParamDomain::Int {
            min: 14,
            max: 336,
            step: 14,
        };
        assert_eq!(d.cardinality(), 24);
        assert_eq!(d.value(0), ParamValue::Int(14));
        assert_eq!(d.value(23), ParamValue::Int(336));
    }

    #[test]
    fn pow2_domain_cardinality_and_values() {
        let d = ParamDomain::Pow2 { min: 1, max: 128 };
        assert_eq!(d.cardinality(), 8);
        assert_eq!(d.value(0), ParamValue::Int(1));
        assert_eq!(d.value(7), ParamValue::Int(128));
        let d = ParamDomain::Pow2 {
            min: 1024,
            max: 65536,
        };
        assert_eq!(d.cardinality(), 7);
        assert_eq!(d.value(6), ParamValue::Int(65536));
    }

    #[test]
    fn categorical_domain_roundtrip() {
        let d = ParamDomain::Categorical {
            choices: vec!["Fifo".into(), "FrFcfsGrp".into(), "FrFcfs".into()],
        };
        assert_eq!(d.cardinality(), 3);
        let v = d.value(1);
        assert_eq!(d.index_of(&v), Some(1));
        assert_eq!(d.index_of(&ParamValue::Cat("nope".into())), None);
    }

    #[test]
    fn builder_rejects_bad_domains() {
        assert!(ParamSpace::builder().int("a", 5, 1, 1).build().is_err());
        assert!(ParamSpace::builder().int("a", 1, 5, 0).build().is_err());
        assert!(ParamSpace::builder().pow2("a", 3, 8).build().is_err());
        assert!(ParamSpace::builder()
            .categorical("a", Vec::<String>::new())
            .build()
            .is_err());
        assert!(ParamSpace::builder()
            .int("a", 1, 2, 1)
            .int("a", 1, 2, 1)
            .build()
            .is_err());
    }

    #[test]
    fn validate_rejects_wrong_shape_and_range() {
        let space = small_space();
        assert!(space.validate(&Action::new(vec![0, 0])).is_err());
        assert!(space.validate(&Action::new(vec![8, 0, 0])).is_err());
        assert!(space.validate(&Action::new(vec![0, 0, 3])).is_err());
        assert!(space.validate(&Action::new(vec![7, 7, 2])).is_ok());
    }

    #[test]
    fn decode_and_encode_roundtrip() {
        let space = small_space();
        let action = Action::new(vec![3, 5, 1]);
        let values = space.decode(&action).unwrap();
        assert_eq!(values[0], ("a".into(), ParamValue::Int(4)));
        assert_eq!(values[1], ("b".into(), ParamValue::Int(32)));
        assert_eq!(values[2], ("c".into(), ParamValue::Cat("y".into())));
        let back = space.encode(&values).unwrap();
        assert_eq!(back, action);
    }

    #[test]
    fn encode_detects_missing_dimension() {
        let space = small_space();
        let partial = vec![("a".into(), ParamValue::Int(4))];
        let err = space.encode(&partial).unwrap_err();
        assert!(matches!(err, ArchGymError::InvalidAction(_)));
    }

    #[test]
    fn normalize_denormalize_roundtrip() {
        let space = small_space();
        let action = Action::new(vec![7, 0, 2]);
        let point = space.normalize(&action);
        assert_eq!(point, vec![1.0, 0.0, 1.0]);
        assert_eq!(space.denormalize(&point), action);
    }

    #[test]
    fn iter_enumerates_whole_space_in_order() {
        let space = ParamSpace::builder()
            .int("a", 0, 1, 1)
            .categorical("b", ["p", "q", "r"])
            .build()
            .unwrap();
        let all: Vec<Action> = space.iter().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], Action::new(vec![0, 0]));
        assert_eq!(all[1], Action::new(vec![0, 1]));
        assert_eq!(all[5], Action::new(vec![1, 2]));
    }

    #[test]
    fn sample_is_always_valid_and_deterministic() {
        let space = small_space();
        let mut rng = seeded_rng(11);
        let a = space.sample(&mut rng);
        space.validate(&a).unwrap();
        let mut rng2 = seeded_rng(11);
        assert_eq!(space.sample(&mut rng2), a);
    }

    #[test]
    fn decode_one_by_name() {
        let space = small_space();
        let action = Action::new(vec![2, 3, 0]);
        assert_eq!(space.decode_one(&action, "b"), ParamValue::Int(8));
        assert_eq!(space.decode_one(&action, "c"), ParamValue::Cat("x".into()));
    }

    #[test]
    fn json_roundtrip() {
        let space = small_space();
        let json = space.to_json().encode();
        let back = ParamSpace::from_json(&crate::codec::parse_json(&json).unwrap()).unwrap();
        assert_eq!(space, back);
        // Canonical: re-encoding the decoded space yields identical text.
        assert_eq!(back.to_json().encode(), json);
    }

    proptest! {
        #[test]
        fn prop_int_roundtrip(min in -50i64..50, span in 0i64..40, step in 1i64..7, pick in 0usize..1000) {
            let d = ParamDomain::Int { min, max: min + span, step };
            let idx = pick % d.cardinality();
            let v = d.value(idx);
            prop_assert_eq!(d.index_of(&v), Some(idx));
        }

        #[test]
        fn prop_pow2_roundtrip(exp_min in 0u32..10, extra in 0u32..10, pick in 0usize..1000) {
            let min = 1u64 << exp_min;
            let max = 1u64 << (exp_min + extra);
            let d = ParamDomain::Pow2 { min, max };
            prop_assert_eq!(d.cardinality(), extra as usize + 1);
            let idx = pick % d.cardinality();
            let v = d.value(idx);
            prop_assert_eq!(d.index_of(&v), Some(idx));
        }

        #[test]
        fn prop_sample_validates(seed in 0u64..1000) {
            let space = small_space();
            let mut rng = seeded_rng(seed);
            let a = space.sample(&mut rng);
            prop_assert!(space.validate(&a).is_ok());
        }

        #[test]
        fn prop_normalize_in_unit_cube(seed in 0u64..1000) {
            let space = small_space();
            let mut rng = seeded_rng(seed);
            let a = space.sample(&mut rng);
            let p = space.normalize(&a);
            prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
            prop_assert_eq!(space.denormalize(&p), a);
        }
    }
}
