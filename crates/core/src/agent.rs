//! The ArchGym agent trait and hyperparameter plumbing.
//!
//! An agent is "an encapsulation of the machine learning algorithm used for
//! search": a guiding **policy** plus **hyperparameters** (Section 3.2). All
//! agents answer the same three questions (the paper's Table 2):
//!
//! * **Q1** — how is a parameter (action) selected? → [`Agent::propose`].
//! * **Q2** — how is feedback used to refine the policy? → [`Agent::observe`].
//! * **Q3** — how is exploration balanced against exploitation? → the
//!   agent's hyperparameters, exposed at construction via [`HyperMap`].

use crate::env::StepResult;
use crate::error::{ArchGymError, Result};
use crate::space::{Action, ParamSpace};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A search agent, generic over any index-encoded [`ParamSpace`].
///
/// The driver loop alternates [`Agent::propose`] → environment evaluation →
/// [`Agent::observe`], exactly the information exchange of Section 4.
/// Population-based agents (GA, ACO) propose whole generations at once;
/// sequential agents (BO, RL, random walker) propose smaller batches.
pub trait Agent {
    /// A short, stable identifier, e.g. `"ga"`, `"bo"`, `"rl"`.
    fn name(&self) -> &str;

    /// Propose up to `max_batch` candidate designs according to the policy
    /// (Q1). Returning fewer than `max_batch` actions is allowed; returning
    /// an empty vector signals that the agent has converged and the driver
    /// should stop early.
    fn propose(&mut self, max_batch: usize) -> Vec<Action>;

    /// Digest the evaluated batch and refine the policy (Q2). `results` is
    /// parallel to the batch returned by the preceding `propose` call.
    fn observe(&mut self, results: &[(Action, StepResult)]);

    /// The agent's natural batch size, if it has one — a GA's population,
    /// an ACO's ant cohort. The search loop uses this when
    /// [`RunConfig::batch`](crate::search::RunConfig) is set to `0`
    /// (auto), so population agents evaluate whole generations at once
    /// (and an [`EnvPool`](crate::pool::EnvPool) can fan them out).
    /// Sequential agents return `None` and get the loop's default.
    fn batch_hint(&self) -> Option<usize> {
        None
    }
}

impl<A: Agent + ?Sized> Agent for Box<A> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn propose(&mut self, max_batch: usize) -> Vec<Action> {
        (**self).propose(max_batch)
    }
    fn observe(&mut self, results: &[(Action, StepResult)]) {
        (**self).observe(results)
    }
    fn batch_hint(&self) -> Option<usize> {
        (**self).batch_hint()
    }
}

/// A single hyperparameter value in a sweepable configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HyperValue {
    /// A real-valued hyperparameter (learning rate, mutation probability...).
    Float(f64),
    /// An integral hyperparameter (population size, number of ants...).
    Int(i64),
    /// A categorical hyperparameter (acquisition function, kernel...).
    Text(String),
    /// A boolean switch (use aging operator, ...).
    Bool(bool),
}

impl fmt::Display for HyperValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HyperValue::Float(v) => write!(f, "{v}"),
            HyperValue::Int(v) => write!(f, "{v}"),
            HyperValue::Text(v) => write!(f, "{v}"),
            HyperValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<f64> for HyperValue {
    fn from(v: f64) -> Self {
        HyperValue::Float(v)
    }
}
impl From<i64> for HyperValue {
    fn from(v: i64) -> Self {
        HyperValue::Int(v)
    }
}
impl From<&str> for HyperValue {
    fn from(v: &str) -> Self {
        HyperValue::Text(v.to_owned())
    }
}
impl From<bool> for HyperValue {
    fn from(v: bool) -> Self {
        HyperValue::Bool(v)
    }
}

/// A string-keyed hyperparameter assignment, the unit the "hyperparameter
/// lottery" sweeps over. Typed accessors fail loudly on missing keys or
/// type mismatches so a sweep never silently falls back to defaults.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HyperMap {
    values: BTreeMap<String, HyperValue>,
}

impl HyperMap {
    /// An empty assignment.
    pub fn new() -> Self {
        HyperMap::default()
    }

    /// Insert a value, builder-style.
    pub fn with(mut self, key: &str, value: impl Into<HyperValue>) -> Self {
        self.values.insert(key.to_owned(), value.into());
        self
    }

    /// Insert a value in place.
    pub fn set(&mut self, key: &str, value: impl Into<HyperValue>) {
        self.values.insert(key.to_owned(), value.into());
    }

    /// Whether a key is present.
    pub fn contains(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    /// Raw access to a value.
    pub fn get(&self, key: &str) -> Option<&HyperValue> {
        self.values.get(key)
    }

    /// Fetch a float (accepting an int written where a float is expected).
    ///
    /// # Errors
    ///
    /// [`ArchGymError::InvalidHyper`] if the key is absent or non-numeric.
    pub fn float(&self, key: &str) -> Result<f64> {
        match self.values.get(key) {
            Some(HyperValue::Float(v)) => Ok(*v),
            Some(HyperValue::Int(v)) => Ok(*v as f64),
            Some(other) => Err(ArchGymError::InvalidHyper(format!(
                "`{key}` is {other}, expected a float"
            ))),
            None => Err(ArchGymError::InvalidHyper(format!("missing `{key}`"))),
        }
    }

    /// Fetch an integer.
    ///
    /// # Errors
    ///
    /// [`ArchGymError::InvalidHyper`] if the key is absent or not an int.
    pub fn int(&self, key: &str) -> Result<i64> {
        match self.values.get(key) {
            Some(HyperValue::Int(v)) => Ok(*v),
            Some(other) => Err(ArchGymError::InvalidHyper(format!(
                "`{key}` is {other}, expected an int"
            ))),
            None => Err(ArchGymError::InvalidHyper(format!("missing `{key}`"))),
        }
    }

    /// Fetch a text value.
    ///
    /// # Errors
    ///
    /// [`ArchGymError::InvalidHyper`] if the key is absent or not text.
    pub fn text(&self, key: &str) -> Result<&str> {
        match self.values.get(key) {
            Some(HyperValue::Text(v)) => Ok(v),
            Some(other) => Err(ArchGymError::InvalidHyper(format!(
                "`{key}` is {other}, expected text"
            ))),
            None => Err(ArchGymError::InvalidHyper(format!("missing `{key}`"))),
        }
    }

    /// Fetch a boolean.
    ///
    /// # Errors
    ///
    /// [`ArchGymError::InvalidHyper`] if the key is absent or not a bool.
    pub fn bool(&self, key: &str) -> Result<bool> {
        match self.values.get(key) {
            Some(HyperValue::Bool(v)) => Ok(*v),
            Some(other) => Err(ArchGymError::InvalidHyper(format!(
                "`{key}` is {other}, expected a bool"
            ))),
            None => Err(ArchGymError::InvalidHyper(format!("missing `{key}`"))),
        }
    }

    /// Like [`HyperMap::float`] but falling back to a default when absent.
    pub fn float_or(&self, key: &str, default: f64) -> Result<f64> {
        if self.contains(key) {
            self.float(key)
        } else {
            Ok(default)
        }
    }

    /// Like [`HyperMap::int`] but falling back to a default when absent.
    pub fn int_or(&self, key: &str, default: i64) -> Result<i64> {
        if self.contains(key) {
            self.int(key)
        } else {
            Ok(default)
        }
    }

    /// Like [`HyperMap::bool`] but falling back to a default when absent.
    pub fn bool_or(&self, key: &str, default: bool) -> Result<bool> {
        if self.contains(key) {
            self.bool(key)
        } else {
            Ok(default)
        }
    }

    /// Like [`HyperMap::text`] but falling back to a default when absent.
    pub fn text_or<'a>(&'a self, key: &str, default: &'a str) -> Result<&'a str> {
        if self.contains(key) {
            self.text(key)
        } else {
            Ok(default)
        }
    }

    /// Iterate over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &HyperValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// A compact `k=v,k=v` rendering used in sweep reports.
    pub fn summary(&self) -> String {
        self.values
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl FromIterator<(String, HyperValue)> for HyperMap {
    fn from_iter<I: IntoIterator<Item = (String, HyperValue)>>(iter: I) -> Self {
        HyperMap {
            values: iter.into_iter().collect(),
        }
    }
}

/// A grid of hyperparameter values to sweep: the Cartesian product of the
/// per-key value lists. This is the "~4000 experiments" machinery behind
/// Figs. 4–6.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HyperGrid {
    axes: Vec<(String, Vec<HyperValue>)>,
}

impl HyperGrid {
    /// An empty grid (its product is the single empty assignment).
    pub fn new() -> Self {
        HyperGrid::default()
    }

    /// Add an axis, builder-style.
    pub fn axis<I, V>(mut self, key: &str, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<HyperValue>,
    {
        self.axes
            .push((key.to_owned(), values.into_iter().map(Into::into).collect()));
        self
    }

    /// Number of assignments in the grid.
    pub fn len(&self) -> usize {
        self.axes.iter().map(|(_, vs)| vs.len().max(1)).product()
    }

    /// Whether the grid has no axes.
    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
    }

    /// Enumerate every assignment in the grid, lexicographic in axis order.
    pub fn iter(&self) -> HyperGridIter<'_> {
        HyperGridIter {
            grid: self,
            next: Some(vec![0; self.axes.len()]),
        }
    }

    /// Draw `n` uniformly random assignments (with replacement) — random
    /// hyperparameter search à la Bergstra & Bengio, which the paper
    /// names among the tuning techniques that "introduce another layer
    /// of complexity".
    pub fn sample<R: rand::Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<HyperMap> {
        (0..n)
            .map(|_| {
                self.axes
                    .iter()
                    .filter(|(_, vs)| !vs.is_empty())
                    .map(|(k, vs)| (k.clone(), vs[rng.gen_range(0..vs.len())].clone()))
                    .collect()
            })
            .collect()
    }
}

/// Iterator over the assignments of a [`HyperGrid`].
#[derive(Debug)]
pub struct HyperGridIter<'a> {
    grid: &'a HyperGrid,
    next: Option<Vec<usize>>,
}

impl Iterator for HyperGridIter<'_> {
    type Item = HyperMap;

    fn next(&mut self) -> Option<HyperMap> {
        let current = self.next.take()?;
        // An axis with zero values makes the whole grid empty.
        if self.grid.axes.iter().any(|(_, vs)| vs.is_empty()) {
            return None;
        }
        let map: HyperMap = self
            .grid
            .axes
            .iter()
            .zip(&current)
            .map(|((k, vs), &i)| (k.clone(), vs[i].clone()))
            .collect();
        // Advance the odometer.
        let mut succ = current;
        let mut dim = succ.len();
        loop {
            if dim == 0 {
                self.next = None;
                break;
            }
            dim -= 1;
            succ[dim] += 1;
            if succ[dim] < self.grid.axes[dim].1.len() {
                self.next = Some(succ);
                break;
            }
            succ[dim] = 0;
        }
        Some(map)
    }
}

/// Warm-start an agent by replaying a recorded dataset through its
/// feedback channel, as if it had explored those transitions itself.
///
/// Because every agent learns exclusively through [`Agent::observe`]
/// (Q2 of the paper's Table 2), any logged exploration — from another
/// agent, another hyperparameter assignment, or a community-shared
/// dataset — transfers to any agent: a Bayesian optimizer preloads its
/// surrogate history, an ant colony its pheromones, a policy-gradient
/// learner its gradients. This is the agent-side counterpart of the
/// paper's dataset-reuse story (Sections 3.4 and 7).
///
/// Transitions are replayed in order, in batches of `batch`.
pub fn warm_start<A: Agent + ?Sized>(
    agent: &mut A,
    dataset: &crate::trajectory::Dataset,
    batch: usize,
) {
    let batch = batch.max(1);
    let mut pending: Vec<(Action, StepResult)> = Vec::with_capacity(batch);
    for t in dataset.iter() {
        let result = StepResult {
            observation: crate::env::Observation::new(t.observation.clone()),
            reward: t.reward,
            done: true,
            feasible: t.feasible,
            info: Default::default(),
        };
        pending.push((t.action.clone(), result));
        if pending.len() >= batch {
            agent.observe(&pending);
            pending.clear();
        }
    }
    if !pending.is_empty() {
        agent.observe(&pending);
    }
}

/// A baseline agent available to every environment: uniformly random search
/// with a random number generator as its "policy" (Section 3.2). The other
/// agents live in the `archgym-agents` crate; the random walker sits in
/// core because tests and doc examples across the workspace use it.
#[derive(Debug)]
pub struct RandomWalker {
    space: ParamSpace,
    rng: rand::rngs::StdRng,
}

impl RandomWalker {
    /// Create a random walker over a space with an explicit seed.
    pub fn new(space: ParamSpace, seed: u64) -> Self {
        RandomWalker {
            space,
            rng: crate::seeded_rng(seed),
        }
    }
}

impl Agent for RandomWalker {
    fn name(&self) -> &str {
        "rw"
    }

    fn propose(&mut self, max_batch: usize) -> Vec<Action> {
        (0..max_batch)
            .map(|_| self.space.sample(&mut self.rng))
            .collect()
    }

    fn observe(&mut self, _results: &[(Action, StepResult)]) {
        // A random policy ignores feedback by definition.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{Observation, StepResult};

    #[test]
    fn hyper_map_typed_access() {
        let map = HyperMap::new()
            .with("lr", 0.01)
            .with("pop", 32i64)
            .with("kernel", "rbf")
            .with("aging", true);
        assert_eq!(map.float("lr").unwrap(), 0.01);
        assert_eq!(map.int("pop").unwrap(), 32);
        assert_eq!(map.text("kernel").unwrap(), "rbf");
        assert!(map.bool("aging").unwrap());
        assert_eq!(map.float("pop").unwrap(), 32.0); // int widens to float
        assert!(map.int("lr").is_err());
        assert!(map.float("missing").is_err());
        assert_eq!(map.float_or("missing", 7.0).unwrap(), 7.0);
    }

    #[test]
    fn hyper_map_summary_is_sorted_and_compact() {
        let map = HyperMap::new().with("b", 2i64).with("a", 1i64);
        assert_eq!(map.summary(), "a=1,b=2");
    }

    #[test]
    fn hyper_grid_product() {
        let grid = HyperGrid::new()
            .axis("lr", [0.1, 0.01])
            .axis("pop", [8i64, 16, 32]);
        assert_eq!(grid.len(), 6);
        let all: Vec<HyperMap> = grid.iter().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0].float("lr").unwrap(), 0.1);
        assert_eq!(all[0].int("pop").unwrap(), 8);
        assert_eq!(all[5].float("lr").unwrap(), 0.01);
        assert_eq!(all[5].int("pop").unwrap(), 32);
    }

    #[test]
    fn random_grid_sampling_draws_valid_assignments() {
        let grid = HyperGrid::new()
            .axis("lr", [0.1, 0.01, 0.001])
            .axis("pop", [8i64, 16]);
        let mut rng = crate::seeded_rng(4);
        let draws = grid.sample(50, &mut rng);
        assert_eq!(draws.len(), 50);
        for map in &draws {
            assert!([0.1, 0.01, 0.001].contains(&map.float("lr").unwrap()));
            assert!([8, 16].contains(&map.int("pop").unwrap()));
        }
        // With 50 draws over 6 cells, more than one distinct assignment
        // must appear.
        let distinct: std::collections::BTreeSet<String> =
            draws.iter().map(HyperMap::summary).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn empty_grid_yields_one_empty_assignment() {
        let grid = HyperGrid::new();
        let all: Vec<HyperMap> = grid.iter().collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0], HyperMap::new());
    }

    #[test]
    fn grid_with_empty_axis_is_empty() {
        let grid = HyperGrid::new().axis("lr", Vec::<f64>::new());
        assert_eq!(grid.iter().count(), 0);
    }

    #[test]
    fn random_walker_proposes_valid_actions_and_is_deterministic() {
        let space = ParamSpace::builder()
            .int("a", 0, 9, 1)
            .categorical("b", ["x", "y"])
            .build()
            .unwrap();
        let mut w1 = RandomWalker::new(space.clone(), 3);
        let mut w2 = RandomWalker::new(space.clone(), 3);
        let b1 = w1.propose(5);
        let b2 = w2.propose(5);
        assert_eq!(b1, b2);
        for a in &b1 {
            space.validate(a).unwrap();
        }
        // observe() is a no-op but must be callable.
        let fake = StepResult::terminal(Observation::new(vec![0.0]), 0.0);
        w1.observe(&[(b1[0].clone(), fake)]);
    }

    #[test]
    fn warm_start_replays_every_transition_in_batches() {
        use crate::trajectory::{Dataset, Transition};
        struct Counter {
            seen: usize,
            batches: usize,
        }
        impl Agent for Counter {
            fn name(&self) -> &str {
                "counter"
            }
            fn propose(&mut self, _max: usize) -> Vec<Action> {
                Vec::new()
            }
            fn observe(&mut self, results: &[(Action, StepResult)]) {
                self.seen += results.len();
                self.batches += 1;
            }
        }
        let mut dataset = Dataset::new();
        for i in 0..25 {
            let result = StepResult::terminal(Observation::new(vec![i as f64]), i as f64);
            dataset.push(Transition::new("toy", "rw", Action::new(vec![i]), &result));
        }
        let mut counter = Counter {
            seen: 0,
            batches: 0,
        };
        warm_start(&mut counter, &dataset, 8);
        assert_eq!(counter.seen, 25);
        assert_eq!(counter.batches, 4); // 8 + 8 + 8 + 1
    }

    #[test]
    fn boxed_agent_dispatches() {
        let space = ParamSpace::builder().int("a", 0, 3, 1).build().unwrap();
        let mut agent: Box<dyn Agent> = Box::new(RandomWalker::new(space, 1));
        assert_eq!(agent.name(), "rw");
        assert_eq!(agent.propose(2).len(), 2);
    }
}
