//! The agent↔environment driver loop.
//!
//! [`SearchLoop`] runs an [`Agent`] against an [`Environment`] under a
//! sample budget (the paper's normalization axis, Section 6.2), recording
//! every interaction into a [`Dataset`] and tracking the best design found.
//!
//! The loop is *fault-tolerant*: evaluations flow through the fallible
//! [`BatchEvaluator::try_eval_batch`] path, failed outcomes (transient
//! errors, timeouts, NaN/Inf-corrupted results, worker panics) are
//! retried per the run's [`RetryPolicy`], and a design point that
//! exhausts its retries degrades to the paper's infeasible-penalty
//! semantics instead of aborting the run. [`SearchLoop::run_resumable`]
//! additionally journals every transition to disk
//! ([`RunJournal`](crate::journal::RunJournal)) so a killed run resumes
//! bit-identically from where it stopped.

use crate::agent::Agent;
use crate::codec::Json;
use crate::env::{Environment, Observation, StepResult};
use crate::error::{ArchGymError, Result};
use crate::journal::{
    JournalHeader, JournalRecord, JournalStep, RunJournal, Snapshot, JOURNAL_VERSION,
};
use crate::pool::{BatchEvaluator, EnvPool};
use crate::screen::{select_admitted, Screener};
use crate::space::Action;
use crate::telemetry::{Counter, Phase, Recorder, RunReport};
use crate::trajectory::{Dataset, Transition};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::path::Path;
use std::time::Instant;

/// Fallback proposal batch size when neither the config nor the agent
/// pins one down.
const DEFAULT_BATCH: usize = 16;

/// How the search loop handles failed evaluations: how often to retry a
/// failed design point, how long to back off between retry rounds, and
/// the penalty reward a point degrades to once its retries are spent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retry rounds granted to a failing design point beyond its first
    /// attempt. `0` degrades on the first failure.
    pub max_retries: u32,
    /// Base backoff between retry rounds in milliseconds, doubled each
    /// round (capped). `0` (the default) retries immediately — injected
    /// faults need no cool-down, real crashed simulators might.
    pub backoff_ms: u64,
    /// Penalty reward assigned to a degraded design point, mirroring
    /// the infeasible-point penalty of the paper's reward formulation.
    pub penalty: f64,
}

impl RetryPolicy {
    /// A policy granting `max_retries` retries with no backoff and the
    /// default `-1.0` penalty.
    pub fn new(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            backoff_ms: 0,
            penalty: -1.0,
        }
    }

    /// Set the base backoff, builder-style.
    pub fn backoff_ms(mut self, backoff_ms: u64) -> Self {
        self.backoff_ms = backoff_ms;
        self
    }

    /// Set the degrade penalty, builder-style.
    pub fn penalty(mut self, penalty: f64) -> Self {
        self.penalty = penalty;
        self
    }
}

impl Default for RetryPolicy {
    /// Two immediate retries, penalty `-1.0`.
    fn default() -> Self {
        RetryPolicy::new(2)
    }
}

/// Configuration of one search run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Maximum number of simulator samples the agent may consume — the
    /// paper compares agents at budgets of 100 / 1k / 10k / 100k samples.
    pub sample_budget: u64,
    /// Upper bound on the batch size requested from [`Agent::propose`].
    /// Population-based agents use it as their generation size. `0`
    /// means *auto*: use the agent's [`Agent::batch_hint`] (its whole
    /// generation) when it has one, else 16.
    pub batch: usize,
    /// Record every transition into the run's dataset. Disable for very
    /// long runs where only the best design matters.
    pub record: bool,
    /// Worker threads for in-run batch evaluation via
    /// [`SearchLoop::run_pooled`]: `1` (default) evaluates serially on
    /// the caller's thread, `0` uses every available hardware thread,
    /// `n > 1` fans batches across `n` environment replicas. Results
    /// are bit-identical at any setting.
    pub jobs: usize,
    /// Retry/degrade policy for failed evaluations.
    pub retry: RetryPolicy,
}

impl RunConfig {
    /// A run with the given sample budget, a batch size of 16, serial
    /// evaluation, and the default retry policy.
    pub fn with_budget(sample_budget: u64) -> Self {
        RunConfig {
            sample_budget,
            batch: 16,
            record: true,
            jobs: 1,
            retry: RetryPolicy::default(),
        }
    }

    /// Override the proposal batch size, builder-style (`0` = auto).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Toggle transition recording, builder-style.
    pub fn record(mut self, record: bool) -> Self {
        self.record = record;
        self
    }

    /// Set in-run evaluation workers, builder-style (`0` = all cores).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Set the retry/degrade policy, builder-style.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::with_budget(1_000)
    }
}

/// Everything a finished run reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Agent identifier.
    pub agent: String,
    /// Environment identifier.
    pub env: String,
    /// Best reward observed.
    pub best_reward: f64,
    /// The action achieving [`RunResult::best_reward`].
    pub best_action: Action,
    /// Observation metrics of the best design.
    pub best_observation: Vec<f64>,
    /// Simulator samples actually consumed.
    pub samples_used: u64,
    /// Wall-clock duration of the run in seconds (the paper's Fig. 8
    /// time-to-completion axis).
    pub wall_seconds: f64,
    /// Reward after each evaluation — the best-so-far curve is derivable
    /// from this; empty when recording was disabled.
    pub reward_history: Vec<f64>,
    /// Every recorded transition (empty when recording was disabled).
    pub dataset: Dataset,
    /// Retry rounds consumed by failing evaluations.
    pub eval_retries: u64,
    /// Failed evaluation outcomes observed (errors, timeouts, corrupted
    /// results, crashed-state rejections, worker panics) — every one of
    /// them retried or degraded, never fatal.
    pub eval_failures: u64,
    /// Samples that exhausted their retries and degraded to the
    /// [`RetryPolicy::penalty`] infeasible result.
    pub degraded_samples: u64,
    /// Candidate proposals ranked by the online proxy screen (zero in
    /// proxy-off runs).
    pub proxy_screened: u64,
    /// Screened candidates admitted to true evaluation.
    pub proxy_admitted: u64,
    /// Online proxy model (re)fits performed during the run.
    pub proxy_refits: u64,
    /// Telemetry snapshot of the run — `None` unless the driver was
    /// built with [`SearchLoop::with_telemetry`] and an enabled
    /// [`Recorder`].
    pub telemetry: Option<RunReport>,
}

impl RunResult {
    /// The best-so-far reward curve (prefix maximum of the history).
    pub fn best_so_far(&self) -> Vec<f64> {
        let mut best = f64::NEG_INFINITY;
        self.reward_history
            .iter()
            .map(|&r| {
                best = best.max(r);
                best
            })
            .collect()
    }

    /// Number of simulator samples spent before the reward first reached
    /// `threshold` — the paper's sample-efficiency metric ("the number of
    /// requisite samples before reaching an optimal solution",
    /// Section 2). `None` if the run never reached it or recording was
    /// disabled.
    pub fn samples_to_reach(&self, threshold: f64) -> Option<u64> {
        self.reward_history
            .iter()
            .position(|&r| r >= threshold)
            .map(|i| i as u64 + 1)
    }
}

/// A fully settled evaluation: the final result of one proposed action
/// after any retries and degradation.
struct Settled {
    result: StepResult,
    retries: u64,
    faults: u64,
    degraded: bool,
}

impl Settled {
    fn from_journal(step: JournalStep) -> Self {
        Settled {
            result: StepResult {
                observation: Observation::new(step.observation),
                reward: step.reward,
                done: step.done,
                feasible: step.feasible,
                info: step.info,
            },
            retries: step.retries,
            faults: step.faults,
            degraded: step.degraded,
        }
    }

    fn to_journal(&self, index: usize) -> JournalStep {
        JournalStep {
            index,
            reward: self.result.reward,
            observation: self.result.observation.as_slice().to_vec(),
            done: self.result.done,
            feasible: self.result.feasible,
            info: self.result.info.clone(),
            retries: self.retries,
            faults: self.faults,
            degraded: self.degraded,
        }
    }
}

/// One journaled batch awaiting replay.
struct ReplayBatch {
    actions: Vec<Vec<usize>>,
    /// The journaled proxy admission decision, if the batch was
    /// screened (`None` for plain batches and for batches whose run
    /// crashed between the batch and screen records).
    screen: Option<Vec<usize>>,
    steps: Vec<Option<JournalStep>>,
}

/// Drives one agent against one environment.
///
/// ```
/// use archgym_core::agent::RandomWalker;
/// use archgym_core::prelude::*;
/// use archgym_core::search::SearchLoop;
/// # use archgym_core::space::ParamSpace;
/// # struct Toy { space: ParamSpace }
/// # impl Environment for Toy {
/// #     fn name(&self) -> &str { "toy" }
/// #     fn space(&self) -> &ParamSpace { &self.space }
/// #     fn observation_labels(&self) -> Vec<String> { vec!["cost".into()] }
/// #     fn step(&mut self, action: &Action) -> StepResult {
/// #         let x = action.index(0) as f64;
/// #         StepResult::terminal(Observation::new(vec![x]), -(x - 3.0).abs())
/// #     }
/// # }
/// let space = ParamSpace::builder().int("x", 0, 15, 1).build()?;
/// let mut env = Toy { space: space.clone() };
/// let mut agent = RandomWalker::new(space, 0);
/// let result = SearchLoop::new(RunConfig::with_budget(64)).run(&mut agent, &mut env);
/// assert_eq!(result.samples_used, 64);
/// assert!(result.best_reward <= 0.0);
/// # Ok::<(), ArchGymError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SearchLoop {
    config: RunConfig,
    telemetry: Recorder,
    journal_io: std::sync::Arc<dyn crate::storeio::StoreIo>,
    durability: crate::storeio::Durability,
}

impl SearchLoop {
    /// Create a driver with the given configuration and telemetry
    /// disabled.
    pub fn new(config: RunConfig) -> Self {
        SearchLoop {
            config,
            telemetry: Recorder::default(),
            journal_io: crate::storeio::real_io(),
            durability: crate::storeio::Durability::None,
        }
    }

    /// Attach a telemetry recorder, builder-style. The driver installs
    /// the handle on the evaluator stack (environment wrappers, pool
    /// replicas, executor) and the journal at run start, times the
    /// propose/evaluate/settle/journal phases, and snapshots everything
    /// into [`RunResult::telemetry`].
    pub fn with_telemetry(mut self, recorder: Recorder) -> Self {
        self.telemetry = recorder;
        self
    }

    /// Route the resumable entry points' journal/snapshot file I/O
    /// through `io`, builder-style. The default is the real filesystem;
    /// tests install a [`FaultyIo`](crate::storeio::FaultyIo) here to
    /// exercise crash/corruption paths deterministically.
    pub fn with_journal_io(mut self, io: std::sync::Arc<dyn crate::storeio::StoreIo>) -> Self {
        self.journal_io = io;
        self
    }

    /// Set the journal fsync policy, builder-style. The default is
    /// [`Durability::None`](crate::storeio::Durability::None) — flush
    /// to the OS only, matching pre-durability behaviour.
    pub fn with_durability(mut self, durability: crate::storeio::Durability) -> Self {
        self.durability = durability;
        self
    }

    /// The driver's configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// The driver's telemetry handle (disabled unless
    /// [`SearchLoop::with_telemetry`] installed one).
    pub fn telemetry(&self) -> &Recorder {
        &self.telemetry
    }

    /// Run `agent` against `eval` until the sample budget is exhausted
    /// or the agent stops proposing. Returns the run report.
    ///
    /// `eval` is any [`BatchEvaluator`] — a plain [`Environment`]
    /// (evaluated serially, via the blanket impl) or an [`EnvPool`]
    /// (evaluated in parallel). Both yield bit-identical reports.
    /// Failed evaluations are retried and degraded per the config's
    /// [`RetryPolicy`]; this entry point never fails.
    pub fn run<A, E>(&self, agent: &mut A, eval: &mut E) -> RunResult
    where
        A: Agent + ?Sized,
        E: BatchEvaluator + ?Sized,
    {
        self.drive(agent, eval, None, None)
            .expect("journal-less runs cannot fail")
    }

    /// Run `agent` against `env`, honoring the config's
    /// [`jobs`](RunConfig::jobs) knob: `jobs == 1` evaluates serially,
    /// anything else fans batches across an [`EnvPool`] of cloned
    /// replicas. Takes the environment by value (the pool needs to own
    /// its replicas); the report is bit-identical at any job count.
    pub fn run_pooled<A, E>(&self, agent: &mut A, env: E) -> RunResult
    where
        A: Agent + ?Sized,
        E: Environment + Clone + Send,
    {
        if self.config.jobs == 1 {
            let mut env = env;
            self.run(agent, &mut env)
        } else {
            let mut pool = EnvPool::new(env, self.config.jobs);
            self.run(agent, &mut pool)
        }
    }

    /// Like [`SearchLoop::run`], but journaled to `path` and resumable:
    /// every proposed batch is logged *before* evaluation and every
    /// settled result after it, so a crashed or killed run restarts
    /// from its last completed evaluation instead of from scratch.
    ///
    /// If `path` holds a journal from an earlier (interrupted) run of
    /// the *same* configuration, that prefix is replayed — the agent
    /// re-proposes deterministically, journaled results are fed back to
    /// it without touching the simulator, and only the un-journaled
    /// tail is evaluated live. The final report is bit-identical (best
    /// action, trajectory, dataset) to an uninterrupted run. A journal
    /// written by a different env/agent/budget/batch errors rather than
    /// silently mixing runs.
    pub fn run_resumable<A, E>(
        &self,
        agent: &mut A,
        eval: &mut E,
        path: impl AsRef<Path>,
    ) -> Result<RunResult>
    where
        A: Agent + ?Sized,
        E: BatchEvaluator + ?Sized,
    {
        let mut journal = RunJournal::open_with(
            path,
            std::sync::Arc::clone(&self.journal_io),
            self.durability,
        )?;
        self.drive(agent, eval, Some(&mut journal), None)
    }

    /// [`SearchLoop::run_resumable`] with the config's
    /// [`jobs`](RunConfig::jobs) knob, mirroring
    /// [`SearchLoop::run_pooled`].
    pub fn run_resumable_pooled<A, E>(
        &self,
        agent: &mut A,
        env: E,
        path: impl AsRef<Path>,
    ) -> Result<RunResult>
    where
        A: Agent + ?Sized,
        E: Environment + Clone + Send,
    {
        if self.config.jobs == 1 {
            let mut env = env;
            self.run_resumable(agent, &mut env, path)
        } else {
            let mut pool = EnvPool::new(env, self.config.jobs);
            self.run_resumable(agent, &mut pool, path)
        }
    }

    /// Like [`SearchLoop::run`], but with an online proxy screen: once
    /// `screener` has warmed up on the run's own settled samples, each
    /// proposal batch is over-sampled, ranked through the proxy, and
    /// only the admitted slice (top-k by predicted reward plus an
    /// uncertainty exploration slice) reaches the true evaluator. The
    /// screened run is deterministic per seed and bit-identical across
    /// serial/pooled evaluation, like every other entry point.
    pub fn run_screened<A, E>(
        &self,
        agent: &mut A,
        eval: &mut E,
        screener: &mut dyn Screener,
    ) -> RunResult
    where
        A: Agent + ?Sized,
        E: BatchEvaluator + ?Sized,
    {
        self.drive(agent, eval, None, Some(screener))
            .expect("journal-less runs cannot fail")
    }

    /// [`SearchLoop::run_screened`] with the config's
    /// [`jobs`](RunConfig::jobs) knob, mirroring
    /// [`SearchLoop::run_pooled`].
    pub fn run_screened_pooled<A, E>(
        &self,
        agent: &mut A,
        env: E,
        screener: &mut dyn Screener,
    ) -> RunResult
    where
        A: Agent + ?Sized,
        E: Environment + Clone + Send,
    {
        if self.config.jobs == 1 {
            let mut env = env;
            self.run_screened(agent, &mut env, screener)
        } else {
            let mut pool = EnvPool::new(env, self.config.jobs);
            self.run_screened(agent, &mut pool, screener)
        }
    }

    /// [`SearchLoop::run_screened`] journaled to `path` and resumable:
    /// admission decisions are journaled as `screen` records alongside
    /// the batches they govern, so a killed screened run resumes
    /// bit-identically at every crash prefix.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::Journal`] on journal I/O failures or
    /// when the journal belongs to a different run (including a
    /// different screening decision trace).
    pub fn run_screened_resumable<A, E>(
        &self,
        agent: &mut A,
        eval: &mut E,
        screener: &mut dyn Screener,
        path: impl AsRef<Path>,
    ) -> Result<RunResult>
    where
        A: Agent + ?Sized,
        E: BatchEvaluator + ?Sized,
    {
        let mut journal = RunJournal::open_with(
            path,
            std::sync::Arc::clone(&self.journal_io),
            self.durability,
        )?;
        self.drive(agent, eval, Some(&mut journal), Some(screener))
    }

    /// [`SearchLoop::run_screened_resumable`] with the config's
    /// [`jobs`](RunConfig::jobs) knob.
    ///
    /// # Errors
    ///
    /// See [`SearchLoop::run_screened_resumable`].
    pub fn run_screened_resumable_pooled<A, E>(
        &self,
        agent: &mut A,
        env: E,
        screener: &mut dyn Screener,
        path: impl AsRef<Path>,
    ) -> Result<RunResult>
    where
        A: Agent + ?Sized,
        E: Environment + Clone + Send,
    {
        if self.config.jobs == 1 {
            let mut env = env;
            self.run_screened_resumable(agent, &mut env, screener, path)
        } else {
            let mut pool = EnvPool::new(env, self.config.jobs);
            self.run_screened_resumable(agent, &mut pool, screener, path)
        }
    }

    /// Evaluate one proposed batch to completion: evaluate all pending
    /// positions, retry failures (resetting the environment between
    /// rounds, which recovers latched crashes), and degrade positions
    /// that exhaust [`RetryPolicy::max_retries`] charged failures to
    /// the infeasible penalty. Knock-on
    /// [`ArchGymError::EnvCrashed`] rejections count as observed faults
    /// but are *not* charged against a position's retries — they are
    /// symptoms of a neighbor's crash, not verdicts on the position.
    fn settle_batch<E>(
        eval: &mut E,
        actions: &[Action],
        policy: &RetryPolicy,
        rec: &Recorder,
    ) -> Vec<Settled>
    where
        E: BatchEvaluator + ?Sized,
    {
        let _settle_span = rec.span(Phase::Settle);
        let n = actions.len();
        let width = eval.observation_width();
        let degraded_result = || {
            StepResult::infeasible(Observation::new(vec![0.0; width]), policy.penalty)
                .with_info("degraded", 1.0)
        };
        let mut slots: Vec<Option<StepResult>> = (0..n).map(|_| None).collect();
        let mut charges = vec![0u32; n];
        let mut retries = vec![0u64; n];
        let mut faults = vec![0u64; n];
        let mut degraded = vec![false; n];
        // Each round settles or charges at least one position (only
        // uncharged EnvCrashed rejections stall, and the post-reset
        // leading position always gets a genuine outcome), so this cap
        // is never reached in practice — it is a hard backstop against
        // a pathological evaluator that crashes without recovery.
        let max_rounds = (u64::from(policy.max_retries) + 2) * n as u64 + 4;

        let mut round = 0u64;
        loop {
            let pending: Vec<usize> = (0..n).filter(|&i| slots[i].is_none()).collect();
            if pending.is_empty() {
                break;
            }
            if round > max_rounds {
                for &i in &pending {
                    slots[i] = Some(degraded_result());
                    degraded[i] = true;
                }
                break;
            }
            if round > 0 {
                if policy.backoff_ms > 0 {
                    let _backoff_span = rec.span(Phase::RetryBackoff);
                    let exp = (round - 1).min(6) as u32;
                    let delay = policy.backoff_ms.saturating_mul(1 << exp).min(10_000);
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                }
                // Recover latched crashes before re-attempting; bundled
                // environments are stateless between designs, so this
                // is a no-op for them.
                eval.reset_env();
                for &i in &pending {
                    retries[i] += 1;
                }
            }
            let subset: Vec<Action> = pending.iter().map(|&i| actions[i].clone()).collect();
            let outcomes = {
                let _eval_span = rec.span(Phase::Evaluate);
                eval.try_eval_batch(&subset)
            };
            debug_assert_eq!(outcomes.len(), pending.len());
            for (&i, outcome) in pending.iter().zip(outcomes) {
                match outcome {
                    Ok(result)
                        if result.reward.is_finite()
                            && result.observation.as_slice().iter().all(|v| v.is_finite()) =>
                    {
                        slots[i] = Some(result);
                    }
                    // A non-finite reward/metric is a corrupted report:
                    // treat it exactly like an evaluation error.
                    Ok(_) | Err(ArchGymError::EvalFailed(_)) | Err(ArchGymError::Timeout(_)) => {
                        faults[i] += 1;
                        charges[i] += 1;
                    }
                    // Knock-on rejection from a latched crash: observed
                    // but uncharged (the reset before the next round
                    // clears the latch).
                    Err(ArchGymError::EnvCrashed(_)) => {
                        faults[i] += 1;
                    }
                    Err(_) => {
                        faults[i] += 1;
                        charges[i] += 1;
                    }
                }
            }
            for &i in &pending {
                if slots[i].is_none() && charges[i] > policy.max_retries {
                    slots[i] = Some(degraded_result());
                    degraded[i] = true;
                }
            }
            round += 1;
        }

        slots
            .into_iter()
            .enumerate()
            .map(|(i, result)| Settled {
                result: result.expect("every slot settled"),
                retries: retries[i],
                faults: faults[i],
                degraded: degraded[i],
            })
            .collect()
    }

    /// The unified driver behind every entry point: with a journal,
    /// previously logged batches are replayed (verifying the agent's
    /// deterministic re-proposals — and any proxy admission decisions —
    /// against the log) before live evaluation continues; with a
    /// screener, warmed-up batches are over-sampled and only the
    /// admitted candidate slice reaches the true evaluator.
    fn drive<A, E>(
        &self,
        agent: &mut A,
        eval: &mut E,
        mut journal: Option<&mut RunJournal>,
        mut screener: Option<&mut dyn Screener>,
    ) -> Result<RunResult>
    where
        A: Agent + ?Sized,
        E: BatchEvaluator + ?Sized,
    {
        let start = Instant::now();
        let policy = self.config.retry;
        // Install the telemetry handle on every layer reachable from
        // here: the evaluator stack (wrappers, pool replicas, executor),
        // the journal writer, and the proxy screener. A disabled
        // recorder makes all of this free (one branch per site).
        let rec = self.telemetry.clone();
        eval.set_telemetry(&rec);
        if let Some(j) = journal.as_deref_mut() {
            j.set_telemetry(&rec);
        }
        if let Some(s) = screener.as_deref_mut() {
            s.set_telemetry(&rec);
        }

        // Validate or create the journal header, then stage the
        // recovered records for replay.
        let mut replay: VecDeque<ReplayBatch> = VecDeque::new();
        if let Some(j) = journal.as_deref_mut() {
            match j.header() {
                Some(h) => {
                    let live = (
                        eval.env_name(),
                        agent.name(),
                        self.config.sample_budget,
                        self.config.batch as u64,
                    );
                    if (h.env.as_str(), h.agent.as_str(), h.budget, h.batch) != live {
                        return Err(ArchGymError::Journal(format!(
                            "journal belongs to a different run \
                             (journal: env {} agent {} budget {} batch {}; \
                             live: env {} agent {} budget {} batch {})",
                            h.env, h.agent, h.budget, h.batch, live.0, live.1, live.2, live.3
                        )));
                    }
                }
                None => {
                    j.append(&JournalRecord::Header(JournalHeader {
                        version: JOURNAL_VERSION,
                        env: eval.env_name().to_owned(),
                        agent: agent.name().to_owned(),
                        budget: self.config.sample_budget,
                        batch: self.config.batch as u64,
                    }))?;
                }
            }
            for record in j.records() {
                match record {
                    JournalRecord::Header(_) => {} // open() pinned it to index 0
                    JournalRecord::Batch(actions) => replay.push_back(ReplayBatch {
                        steps: (0..actions.len()).map(|_| None).collect(),
                        screen: None,
                        actions: actions.clone(),
                    }),
                    JournalRecord::Screen(admitted) => {
                        let batch = replay.back_mut().ok_or_else(|| {
                            ArchGymError::Journal("screen record before any batch record".into())
                        })?;
                        if admitted.iter().any(|&i| i >= batch.actions.len()) {
                            return Err(ArchGymError::Journal(format!(
                                "screen record admits an index outside its batch of {}",
                                batch.actions.len()
                            )));
                        }
                        batch.screen = Some(admitted.clone());
                    }
                    JournalRecord::Step(step) => {
                        let batch = replay.back_mut().ok_or_else(|| {
                            ArchGymError::Journal("step record before any batch record".into())
                        })?;
                        let slot = batch.steps.get_mut(step.index).ok_or_else(|| {
                            ArchGymError::Journal(format!(
                                "step index {} outside its batch of {}",
                                step.index,
                                batch.actions.len()
                            ))
                        })?;
                        *slot = Some(step.clone());
                    }
                }
            }
        }

        let mut samples_used = 0u64;
        let mut best_reward = f64::NEG_INFINITY;
        let mut best_action: Option<Action> = None;
        let mut best_observation = Vec::new();
        let mut reward_history = Vec::new();
        let mut dataset = Dataset::new();
        let mut eval_retries = 0u64;
        let mut eval_failures = 0u64;
        let mut degraded_samples = 0u64;
        eval.reset_env();
        let batch_cap = match self.config.batch {
            0 => agent.batch_hint().unwrap_or(DEFAULT_BATCH),
            n => n,
        }
        .max(1);

        let mut screened_batches = 0u64;
        let mut proxy_screened = 0u64;
        let mut proxy_admitted = 0u64;
        let mut pred_means: Vec<f64> = Vec::new();
        let mut pred_vars: Vec<f64> = Vec::new();

        while samples_used < self.config.sample_budget {
            let remaining = (self.config.sample_budget - samples_used) as usize;
            // Screening is active once the screener has warmed up on
            // the run's own samples and has not disabled itself on
            // drift; until then batches behave exactly like a
            // proxy-off run.
            let screening = screener.as_deref().is_some_and(|s| s.is_ready());
            let propose_cap = if screening {
                let oversample = screener
                    .as_deref()
                    .map_or(1, |s| s.policy().oversample.max(1));
                batch_cap.saturating_mul(oversample)
            } else {
                batch_cap.min(remaining)
            };
            let mut actions = {
                let _propose_span = rec.span(Phase::Propose);
                agent.propose(propose_cap)
            };
            if actions.is_empty() {
                break; // agent converged
            }
            rec.incr(Counter::Batches);
            // A misbehaving agent may ignore max_batch; never evaluate
            // past the budget (plain mode) or rank past the
            // over-sampled candidate window (screened mode — admission
            // is capped to the remaining budget below).
            actions.truncate(if screening { propose_cap } else { remaining });

            // The screen's admission decision: which candidate indices
            // reach the true evaluator. Plain batches admit everything.
            let mut revalidating = false;
            let admitted: Vec<usize> = if screening {
                let s = screener
                    .as_deref_mut()
                    .expect("screening implies a screener");
                let pol = s.policy();
                screened_batches += 1;
                {
                    let _proxy_span = rec.span(Phase::Proxy);
                    s.predict(&actions, &mut pred_means, &mut pred_vars);
                }
                revalidating = pol.revalidate_every > 0
                    && screened_batches.is_multiple_of(pol.revalidate_every);
                let admitted = if revalidating {
                    // Drift check: the whole candidate batch is truly
                    // evaluated and predictions are graded against it.
                    rec.incr(Counter::ProxyRevalidations);
                    (0..actions.len().min(remaining)).collect()
                } else {
                    select_admitted(
                        &pred_means,
                        &pred_vars,
                        pol.top_k,
                        pol.explore_frac,
                        remaining,
                    )
                };
                proxy_screened += actions.len() as u64;
                proxy_admitted += admitted.len() as u64;
                rec.add(Counter::ProxyScreened, actions.len() as u64);
                rec.add(Counter::ProxyAdmitted, admitted.len() as u64);
                admitted
            } else {
                (0..actions.len()).collect()
            };

            let settled: Vec<(usize, Settled)> = if let Some(mut batch) = replay.pop_front() {
                // Replay: the agent must re-propose exactly what the
                // journal recorded (it is deterministic in its seed).
                let diverged = batch.actions.len() != actions.len()
                    || batch
                        .actions
                        .iter()
                        .zip(&actions)
                        .any(|(logged, live)| logged.as_slice() != live.as_slice());
                if diverged {
                    return Err(ArchGymError::Journal(
                        "agent replay diverged from the journal — was the seed, agent, \
                         or environment configuration changed since the journal was written?"
                            .into(),
                    ));
                }
                // The screening decision must replay identically too:
                // the screener is deterministic in its seed and sample
                // stream, so a recomputed decision that differs from
                // the journaled one means the configuration changed.
                match (&batch.screen, screening) {
                    (None, false) => {}
                    (Some(logged), true) => {
                        if logged != &admitted {
                            return Err(ArchGymError::Journal(
                                "proxy screen replay diverged from the journal — was the \
                                 proxy policy or seed changed since the journal was written?"
                                    .into(),
                            ));
                        }
                    }
                    (None, true) => {
                        // The original run crashed between the batch
                        // and screen records; journal the recomputed
                        // (identical) decision and settle live below.
                        if let Some(j) = journal.as_deref_mut() {
                            j.append(&JournalRecord::Screen(admitted.clone()))?;
                        }
                    }
                    (Some(_), false) => {
                        return Err(ArchGymError::Journal(
                            "journal holds proxy screen records but the live run is not \
                             screening — was the proxy configuration removed?"
                                .into(),
                        ));
                    }
                }
                // Journaled positions are absorbed without touching the
                // simulator; the un-journaled tail settles live.
                let missing: Vec<usize> = admitted
                    .iter()
                    .copied()
                    .filter(|&i| batch.steps[i].is_none())
                    .collect();
                // Absorbed journal steps are *replayed*, not settled:
                // the split is what keeps a resume from double-counting
                // work the original run already did.
                rec.add(
                    Counter::SamplesReplayed,
                    (admitted.len() - missing.len()) as u64,
                );
                rec.add(Counter::SamplesSettled, missing.len() as u64);
                let mut slots: Vec<Option<Settled>> = batch
                    .steps
                    .drain(..)
                    .map(|step| step.map(Settled::from_journal))
                    .collect();
                if !missing.is_empty() {
                    let subset: Vec<Action> = missing.iter().map(|&i| actions[i].clone()).collect();
                    let live = Self::settle_batch(eval, &subset, &policy, &rec);
                    for (&i, settled) in missing.iter().zip(live) {
                        if let Some(j) = journal.as_deref_mut() {
                            j.append(&JournalRecord::Step(settled.to_journal(i)))?;
                        }
                        slots[i] = Some(settled);
                    }
                }
                admitted
                    .iter()
                    .map(|&i| {
                        (
                            i,
                            slots[i].take().expect("every admitted replay slot settled"),
                        )
                    })
                    .collect()
            } else {
                // Live: log the proposal before evaluating (write-ahead),
                // then the admission decision, then the settled results.
                if let Some(j) = journal.as_deref_mut() {
                    j.append(&JournalRecord::Batch(
                        actions.iter().map(|a| a.as_slice().to_vec()).collect(),
                    ))?;
                    if screening {
                        j.append(&JournalRecord::Screen(admitted.clone()))?;
                    }
                }
                let settled = if screening {
                    let subset: Vec<Action> =
                        admitted.iter().map(|&i| actions[i].clone()).collect();
                    Self::settle_batch(eval, &subset, &policy, &rec)
                } else {
                    Self::settle_batch(eval, &actions, &policy, &rec)
                };
                rec.add(Counter::SamplesSettled, settled.len() as u64);
                if let Some(j) = journal.as_deref_mut() {
                    for (&i, s) in admitted.iter().zip(settled.iter()) {
                        j.append(&JournalRecord::Step(s.to_journal(i)))?;
                    }
                }
                admitted.iter().copied().zip(settled).collect()
            };

            let mut results: Vec<(Action, StepResult)> = Vec::with_capacity(settled.len());
            let mut train_actions: Vec<Action> = Vec::new();
            let mut train_rewards: Vec<f64> = Vec::new();
            let mut reval_pred: Vec<f64> = Vec::new();
            let mut reval_actual: Vec<f64> = Vec::new();
            let (mut batch_retries, mut batch_faults, mut batch_degraded) = (0u64, 0u64, 0u64);
            for (index, settled) in settled {
                // Each admitted index is visited exactly once, so the
                // action can be moved out of the candidate list.
                let action = std::mem::replace(&mut actions[index], Action::new(Vec::new()));
                samples_used += 1;
                eval_retries += settled.retries;
                eval_failures += settled.faults;
                degraded_samples += u64::from(settled.degraded);
                batch_retries += settled.retries;
                batch_faults += settled.faults;
                batch_degraded += u64::from(settled.degraded);
                let degraded = settled.degraded;
                let result = settled.result;
                if result.reward > best_reward {
                    best_reward = result.reward;
                    best_action = Some(action.clone());
                    best_observation = result.observation.as_slice().to_vec();
                }
                if self.config.record {
                    reward_history.push(result.reward);
                    dataset.push(Transition::new(
                        eval.env_name(),
                        agent.name(),
                        action.clone(),
                        &result,
                    ));
                }
                // Degraded samples never enter the proxy training set:
                // their penalty reward is a retry-policy artifact, not
                // a simulator measurement.
                if screener.is_some() && !degraded {
                    train_actions.push(action.clone());
                    train_rewards.push(result.reward);
                    if revalidating {
                        reval_pred.push(pred_means[index]);
                        reval_actual.push(result.reward);
                    }
                }
                results.push((action, result));
            }
            rec.add(Counter::EvalRetries, batch_retries);
            rec.add(Counter::EvalFailures, batch_faults);
            rec.add(Counter::DegradedSamples, batch_degraded);
            if rec.is_enabled() {
                let mut event = vec![
                    ("event".into(), Json::Str("batch".into())),
                    ("batch".into(), Json::num_u64(rec.get(Counter::Batches))),
                    ("settled".into(), Json::num_u64(results.len() as u64)),
                    ("samples_used".into(), Json::num_u64(samples_used)),
                    ("failures".into(), Json::num_u64(batch_faults)),
                    ("retries".into(), Json::num_u64(batch_retries)),
                    ("degraded".into(), Json::num_u64(batch_degraded)),
                    ("best_reward".into(), Json::num_f64(best_reward)),
                ];
                if screening {
                    event.push(("proxy_screened".into(), Json::num_u64(proxy_screened)));
                    event.push(("proxy_admitted".into(), Json::num_u64(proxy_admitted)));
                }
                rec.trace_event(&Json::Obj(event));
            }
            if let Some(s) = screener.as_deref_mut() {
                if revalidating && !reval_actual.is_empty() {
                    let _proxy_span = rec.span(Phase::Proxy);
                    s.revalidate(&reval_pred, &reval_actual);
                }
                if !train_actions.is_empty() {
                    s.observe(&train_actions, &train_rewards);
                }
            }
            agent.observe(&results);

            if let Some(j) = journal.as_deref_mut() {
                j.write_snapshot(&Snapshot {
                    samples: samples_used,
                    best_reward,
                    best_action: best_action
                        .as_ref()
                        .map(|a| a.as_slice().to_vec())
                        .unwrap_or_default(),
                    best_observation: best_observation.clone(),
                    eval_retries,
                    eval_failures,
                    degraded_samples,
                })?;
            }
        }

        if !replay.is_empty() {
            return Err(ArchGymError::Journal(
                "journal holds batches the agent never re-proposed — replay diverged".into(),
            ));
        }

        let wall_seconds = start.elapsed().as_secs_f64();
        rec.gauge("wall_seconds", wall_seconds);
        rec.gauge("best_reward", best_reward);
        Ok(RunResult {
            agent: agent.name().to_owned(),
            env: eval.env_name().to_owned(),
            best_reward,
            best_action: best_action.unwrap_or_else(|| Action::new(Vec::new())),
            best_observation,
            samples_used,
            wall_seconds,
            reward_history,
            dataset,
            eval_retries,
            eval_failures,
            degraded_samples,
            proxy_screened,
            proxy_admitted,
            proxy_refits: screener.as_deref().map_or(0, |s| s.refits()),
            telemetry: rec.report(),
        })
    }
}

impl Default for SearchLoop {
    fn default() -> Self {
        SearchLoop::new(RunConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::RandomWalker;
    use crate::env::{CountingEnv, Observation};
    use crate::fault::{FaultPlan, FaultyEnv};
    use crate::toy::PeakEnv;

    #[test]
    fn run_respects_sample_budget_exactly() {
        let mut env = CountingEnv::new(PeakEnv::new(&[10, 10], vec![3, 4]));
        let mut agent = RandomWalker::new(env.space().clone(), 1);
        let result =
            SearchLoop::new(RunConfig::with_budget(37).batch(16)).run(&mut agent, &mut env);
        assert_eq!(result.samples_used, 37);
        assert_eq!(env.samples(), 37);
        assert_eq!(result.reward_history.len(), 37);
        assert_eq!(result.dataset.len(), 37);
    }

    #[test]
    fn run_tracks_best_design() {
        let mut env = PeakEnv::new(&[6, 6], vec![2, 5]);
        let mut agent = RandomWalker::new(env.space().clone(), 9);
        let result = SearchLoop::new(RunConfig::with_budget(200)).run(&mut agent, &mut env);
        // With 200 samples in a 36-point space, the peak is found w.h.p.
        assert_eq!(result.best_reward, 1.0);
        assert_eq!(result.best_action.as_slice(), &[2, 5]);
        assert_eq!(result.best_observation, vec![0.0]);
        assert_eq!(result.agent, "rw");
        assert_eq!(result.env, "peak");
        assert_eq!(result.eval_failures, 0);
        assert_eq!(result.eval_retries, 0);
        assert_eq!(result.degraded_samples, 0);
    }

    #[test]
    fn best_so_far_is_monotone() {
        let mut env = PeakEnv::new(&[20], vec![11]);
        let mut agent = RandomWalker::new(env.space().clone(), 1);
        let result = SearchLoop::new(RunConfig::with_budget(50)).run(&mut agent, &mut env);
        let curve = result.best_so_far();
        assert_eq!(curve.len(), 50);
        assert!(curve.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*curve.last().unwrap(), result.best_reward);
    }

    #[test]
    fn samples_to_reach_reports_first_crossing() {
        let mut env = PeakEnv::new(&[12, 12], vec![4, 9]);
        let mut agent = RandomWalker::new(env.space().clone(), 3);
        let result = SearchLoop::new(RunConfig::with_budget(400)).run(&mut agent, &mut env);
        let at_half = result.samples_to_reach(0.5).expect("reached 0.5");
        let at_best = result
            .samples_to_reach(result.best_reward)
            .expect("reached its own best");
        assert!(at_half <= at_best);
        assert_eq!(
            result.reward_history[at_best as usize - 1],
            result.best_reward
        );
        assert!(result.samples_to_reach(2.0).is_none()); // reward caps at 1
    }

    #[test]
    fn recording_can_be_disabled() {
        let mut env = PeakEnv::new(&[5], vec![0]);
        let mut agent = RandomWalker::new(env.space().clone(), 2);
        let result =
            SearchLoop::new(RunConfig::with_budget(10).record(false)).run(&mut agent, &mut env);
        assert!(result.dataset.is_empty());
        assert!(result.reward_history.is_empty());
        assert!(result.best_reward.is_finite());
    }

    #[test]
    fn empty_proposal_stops_early() {
        struct Mute;
        impl Agent for Mute {
            fn name(&self) -> &str {
                "mute"
            }
            fn propose(&mut self, _max: usize) -> Vec<Action> {
                Vec::new()
            }
            fn observe(&mut self, _results: &[(Action, StepResult)]) {}
        }
        let mut env = PeakEnv::new(&[5], vec![0]);
        let mut agent = Mute;
        let result = SearchLoop::new(RunConfig::with_budget(100)).run(&mut agent, &mut env);
        assert_eq!(result.samples_used, 0);
        assert_eq!(result.best_reward, f64::NEG_INFINITY);
        assert!(result.best_action.is_empty());
        let _ = Observation::new(vec![]);
    }

    #[test]
    fn oversized_batches_are_truncated_to_budget() {
        struct Flood;
        impl Agent for Flood {
            fn name(&self) -> &str {
                "flood"
            }
            fn propose(&mut self, _max: usize) -> Vec<Action> {
                // Misbehaving agent ignores max_batch entirely.
                (0..1000).map(|i| Action::new(vec![i % 5])).collect()
            }
            fn observe(&mut self, _results: &[(Action, StepResult)]) {}
        }
        let mut env = CountingEnv::new(PeakEnv::new(&[5], vec![0]));
        let mut agent = Flood;
        let result = SearchLoop::new(RunConfig::with_budget(42)).run(&mut agent, &mut env);
        assert_eq!(result.samples_used, 42);
        assert_eq!(env.samples(), 42);
    }

    #[test]
    fn auto_batch_follows_the_agent_hint() {
        struct Hinted {
            asked: Vec<usize>,
        }
        impl Agent for Hinted {
            fn name(&self) -> &str {
                "hinted"
            }
            fn propose(&mut self, max_batch: usize) -> Vec<Action> {
                self.asked.push(max_batch);
                (0..max_batch).map(|i| Action::new(vec![i % 5])).collect()
            }
            fn observe(&mut self, _results: &[(Action, StepResult)]) {}
            fn batch_hint(&self) -> Option<usize> {
                Some(7)
            }
        }
        let mut env = PeakEnv::new(&[5], vec![0]);
        let mut agent = Hinted { asked: Vec::new() };
        // batch == 0 → auto: the agent's hint of 7 drives proposals.
        let result = SearchLoop::new(RunConfig::with_budget(20).batch(0)).run(&mut agent, &mut env);
        assert_eq!(result.samples_used, 20);
        assert_eq!(agent.asked, vec![7, 7, 6]); // last capped by budget
    }

    #[test]
    fn auto_batch_without_hint_falls_back_to_default() {
        let mut env = PeakEnv::new(&[5], vec![0]);
        let mut agent = RandomWalker::new(env.space().clone(), 1);
        let result = SearchLoop::new(RunConfig::with_budget(40).batch(0)).run(&mut agent, &mut env);
        assert_eq!(result.samples_used, 40);
    }

    #[test]
    fn pooled_run_is_bit_identical_to_serial() {
        let serial = {
            let mut env = PeakEnv::new(&[16, 16], vec![5, 9]);
            let mut agent = RandomWalker::new(env.space().clone(), 12);
            SearchLoop::new(RunConfig::with_budget(128)).run(&mut agent, &mut env)
        };
        for jobs in [1, 2, 4] {
            let env = PeakEnv::new(&[16, 16], vec![5, 9]);
            let mut agent = RandomWalker::new(env.space().clone(), 12);
            let pooled =
                SearchLoop::new(RunConfig::with_budget(128).jobs(jobs)).run_pooled(&mut agent, env);
            assert_eq!(pooled.best_reward, serial.best_reward, "jobs={jobs}");
            assert_eq!(pooled.best_action, serial.best_action, "jobs={jobs}");
            assert_eq!(pooled.reward_history, serial.reward_history, "jobs={jobs}");
            assert_eq!(pooled.dataset.len(), serial.dataset.len(), "jobs={jobs}");
        }
    }

    // --- proxy screening ---------------------------------------------------

    use crate::screen::ScreenPolicy;

    /// A deterministic model-free screener: predicts from a fixed hash
    /// of the action indices, warms up on the observed sample count.
    /// Exercises every driver-side screening path without a forest.
    struct MockScreen {
        policy: ScreenPolicy,
        seen: u64,
        refits: u64,
        revalidations: u64,
    }

    impl MockScreen {
        fn new(policy: ScreenPolicy) -> Self {
            MockScreen {
                policy,
                seen: 0,
                refits: 0,
                revalidations: 0,
            }
        }

        fn score(action: &Action) -> f64 {
            action
                .as_slice()
                .iter()
                .enumerate()
                .map(|(i, &v)| ((v * 31 + i * 7) % 97) as f64)
                .sum()
        }
    }

    impl Screener for MockScreen {
        fn policy(&self) -> ScreenPolicy {
            self.policy
        }
        fn set_telemetry(&mut self, _recorder: &crate::telemetry::Recorder) {}
        fn observe(&mut self, actions: &[Action], rewards: &[f64]) {
            assert_eq!(actions.len(), rewards.len());
            let before = self.seen / self.policy.refit_every;
            self.seen += actions.len() as u64;
            if self.seen >= self.policy.warmup && self.seen / self.policy.refit_every > before {
                self.refits += 1;
            }
        }
        fn is_ready(&self) -> bool {
            self.seen >= self.policy.warmup
        }
        fn predict(&mut self, candidates: &[Action], means: &mut Vec<f64>, vars: &mut Vec<f64>) {
            means.clear();
            vars.clear();
            for c in candidates {
                means.push(Self::score(c));
                vars.push(Self::score(c) % 13.0);
            }
        }
        fn revalidate(&mut self, predicted: &[f64], actual: &[f64]) {
            assert_eq!(predicted.len(), actual.len());
            self.revalidations += 1;
        }
        fn refits(&self) -> u64 {
            self.refits
        }
    }

    #[test]
    fn screened_run_respects_budget_and_admits_a_subset() {
        let mut env = CountingEnv::new(PeakEnv::new(&[16, 16], vec![5, 9]));
        let mut agent = RandomWalker::new(env.space().clone(), 12);
        let mut screen = MockScreen::new(ScreenPolicy::default().warmup(32).revalidate_every(0));
        let result = SearchLoop::new(RunConfig::with_budget(96).batch(16)).run_screened(
            &mut agent,
            &mut env,
            &mut screen,
        );
        assert_eq!(result.samples_used, 96, "budget is exact under screening");
        assert_eq!(env.samples(), 96, "only admitted samples hit the simulator");
        assert_eq!(result.reward_history.len(), 96);
        assert!(result.proxy_screened > 0, "screening engaged after warmup");
        assert!(
            result.proxy_admitted < result.proxy_screened,
            "admitted {} of {} proposed",
            result.proxy_admitted,
            result.proxy_screened
        );
        // Warm-up samples (32) plus top-k+explore admissions per batch.
        assert_eq!(result.proxy_admitted, 96 - 32);
    }

    #[test]
    fn screened_run_is_bit_identical_serial_vs_pooled() {
        let reference = {
            let mut env = PeakEnv::new(&[16, 16], vec![5, 9]);
            let mut agent = RandomWalker::new(env.space().clone(), 3);
            let mut screen = MockScreen::new(ScreenPolicy::default().warmup(32));
            SearchLoop::new(RunConfig::with_budget(80)).run_screened(
                &mut agent,
                &mut env,
                &mut screen,
            )
        };
        for jobs in [1, 2, 4] {
            let env = PeakEnv::new(&[16, 16], vec![5, 9]);
            let mut agent = RandomWalker::new(env.space().clone(), 3);
            let mut screen = MockScreen::new(ScreenPolicy::default().warmup(32));
            let pooled = SearchLoop::new(RunConfig::with_budget(80).jobs(jobs))
                .run_screened_pooled(&mut agent, env, &mut screen);
            assert_eq!(dewalled(pooled), dewalled(reference.clone()), "jobs={jobs}");
        }
    }

    #[test]
    fn revalidation_batches_bypass_the_screen_on_schedule() {
        let mut env = PeakEnv::new(&[16, 16], vec![5, 9]);
        let mut agent = RandomWalker::new(env.space().clone(), 7);
        let mut screen = MockScreen::new(ScreenPolicy::default().warmup(16).revalidate_every(2));
        let result = SearchLoop::new(RunConfig::with_budget(200).batch(16)).run_screened(
            &mut agent,
            &mut env,
            &mut screen,
        );
        assert_eq!(result.samples_used, 200);
        assert!(screen.revalidations > 0, "revalidation cadence must fire");
        // Every second screened batch admits all candidates, so the
        // admitted total exceeds the pure top-k+explore rate.
        assert!(result.proxy_admitted > 0);
    }

    #[test]
    fn screened_resumable_run_resumes_bit_identically() {
        let config = RunConfig::with_budget(120).batch(16);
        let policy = ScreenPolicy::default().warmup(32).revalidate_every(3);
        let reference = {
            let mut env = PeakEnv::new(&[16, 16], vec![5, 9]);
            let mut agent = RandomWalker::new(env.space().clone(), 21);
            let mut screen = MockScreen::new(policy);
            SearchLoop::new(config.clone()).run_screened(&mut agent, &mut env, &mut screen)
        };
        assert!(reference.proxy_screened > 0);

        let path = temp_journal("screened-resume");
        {
            let mut env = PeakEnv::new(&[16, 16], vec![5, 9]);
            let mut agent = RandomWalker::new(env.space().clone(), 21);
            let mut screen = MockScreen::new(policy);
            SearchLoop::new(config.clone())
                .run_screened_resumable(&mut agent, &mut env, &mut screen, &path)
                .unwrap();
        }
        let full = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = full.lines().collect();
        // Cut at several prefixes, including ones that land between a
        // batch record and its screen record.
        for keep in [3, lines.len() / 2, lines.len() - 2] {
            let mut prefix = lines[..keep].join("\n");
            prefix.push('\n');
            std::fs::write(&path, prefix).unwrap();
            let mut env = PeakEnv::new(&[16, 16], vec![5, 9]);
            let mut agent = RandomWalker::new(env.space().clone(), 21);
            let mut screen = MockScreen::new(policy);
            let resumed = SearchLoop::new(config.clone())
                .run_screened_resumable(&mut agent, &mut env, &mut screen, &path)
                .unwrap();
            assert_eq!(
                dewalled(resumed),
                dewalled(reference.clone()),
                "cut at {keep} of {}",
                lines.len()
            );
        }
        cleanup_journal(&path);
    }

    #[test]
    fn screened_journal_rejects_a_proxy_off_resume() {
        let config = RunConfig::with_budget(96).batch(16);
        let path = temp_journal("screened-mismatch");
        {
            let mut env = PeakEnv::new(&[16, 16], vec![5, 9]);
            let mut agent = RandomWalker::new(env.space().clone(), 21);
            let mut screen = MockScreen::new(ScreenPolicy::default().warmup(16));
            SearchLoop::new(config.clone())
                .run_screened_resumable(&mut agent, &mut env, &mut screen, &path)
                .unwrap();
        }
        let mut env = PeakEnv::new(&[16, 16], vec![5, 9]);
        let mut agent = RandomWalker::new(env.space().clone(), 21);
        // The oversampled proposals cannot replay under a plain run, so
        // the resume fails loudly instead of silently diverging.
        let err = SearchLoop::new(config)
            .run_resumable(&mut agent, &mut env, &path)
            .unwrap_err();
        assert!(err.to_string().contains("diverged"), "{err}");
        cleanup_journal(&path);
    }

    // --- fault tolerance ---------------------------------------------------

    #[test]
    fn retry_policy_builders_compose() {
        let policy = RetryPolicy::new(5).backoff_ms(20).penalty(-3.0);
        assert_eq!(policy.max_retries, 5);
        assert_eq!(policy.backoff_ms, 20);
        assert_eq!(policy.penalty, -3.0);
        assert_eq!(RetryPolicy::default().max_retries, 2);
        assert_eq!(RetryPolicy::default().backoff_ms, 0);
        assert_eq!(RetryPolicy::default().penalty, -1.0);
    }

    #[test]
    fn zero_fault_wrapper_is_bit_identical_to_plain_run() {
        let plain = {
            let mut env = PeakEnv::new(&[16, 16], vec![5, 9]);
            let mut agent = RandomWalker::new(env.space().clone(), 12);
            SearchLoop::new(RunConfig::with_budget(96)).run(&mut agent, &mut env)
        };
        let mut env = FaultyEnv::new(PeakEnv::new(&[16, 16], vec![5, 9]), FaultPlan::new(7));
        let mut agent = RandomWalker::new(env.space().clone(), 12);
        let faulty = SearchLoop::new(RunConfig::with_budget(96)).run(&mut agent, &mut env);
        assert_eq!(faulty.best_reward, plain.best_reward);
        assert_eq!(faulty.best_action, plain.best_action);
        assert_eq!(faulty.reward_history, plain.reward_history);
        assert_eq!(faulty.dataset, plain.dataset);
        assert_eq!(faulty.eval_failures, 0);
    }

    #[test]
    fn transient_faults_are_retried_without_losing_budget() {
        let plan = FaultPlan::new(21).transient(0.3);
        let mut env = FaultyEnv::new(PeakEnv::new(&[16, 16], vec![5, 9]), plan);
        let mut agent = RandomWalker::new(env.space().clone(), 4);
        let result = SearchLoop::new(RunConfig::with_budget(80)).run(&mut agent, &mut env);
        assert_eq!(result.samples_used, 80);
        assert_eq!(result.reward_history.len(), 80);
        assert!(result.eval_failures > 0, "30% transients must fire");
        assert!(result.eval_retries > 0);
        // The wrapper's own counters corroborate the loop's.
        assert_eq!(result.eval_failures, env.stats().total());
    }

    #[test]
    fn exhausted_retries_degrade_to_the_penalty() {
        let plan = FaultPlan::new(3).transient(1.0); // every attempt fails
        let mut env = FaultyEnv::new(PeakEnv::new(&[8], vec![3]), plan);
        let mut agent = RandomWalker::new(env.space().clone(), 2);
        let config = RunConfig::with_budget(12).retry(RetryPolicy::new(1).penalty(-9.0));
        let result = SearchLoop::new(config).run(&mut agent, &mut env);
        assert_eq!(
            result.samples_used, 12,
            "degraded samples still consume budget"
        );
        assert_eq!(result.degraded_samples, 12);
        assert!(result.reward_history.iter().all(|&r| r == -9.0));
        assert_eq!(result.best_reward, -9.0);
        // Every sample: 1 initial failure + 1 retry failure, all charged.
        assert_eq!(result.eval_retries, 12);
        assert!(result.dataset.transitions().iter().all(|t| !t.feasible));
    }

    #[test]
    fn latched_crashes_recover_through_reset_and_complete_the_budget() {
        let plan = FaultPlan::new(17).transient(0.1).latched(0.08);
        let mut env = FaultyEnv::new(PeakEnv::new(&[16, 16], vec![5, 9]), plan);
        let mut agent = RandomWalker::new(env.space().clone(), 6);
        let result = SearchLoop::new(RunConfig::with_budget(64)).run(&mut agent, &mut env);
        assert_eq!(
            result.samples_used, 64,
            "latched crashes must not abort the run"
        );
        let stats = env.stats();
        assert!(stats.latched > 0, "8% latch rate over 64+ evals must fire");
        assert_eq!(result.eval_failures, stats.total());
        assert!(!env.is_crashed() || stats.latched > 0);
    }

    #[test]
    fn corrupt_metrics_are_retried_like_failures() {
        let plan = FaultPlan::new(29).corrupt(0.4);
        let mut env = FaultyEnv::new(PeakEnv::new(&[16, 16], vec![5, 9]), plan);
        let mut agent = RandomWalker::new(env.space().clone(), 8);
        let result = SearchLoop::new(RunConfig::with_budget(48)).run(&mut agent, &mut env);
        assert_eq!(result.samples_used, 48);
        assert!(env.stats().corrupt > 0);
        // No NaN/Inf ever reaches the report.
        assert!(result.reward_history.iter().all(|r| r.is_finite()));
        assert!(result.best_reward.is_finite());
        assert_eq!(result.eval_failures, env.stats().total());
    }

    #[test]
    fn faulty_pooled_run_completes_and_counts_consistently() {
        let plan = FaultPlan::new(41).transient(0.2).latched(0.02);
        for jobs in [1, 4] {
            let env = FaultyEnv::new(PeakEnv::new(&[16, 16], vec![5, 9]), plan);
            let handle = env.clone();
            let mut agent = RandomWalker::new(env.space().clone(), 13);
            let result =
                SearchLoop::new(RunConfig::with_budget(72).jobs(jobs)).run_pooled(&mut agent, env);
            assert_eq!(result.samples_used, 72, "jobs={jobs}");
            // Replicas share the stats cells, so the wrapper's total
            // matches the loop's counter at any worker count.
            assert_eq!(result.eval_failures, handle.stats().total(), "jobs={jobs}");
        }
    }

    // --- journal / resume --------------------------------------------------

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("archgym-search-{tag}-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(RunJournal::snapshot_path(&path));
        path
    }

    fn cleanup_journal(path: &std::path::Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(RunJournal::snapshot_path(path));
    }

    /// Strip wall-clock (the only nondeterministic field) for equality.
    fn dewalled(mut result: RunResult) -> RunResult {
        result.wall_seconds = 0.0;
        result
    }

    #[test]
    fn fresh_resumable_run_matches_plain_run() {
        let plain = {
            let mut env = PeakEnv::new(&[12, 12], vec![4, 9]);
            let mut agent = RandomWalker::new(env.space().clone(), 5);
            SearchLoop::new(RunConfig::with_budget(50)).run(&mut agent, &mut env)
        };
        let path = temp_journal("fresh");
        let mut env = PeakEnv::new(&[12, 12], vec![4, 9]);
        let mut agent = RandomWalker::new(env.space().clone(), 5);
        let journaled = SearchLoop::new(RunConfig::with_budget(50))
            .run_resumable(&mut agent, &mut env, &path)
            .unwrap();
        assert_eq!(dewalled(journaled), dewalled(plain));
        cleanup_journal(&path);
    }

    #[test]
    fn completed_journal_replays_without_touching_the_simulator() {
        let path = temp_journal("replay");
        let config = RunConfig::with_budget(40);
        let first = {
            let mut env = CountingEnv::new(PeakEnv::new(&[12, 12], vec![4, 9]));
            let mut agent = RandomWalker::new(env.space().clone(), 5);
            SearchLoop::new(config.clone())
                .run_resumable(&mut agent, &mut env, &path)
                .unwrap()
        };
        let mut env = CountingEnv::new(PeakEnv::new(&[12, 12], vec![4, 9]));
        let mut agent = RandomWalker::new(env.space().clone(), 5);
        let replayed = SearchLoop::new(config)
            .run_resumable(&mut agent, &mut env, &path)
            .unwrap();
        assert_eq!(env.samples(), 0, "full replay must not re-evaluate");
        assert_eq!(dewalled(replayed), dewalled(first));
        cleanup_journal(&path);
    }

    #[test]
    fn interrupted_journal_resumes_bit_identically() {
        let reference = {
            let mut env = PeakEnv::new(&[12, 12], vec![4, 9]);
            let mut agent = RandomWalker::new(env.space().clone(), 5);
            SearchLoop::new(RunConfig::with_budget(48)).run(&mut agent, &mut env)
        };
        let path = temp_journal("interrupt");
        {
            let mut env = PeakEnv::new(&[12, 12], vec![4, 9]);
            let mut agent = RandomWalker::new(env.space().clone(), 5);
            SearchLoop::new(RunConfig::with_budget(48))
                .run_resumable(&mut agent, &mut env, &path)
                .unwrap();
        }
        // Simulate a crash: keep only a prefix of the journal, cutting
        // mid-batch (header + batch + a few steps + a partial line).
        let full = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = full.lines().collect();
        let keep = 5.min(lines.len() - 1);
        let mut prefix = lines[..keep].join("\n");
        prefix.push('\n');
        prefix.push_str(&lines[keep][..lines[keep].len() / 2]); // torn write
        std::fs::write(&path, prefix).unwrap();

        let mut env = PeakEnv::new(&[12, 12], vec![4, 9]);
        let mut agent = RandomWalker::new(env.space().clone(), 5);
        let resumed = SearchLoop::new(RunConfig::with_budget(48))
            .run_resumable(&mut agent, &mut env, &path)
            .unwrap();
        assert_eq!(dewalled(resumed), dewalled(reference));
        cleanup_journal(&path);
    }

    #[test]
    fn journal_from_a_different_run_is_rejected() {
        let path = temp_journal("mismatch");
        {
            let mut env = PeakEnv::new(&[12, 12], vec![4, 9]);
            let mut agent = RandomWalker::new(env.space().clone(), 5);
            SearchLoop::new(RunConfig::with_budget(32))
                .run_resumable(&mut agent, &mut env, &path)
                .unwrap();
        }
        let mut env = PeakEnv::new(&[12, 12], vec![4, 9]);
        let mut agent = RandomWalker::new(env.space().clone(), 5);
        let err = SearchLoop::new(RunConfig::with_budget(64))
            .run_resumable(&mut agent, &mut env, &path)
            .unwrap_err();
        assert!(matches!(err, ArchGymError::Journal(_)));
        assert!(err.to_string().contains("different run"), "{err}");
        cleanup_journal(&path);
    }

    #[test]
    fn diverging_replay_is_detected() {
        let path = temp_journal("diverge");
        {
            let mut env = PeakEnv::new(&[12, 12], vec![4, 9]);
            let mut agent = RandomWalker::new(env.space().clone(), 5);
            SearchLoop::new(RunConfig::with_budget(32))
                .run_resumable(&mut agent, &mut env, &path)
                .unwrap();
        }
        // Same configuration, different agent seed → different proposals.
        let mut env = PeakEnv::new(&[12, 12], vec![4, 9]);
        let mut agent = RandomWalker::new(env.space().clone(), 6);
        let err = SearchLoop::new(RunConfig::with_budget(32))
            .run_resumable(&mut agent, &mut env, &path)
            .unwrap_err();
        assert!(err.to_string().contains("diverged"), "{err}");
        cleanup_journal(&path);
    }

    #[test]
    fn resumable_run_with_faults_is_bit_identical_to_uninterrupted() {
        // Transient-only faults with generous retries: nothing degrades,
        // so no cross-process attempt-counter residue can perturb the
        // resumed half (see fault.rs docs).
        let plan = FaultPlan::new(33).transient(0.25);
        let config = RunConfig::with_budget(40).retry(RetryPolicy::new(8));
        let reference = {
            let mut env = FaultyEnv::new(PeakEnv::new(&[12, 12], vec![4, 9]), plan);
            let mut agent = RandomWalker::new(env.space().clone(), 5);
            SearchLoop::new(config.clone()).run(&mut agent, &mut env)
        };
        assert_eq!(
            reference.degraded_samples, 0,
            "test needs degrade-free faults"
        );
        assert!(reference.eval_failures > 0);

        let path = temp_journal("fault-resume");
        {
            let mut env = FaultyEnv::new(PeakEnv::new(&[12, 12], vec![4, 9]), plan);
            let mut agent = RandomWalker::new(env.space().clone(), 5);
            SearchLoop::new(config.clone())
                .run_resumable(&mut agent, &mut env, &path)
                .unwrap();
        }
        let full = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = full.lines().collect();
        let mut prefix = lines[..lines.len() / 2].join("\n");
        prefix.push('\n');
        std::fs::write(&path, prefix).unwrap();

        let mut env = FaultyEnv::new(PeakEnv::new(&[12, 12], vec![4, 9]), plan);
        let mut agent = RandomWalker::new(env.space().clone(), 5);
        let resumed = SearchLoop::new(config)
            .run_resumable(&mut agent, &mut env, &path)
            .unwrap();
        assert_eq!(resumed.best_reward, reference.best_reward);
        assert_eq!(resumed.best_action, reference.best_action);
        assert_eq!(resumed.reward_history, reference.reward_history);
        assert_eq!(resumed.dataset, reference.dataset);
        cleanup_journal(&path);
    }
}
