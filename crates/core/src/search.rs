//! The agent↔environment driver loop.
//!
//! [`SearchLoop`] runs an [`Agent`] against an [`Environment`] under a
//! sample budget (the paper's normalization axis, Section 6.2), recording
//! every interaction into a [`Dataset`] and tracking the best design found.

use crate::agent::Agent;
use crate::env::{Environment, StepResult};
use crate::pool::{BatchEvaluator, EnvPool};
use crate::space::Action;
use crate::trajectory::{Dataset, Transition};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Fallback proposal batch size when neither the config nor the agent
/// pins one down.
const DEFAULT_BATCH: usize = 16;

/// Configuration of one search run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Maximum number of simulator samples the agent may consume — the
    /// paper compares agents at budgets of 100 / 1k / 10k / 100k samples.
    pub sample_budget: u64,
    /// Upper bound on the batch size requested from [`Agent::propose`].
    /// Population-based agents use it as their generation size. `0`
    /// means *auto*: use the agent's [`Agent::batch_hint`] (its whole
    /// generation) when it has one, else 16.
    pub batch: usize,
    /// Record every transition into the run's dataset. Disable for very
    /// long runs where only the best design matters.
    pub record: bool,
    /// Worker threads for in-run batch evaluation via
    /// [`SearchLoop::run_pooled`]: `1` (default) evaluates serially on
    /// the caller's thread, `0` uses every available hardware thread,
    /// `n > 1` fans batches across `n` environment replicas. Results
    /// are bit-identical at any setting.
    pub jobs: usize,
}

impl RunConfig {
    /// A run with the given sample budget, a batch size of 16, and
    /// serial evaluation.
    pub fn with_budget(sample_budget: u64) -> Self {
        RunConfig {
            sample_budget,
            batch: 16,
            record: true,
            jobs: 1,
        }
    }

    /// Override the proposal batch size, builder-style (`0` = auto).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Toggle transition recording, builder-style.
    pub fn record(mut self, record: bool) -> Self {
        self.record = record;
        self
    }

    /// Set in-run evaluation workers, builder-style (`0` = all cores).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::with_budget(1_000)
    }
}

/// Everything a finished run reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Agent identifier.
    pub agent: String,
    /// Environment identifier.
    pub env: String,
    /// Best reward observed.
    pub best_reward: f64,
    /// The action achieving [`RunResult::best_reward`].
    pub best_action: Action,
    /// Observation metrics of the best design.
    pub best_observation: Vec<f64>,
    /// Simulator samples actually consumed.
    pub samples_used: u64,
    /// Wall-clock duration of the run in seconds (the paper's Fig. 8
    /// time-to-completion axis).
    pub wall_seconds: f64,
    /// Reward after each evaluation — the best-so-far curve is derivable
    /// from this; empty when recording was disabled.
    pub reward_history: Vec<f64>,
    /// Every recorded transition (empty when recording was disabled).
    pub dataset: Dataset,
}

impl RunResult {
    /// The best-so-far reward curve (prefix maximum of the history).
    pub fn best_so_far(&self) -> Vec<f64> {
        let mut best = f64::NEG_INFINITY;
        self.reward_history
            .iter()
            .map(|&r| {
                best = best.max(r);
                best
            })
            .collect()
    }

    /// Number of simulator samples spent before the reward first reached
    /// `threshold` — the paper's sample-efficiency metric ("the number of
    /// requisite samples before reaching an optimal solution",
    /// Section 2). `None` if the run never reached it or recording was
    /// disabled.
    pub fn samples_to_reach(&self, threshold: f64) -> Option<u64> {
        self.reward_history
            .iter()
            .position(|&r| r >= threshold)
            .map(|i| i as u64 + 1)
    }
}

/// Drives one agent against one environment.
///
/// ```
/// use archgym_core::agent::RandomWalker;
/// use archgym_core::prelude::*;
/// use archgym_core::search::SearchLoop;
/// # use archgym_core::space::ParamSpace;
/// # struct Toy { space: ParamSpace }
/// # impl Environment for Toy {
/// #     fn name(&self) -> &str { "toy" }
/// #     fn space(&self) -> &ParamSpace { &self.space }
/// #     fn observation_labels(&self) -> Vec<String> { vec!["cost".into()] }
/// #     fn step(&mut self, action: &Action) -> StepResult {
/// #         let x = action.index(0) as f64;
/// #         StepResult::terminal(Observation::new(vec![x]), -(x - 3.0).abs())
/// #     }
/// # }
/// let space = ParamSpace::builder().int("x", 0, 15, 1).build()?;
/// let mut env = Toy { space: space.clone() };
/// let mut agent = RandomWalker::new(space, 0);
/// let result = SearchLoop::new(RunConfig::with_budget(64)).run(&mut agent, &mut env);
/// assert_eq!(result.samples_used, 64);
/// assert!(result.best_reward <= 0.0);
/// # Ok::<(), ArchGymError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SearchLoop {
    config: RunConfig,
}

impl SearchLoop {
    /// Create a driver with the given configuration.
    pub fn new(config: RunConfig) -> Self {
        SearchLoop { config }
    }

    /// The driver's configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Run `agent` against `eval` until the sample budget is exhausted
    /// or the agent stops proposing. Returns the run report.
    ///
    /// `eval` is any [`BatchEvaluator`] — a plain [`Environment`]
    /// (evaluated serially, via the blanket impl) or an [`EnvPool`]
    /// (evaluated in parallel). Both yield bit-identical reports.
    pub fn run<A, E>(&self, agent: &mut A, eval: &mut E) -> RunResult
    where
        A: Agent + ?Sized,
        E: BatchEvaluator + ?Sized,
    {
        let start = Instant::now();
        let mut samples_used = 0u64;
        let mut best_reward = f64::NEG_INFINITY;
        let mut best_action: Option<Action> = None;
        let mut best_observation = Vec::new();
        let mut reward_history = Vec::new();
        let mut dataset = Dataset::new();
        eval.reset_env();
        let batch_cap = match self.config.batch {
            0 => agent.batch_hint().unwrap_or(DEFAULT_BATCH),
            n => n,
        }
        .max(1);

        while samples_used < self.config.sample_budget {
            let remaining = (self.config.sample_budget - samples_used) as usize;
            let mut actions = agent.propose(batch_cap.min(remaining));
            if actions.is_empty() {
                break; // agent converged
            }
            // A misbehaving agent may ignore max_batch; never evaluate
            // past the budget.
            actions.truncate(remaining);
            let step_results = eval.eval_batch(&actions);
            let mut results: Vec<(Action, StepResult)> = Vec::with_capacity(actions.len());
            for (action, result) in actions.into_iter().zip(step_results) {
                samples_used += 1;
                if result.reward > best_reward {
                    best_reward = result.reward;
                    best_action = Some(action.clone());
                    best_observation = result.observation.as_slice().to_vec();
                }
                if self.config.record {
                    reward_history.push(result.reward);
                    dataset.push(Transition::new(
                        eval.env_name(),
                        agent.name(),
                        action.clone(),
                        &result,
                    ));
                }
                results.push((action, result));
            }
            agent.observe(&results);
        }

        RunResult {
            agent: agent.name().to_owned(),
            env: eval.env_name().to_owned(),
            best_reward,
            best_action: best_action.unwrap_or_else(|| Action::new(Vec::new())),
            best_observation,
            samples_used,
            wall_seconds: start.elapsed().as_secs_f64(),
            reward_history,
            dataset,
        }
    }

    /// Run `agent` against `env`, honoring the config's
    /// [`jobs`](RunConfig::jobs) knob: `jobs == 1` evaluates serially,
    /// anything else fans batches across an [`EnvPool`] of cloned
    /// replicas. Takes the environment by value (the pool needs to own
    /// its replicas); the report is bit-identical at any job count.
    pub fn run_pooled<A, E>(&self, agent: &mut A, env: E) -> RunResult
    where
        A: Agent + ?Sized,
        E: Environment + Clone + Send,
    {
        if self.config.jobs == 1 {
            let mut env = env;
            self.run(agent, &mut env)
        } else {
            let mut pool = EnvPool::new(env, self.config.jobs);
            self.run(agent, &mut pool)
        }
    }
}

impl Default for SearchLoop {
    fn default() -> Self {
        SearchLoop::new(RunConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::RandomWalker;
    use crate::env::{CountingEnv, Observation};
    use crate::toy::PeakEnv;

    #[test]
    fn run_respects_sample_budget_exactly() {
        let mut env = CountingEnv::new(PeakEnv::new(&[10, 10], vec![3, 4]));
        let mut agent = RandomWalker::new(env.space().clone(), 1);
        let result =
            SearchLoop::new(RunConfig::with_budget(37).batch(16)).run(&mut agent, &mut env);
        assert_eq!(result.samples_used, 37);
        assert_eq!(env.samples(), 37);
        assert_eq!(result.reward_history.len(), 37);
        assert_eq!(result.dataset.len(), 37);
    }

    #[test]
    fn run_tracks_best_design() {
        let mut env = PeakEnv::new(&[6, 6], vec![2, 5]);
        let mut agent = RandomWalker::new(env.space().clone(), 9);
        let result = SearchLoop::new(RunConfig::with_budget(200)).run(&mut agent, &mut env);
        // With 200 samples in a 36-point space, the peak is found w.h.p.
        assert_eq!(result.best_reward, 1.0);
        assert_eq!(result.best_action.as_slice(), &[2, 5]);
        assert_eq!(result.best_observation, vec![0.0]);
        assert_eq!(result.agent, "rw");
        assert_eq!(result.env, "peak");
    }

    #[test]
    fn best_so_far_is_monotone() {
        let mut env = PeakEnv::new(&[20], vec![11]);
        let mut agent = RandomWalker::new(env.space().clone(), 1);
        let result = SearchLoop::new(RunConfig::with_budget(50)).run(&mut agent, &mut env);
        let curve = result.best_so_far();
        assert_eq!(curve.len(), 50);
        assert!(curve.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*curve.last().unwrap(), result.best_reward);
    }

    #[test]
    fn samples_to_reach_reports_first_crossing() {
        let mut env = PeakEnv::new(&[12, 12], vec![4, 9]);
        let mut agent = RandomWalker::new(env.space().clone(), 3);
        let result = SearchLoop::new(RunConfig::with_budget(400)).run(&mut agent, &mut env);
        let at_half = result.samples_to_reach(0.5).expect("reached 0.5");
        let at_best = result
            .samples_to_reach(result.best_reward)
            .expect("reached its own best");
        assert!(at_half <= at_best);
        assert_eq!(
            result.reward_history[at_best as usize - 1],
            result.best_reward
        );
        assert!(result.samples_to_reach(2.0).is_none()); // reward caps at 1
    }

    #[test]
    fn recording_can_be_disabled() {
        let mut env = PeakEnv::new(&[5], vec![0]);
        let mut agent = RandomWalker::new(env.space().clone(), 2);
        let result =
            SearchLoop::new(RunConfig::with_budget(10).record(false)).run(&mut agent, &mut env);
        assert!(result.dataset.is_empty());
        assert!(result.reward_history.is_empty());
        assert!(result.best_reward.is_finite());
    }

    #[test]
    fn empty_proposal_stops_early() {
        struct Mute;
        impl Agent for Mute {
            fn name(&self) -> &str {
                "mute"
            }
            fn propose(&mut self, _max: usize) -> Vec<Action> {
                Vec::new()
            }
            fn observe(&mut self, _results: &[(Action, StepResult)]) {}
        }
        let mut env = PeakEnv::new(&[5], vec![0]);
        let mut agent = Mute;
        let result = SearchLoop::new(RunConfig::with_budget(100)).run(&mut agent, &mut env);
        assert_eq!(result.samples_used, 0);
        assert_eq!(result.best_reward, f64::NEG_INFINITY);
        assert!(result.best_action.is_empty());
        let _ = Observation::new(vec![]);
    }

    #[test]
    fn oversized_batches_are_truncated_to_budget() {
        struct Flood;
        impl Agent for Flood {
            fn name(&self) -> &str {
                "flood"
            }
            fn propose(&mut self, _max: usize) -> Vec<Action> {
                // Misbehaving agent ignores max_batch entirely.
                (0..1000).map(|i| Action::new(vec![i % 5])).collect()
            }
            fn observe(&mut self, _results: &[(Action, StepResult)]) {}
        }
        let mut env = CountingEnv::new(PeakEnv::new(&[5], vec![0]));
        let mut agent = Flood;
        let result = SearchLoop::new(RunConfig::with_budget(42)).run(&mut agent, &mut env);
        assert_eq!(result.samples_used, 42);
        assert_eq!(env.samples(), 42);
    }

    #[test]
    fn auto_batch_follows_the_agent_hint() {
        struct Hinted {
            asked: Vec<usize>,
        }
        impl Agent for Hinted {
            fn name(&self) -> &str {
                "hinted"
            }
            fn propose(&mut self, max_batch: usize) -> Vec<Action> {
                self.asked.push(max_batch);
                (0..max_batch).map(|i| Action::new(vec![i % 5])).collect()
            }
            fn observe(&mut self, _results: &[(Action, StepResult)]) {}
            fn batch_hint(&self) -> Option<usize> {
                Some(7)
            }
        }
        let mut env = PeakEnv::new(&[5], vec![0]);
        let mut agent = Hinted { asked: Vec::new() };
        // batch == 0 → auto: the agent's hint of 7 drives proposals.
        let result = SearchLoop::new(RunConfig::with_budget(20).batch(0)).run(&mut agent, &mut env);
        assert_eq!(result.samples_used, 20);
        assert_eq!(agent.asked, vec![7, 7, 6]); // last capped by budget
    }

    #[test]
    fn auto_batch_without_hint_falls_back_to_default() {
        let mut env = PeakEnv::new(&[5], vec![0]);
        let mut agent = RandomWalker::new(env.space().clone(), 1);
        let result = SearchLoop::new(RunConfig::with_budget(40).batch(0)).run(&mut agent, &mut env);
        assert_eq!(result.samples_used, 40);
    }

    #[test]
    fn pooled_run_is_bit_identical_to_serial() {
        let serial = {
            let mut env = PeakEnv::new(&[16, 16], vec![5, 9]);
            let mut agent = RandomWalker::new(env.space().clone(), 12);
            SearchLoop::new(RunConfig::with_budget(128)).run(&mut agent, &mut env)
        };
        for jobs in [1, 2, 4] {
            let env = PeakEnv::new(&[16, 16], vec![5, 9]);
            let mut agent = RandomWalker::new(env.space().clone(), 12);
            let pooled =
                SearchLoop::new(RunConfig::with_budget(128).jobs(jobs)).run_pooled(&mut agent, env);
            assert_eq!(pooled.best_reward, serial.best_reward, "jobs={jobs}");
            assert_eq!(pooled.best_action, serial.best_action, "jobs={jobs}");
            assert_eq!(pooled.reward_history, serial.reward_history, "jobs={jobs}");
            assert_eq!(pooled.dataset.len(), serial.dataset.len(), "jobs={jobs}");
        }
    }
}
