//! Hyperparameter sweeps — the machinery behind the "hyperparameter
//! lottery" studies (Section 6.1, Figs. 4–6).
//!
//! A sweep runs one agent family over every assignment of a [`HyperGrid`]
//! (optionally with several seeds per assignment), collects the best reward
//! of each run, and summarizes the distribution. The paper's headline
//! observation — up to 90% interquartile spread, yet at least one winning
//! ticket per agent family — falls out of [`SweepSummary`].

use crate::agent::{Agent, HyperGrid, HyperMap};
use crate::env::Environment;
use crate::error::Result;
use crate::search::{RunConfig, RunResult, SearchLoop};
use crate::stats::{summarize, Summary};
use crate::trajectory::Dataset;
use serde::{Deserialize, Serialize};

/// The outcome of one `(hyperparameter assignment, seed)` run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The hyperparameter assignment of this run.
    pub hyper: HyperMap,
    /// RNG seed used.
    pub seed: u64,
    /// The run report.
    pub result: RunResult,
}

/// All runs of one agent family over a hyperparameter grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Agent family identifier (e.g. `"ga"`).
    pub agent: String,
    /// Environment identifier.
    pub env: String,
    /// Every `(assignment, seed)` outcome.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// Best rewards across all points, in run order.
    pub fn best_rewards(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.result.best_reward).collect()
    }

    /// Distribution summary of best rewards — one box of a Fig. 4 box plot.
    ///
    /// # Panics
    ///
    /// Panics if the sweep is empty.
    pub fn summary(&self) -> SweepSummary {
        let rewards = self.best_rewards();
        let stats = summarize(&rewards);
        let winner = self
            .points
            .iter()
            .max_by(|a, b| {
                a.result
                    .best_reward
                    .partial_cmp(&b.result.best_reward)
                    .expect("NaN reward")
            })
            .expect("empty sweep");
        SweepSummary {
            agent: self.agent.clone(),
            env: self.env.clone(),
            stats,
            winning_hyper: winner.hyper.clone(),
            winning_seed: winner.seed,
        }
    }

    /// The winning run (highest best reward).
    ///
    /// # Panics
    ///
    /// Panics if the sweep is empty.
    pub fn winner(&self) -> &SweepPoint {
        self.points
            .iter()
            .max_by(|a, b| {
                a.result
                    .best_reward
                    .partial_cmp(&b.result.best_reward)
                    .expect("NaN reward")
            })
            .expect("empty sweep")
    }

    /// Merge the recorded transitions of every run into one dataset —
    /// this is the per-agent dataset that Fig. 9 aggregates.
    pub fn merged_dataset(&self) -> Dataset {
        let mut merged = Dataset::new();
        for p in &self.points {
            merged.merge(p.result.dataset.clone());
        }
        merged
    }

    /// Export the sweep as CSV — one row per `(assignment, seed)` run —
    /// for external plotting of the lottery distributions.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_csv<W: std::io::Write>(&self, mut writer: W) -> Result<()> {
        writeln!(
            writer,
            "agent,env,hyper,seed,best_reward,samples_used,wall_seconds"
        )?;
        for p in &self.points {
            writeln!(
                writer,
                "{},{},\"{}\",{},{},{},{}",
                self.agent,
                self.env,
                p.hyper.summary(),
                p.seed,
                p.result.best_reward,
                p.result.samples_used,
                p.result.wall_seconds
            )?;
        }
        Ok(())
    }
}

/// Distribution summary of one agent's sweep — one box of Fig. 4/5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSummary {
    /// Agent family identifier.
    pub agent: String,
    /// Environment identifier.
    pub env: String,
    /// Five-number summary of best rewards over the sweep.
    pub stats: Summary,
    /// The hyperparameter assignment of the best run — the "winning
    /// lottery ticket".
    pub winning_hyper: HyperMap,
    /// Seed of the best run.
    pub winning_seed: u64,
}

/// Runs a hyperparameter sweep for one agent family.
///
/// The caller supplies two factories: one building a fresh environment per
/// run (environments may carry mutable simulator state) and one building
/// the agent from a hyperparameter assignment and seed.
#[derive(Debug, Clone)]
pub struct Sweep {
    run_config: RunConfig,
    seeds: Vec<u64>,
}

impl Sweep {
    /// A sweep executing each assignment once with seed `0`.
    pub fn new(run_config: RunConfig) -> Self {
        Sweep {
            run_config,
            seeds: vec![0],
        }
    }

    /// Run each assignment once per seed, builder-style.
    pub fn seeds<I: IntoIterator<Item = u64>>(mut self, seeds: I) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Execute the sweep.
    ///
    /// # Errors
    ///
    /// Propagates errors from the agent factory (e.g. a grid assignment
    /// with a missing or mistyped hyperparameter).
    pub fn run<E, FE, FA, A>(
        &self,
        agent_name: &str,
        grid: &HyperGrid,
        mut make_env: FE,
        mut make_agent: FA,
    ) -> Result<SweepResult>
    where
        E: Environment,
        A: Agent,
        FE: FnMut() -> E,
        FA: FnMut(&HyperMap, u64) -> Result<A>,
    {
        let mut points = Vec::new();
        let mut env_name = String::new();
        for hyper in grid.iter() {
            for &seed in &self.seeds {
                let mut env = make_env();
                env_name = env.name().to_owned();
                let mut agent = make_agent(&hyper, seed)?;
                let result = SearchLoop::new(self.run_config.clone()).run(&mut agent, &mut env);
                points.push(SweepPoint {
                    hyper: hyper.clone(),
                    seed,
                    result,
                });
            }
        }
        Ok(SweepResult {
            agent: agent_name.to_owned(),
            env: env_name,
            points,
        })
    }
}

/// One elimination round of a successive-halving tune.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HalvingRound {
    /// Sample budget each surviving assignment received this round.
    pub budget: u64,
    /// Assignments evaluated this round (summaries of their best rewards).
    pub survivors: Vec<(HyperMap, f64)>,
}

/// The outcome of a successive-halving hyperparameter tune.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HalvingResult {
    /// Agent family identifier.
    pub agent: String,
    /// Environment identifier.
    pub env: String,
    /// The winning assignment and its final run.
    pub winner_hyper: HyperMap,
    /// The winner's final full-budget run.
    pub winner_result: RunResult,
    /// Per-round elimination history.
    pub rounds: Vec<HalvingRound>,
    /// Simulator samples actually consumed across all rounds.
    pub total_samples: u64,
    /// What a flat grid sweep at the final budget would have consumed.
    pub flat_sweep_samples: u64,
}

impl HalvingResult {
    /// Sample-budget saving relative to a flat sweep at the final budget.
    pub fn savings_factor(&self) -> f64 {
        self.flat_sweep_samples as f64 / self.total_samples.max(1) as f64
    }
}

/// Successive halving over a hyperparameter grid: evaluate every
/// assignment cheaply, keep the best `1/eta` fraction, multiply the
/// budget by `eta`, repeat until one assignment remains.
///
/// The paper observes that finding good hyperparameters "requires a
/// significant amount of resources" and that tuning techniques add
/// another layer of complexity; successive halving is the standard way
/// to spend those simulator samples sub-linearly in grid size.
#[derive(Debug, Clone)]
pub struct SuccessiveHalving {
    initial_budget: u64,
    eta: usize,
    batch: usize,
    seed: u64,
}

impl SuccessiveHalving {
    /// Create a tuner starting each assignment at `initial_budget`
    /// samples, keeping the top `1/eta` each round.
    ///
    /// # Panics
    ///
    /// Panics if `eta < 2` or `initial_budget == 0`.
    pub fn new(initial_budget: u64, eta: usize) -> Self {
        assert!(eta >= 2, "eta must be at least 2");
        assert!(initial_budget > 0, "initial budget must be positive");
        SuccessiveHalving {
            initial_budget,
            eta,
            batch: 16,
            seed: 0,
        }
    }

    /// Override the proposal batch size, builder-style.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Override the per-run seed, builder-style.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run the tune.
    ///
    /// # Errors
    ///
    /// Propagates agent-factory errors; fails on an empty grid.
    pub fn run<E, FE, FA, A>(
        &self,
        agent_name: &str,
        grid: &HyperGrid,
        mut make_env: FE,
        mut make_agent: FA,
    ) -> Result<HalvingResult>
    where
        E: Environment,
        A: Agent,
        FE: FnMut() -> E,
        FA: FnMut(&HyperMap, u64) -> Result<A>,
    {
        let mut candidates: Vec<HyperMap> = grid.iter().collect();
        if candidates.is_empty() {
            return Err(crate::error::ArchGymError::InvalidConfig(
                "successive halving needs a non-empty grid".into(),
            ));
        }
        let grid_size = candidates.len() as u64;
        let mut budget = self.initial_budget;
        let mut rounds = Vec::new();
        let mut total_samples = 0u64;
        let mut env_name = String::new();
        #[allow(unused_assignments)]
        let mut last_results: Vec<RunResult> = Vec::new();

        loop {
            let mut scored: Vec<(HyperMap, RunResult)> = Vec::with_capacity(candidates.len());
            for hyper in &candidates {
                let mut env = make_env();
                env_name = env.name().to_owned();
                let mut agent = make_agent(hyper, self.seed)?;
                let result = SearchLoop::new(
                    RunConfig::with_budget(budget)
                        .batch(self.batch)
                        .record(false),
                )
                .run(&mut agent, &mut env);
                total_samples += result.samples_used;
                scored.push((hyper.clone(), result));
            }
            scored.sort_by(|a, b| {
                b.1.best_reward
                    .partial_cmp(&a.1.best_reward)
                    .expect("NaN reward")
            });
            rounds.push(HalvingRound {
                budget,
                survivors: scored
                    .iter()
                    .map(|(h, r)| (h.clone(), r.best_reward))
                    .collect(),
            });
            let keep = scored.len().div_ceil(self.eta);
            scored.truncate(keep);
            last_results = scored.iter().map(|(_, r)| r.clone()).collect();
            candidates = scored.into_iter().map(|(h, _)| h).collect();
            if candidates.len() <= 1 {
                break;
            }
            budget *= self.eta as u64;
        }

        let winner_hyper = candidates.remove(0);
        let winner_result = last_results.remove(0);
        Ok(HalvingResult {
            agent: agent_name.to_owned(),
            env: env_name,
            winner_hyper,
            winner_result,
            rounds,
            total_samples,
            flat_sweep_samples: grid_size * budget,
        })
    }
}

/// Normalize each agent's mean best reward by the best mean across agents —
/// the y-axis of Fig. 7 ("mean normalized reward").
///
/// Returns `(agent, normalized mean)` pairs in the input order. An all-zero
/// or negative-best field normalizes against the maximum *absolute* mean to
/// keep the scale meaningful.
pub fn mean_normalized_rewards(sweeps: &[SweepResult]) -> Vec<(String, f64)> {
    let means: Vec<(String, f64)> = sweeps
        .iter()
        .map(|s| {
            let rewards = s.best_rewards();
            let mean = if rewards.is_empty() {
                0.0
            } else {
                rewards.iter().sum::<f64>() / rewards.len() as f64
            };
            (s.agent.clone(), mean)
        })
        .collect();
    let denom = means
        .iter()
        .map(|(_, m)| m.abs())
        .fold(0.0f64, f64::max)
        .max(f64::EPSILON);
    means.into_iter().map(|(a, m)| (a, m / denom)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::RandomWalker;
    use crate::toy::PeakEnv;

    fn peak_grid() -> HyperGrid {
        HyperGrid::new().axis("dummy", [1i64, 2, 3])
    }

    #[test]
    fn sweep_runs_grid_times_seeds() {
        let sweep = Sweep::new(RunConfig::with_budget(20)).seeds([1, 2]);
        let result = sweep
            .run(
                "rw",
                &peak_grid(),
                || PeakEnv::new(&[8, 8], vec![1, 6]),
                |_hyper, seed| {
                    Ok(RandomWalker::new(
                        PeakEnv::new(&[8, 8], vec![1, 6]).space().clone(),
                        seed,
                    ))
                },
            )
            .unwrap();
        assert_eq!(result.points.len(), 6);
        assert_eq!(result.agent, "rw");
        assert_eq!(result.env, "peak");
        assert!(result.points.iter().all(|p| p.result.samples_used == 20));
    }

    #[test]
    fn summary_identifies_winner() {
        let sweep = Sweep::new(RunConfig::with_budget(64));
        let result = sweep
            .run(
                "rw",
                &peak_grid(),
                || PeakEnv::new(&[4, 4], vec![3, 3]),
                |hyper, _seed| {
                    // Seed derived from the hyper so runs differ.
                    let seed = hyper.int("dummy")? as u64;
                    Ok(RandomWalker::new(
                        PeakEnv::new(&[4, 4], vec![3, 3]).space().clone(),
                        seed,
                    ))
                },
            )
            .unwrap();
        let summary = result.summary();
        assert_eq!(summary.stats.count, 3);
        assert!(summary.stats.max >= summary.stats.median);
        assert_eq!(result.winner().result.best_reward, summary.stats.max);
        // 64 samples over a 16-point space: the peak is found.
        assert_eq!(summary.stats.max, 1.0);
    }

    #[test]
    fn merged_dataset_accumulates_all_runs() {
        let sweep = Sweep::new(RunConfig::with_budget(10));
        let result = sweep
            .run(
                "rw",
                &peak_grid(),
                || PeakEnv::new(&[5], vec![2]),
                |_h, s| {
                    Ok(RandomWalker::new(
                        PeakEnv::new(&[5], vec![2]).space().clone(),
                        s,
                    ))
                },
            )
            .unwrap();
        assert_eq!(result.merged_dataset().len(), 30);
    }

    #[test]
    fn mean_normalized_rewards_peak_at_one() {
        let sweep = Sweep::new(RunConfig::with_budget(30));
        let a = sweep
            .run(
                "rw-a",
                &peak_grid(),
                || PeakEnv::new(&[6], vec![5]),
                |_h, s| {
                    Ok(RandomWalker::new(
                        PeakEnv::new(&[6], vec![5]).space().clone(),
                        s,
                    ))
                },
            )
            .unwrap();
        let b = sweep
            .run(
                "rw-b",
                &peak_grid(),
                || PeakEnv::new(&[6], vec![5]),
                |_h, s| {
                    Ok(RandomWalker::new(
                        PeakEnv::new(&[6], vec![5]).space().clone(),
                        s + 10,
                    ))
                },
            )
            .unwrap();
        let normalized = mean_normalized_rewards(&[a, b]);
        assert_eq!(normalized.len(), 2);
        let max = normalized.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        assert!(normalized.iter().all(|(_, v)| *v <= 1.0 + 1e-12));
    }

    #[test]
    fn sweep_csv_export_has_one_row_per_run() {
        let sweep = Sweep::new(RunConfig::with_budget(10)).seeds([1, 2]);
        let result = sweep
            .run(
                "rw",
                &peak_grid(),
                || PeakEnv::new(&[5], vec![2]),
                |_h, s| {
                    Ok(RandomWalker::new(
                        PeakEnv::new(&[5], vec![2]).space().clone(),
                        s,
                    ))
                },
            )
            .unwrap();
        let mut buf = Vec::new();
        result.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 6); // header + 3 assignments × 2 seeds
        assert!(lines[0].starts_with("agent,env,hyper"));
        assert!(lines[1].starts_with("rw,peak,"));
    }

    #[test]
    fn successive_halving_eliminates_down_to_one_winner() {
        // A grid where the "dummy" hyperparameter is actually the seed,
        // so assignments genuinely differ in quality.
        let grid = HyperGrid::new().axis("dummy", [1i64, 2, 3, 4, 5, 6, 7, 8]);
        let tuner = SuccessiveHalving::new(8, 2).batch(4);
        let result = tuner
            .run(
                "rw",
                &grid,
                || PeakEnv::new(&[30, 30], vec![17, 3]),
                |hyper, _seed| {
                    let seed = hyper.int("dummy")? as u64;
                    Ok(RandomWalker::new(
                        PeakEnv::new(&[30, 30], vec![17, 3]).space().clone(),
                        seed,
                    ))
                },
            )
            .unwrap();
        // 8 → 4 → 2 → 1 candidates: three evaluation rounds.
        assert_eq!(result.rounds.len(), 3);
        assert_eq!(result.rounds[0].survivors.len(), 8);
        assert_eq!(result.rounds[1].survivors.len(), 4);
        assert_eq!(result.rounds[2].survivors.len(), 2);
        // Budgets escalate geometrically.
        assert_eq!(result.rounds[0].budget, 8);
        assert_eq!(result.rounds[2].budget, 32);
        // Total cost is below a flat final-budget sweep of all 8.
        assert!(result.total_samples < result.flat_sweep_samples);
        assert!(result.savings_factor() > 1.2);
        // The winner is the best of the final round.
        assert_eq!(
            result.winner_result.best_reward,
            result.rounds[2].survivors[0].1
        );
    }

    #[test]
    fn successive_halving_rejects_empty_grid_and_bad_eta() {
        let grid = HyperGrid::new().axis("x", Vec::<i64>::new());
        let tuner = SuccessiveHalving::new(4, 2);
        assert!(tuner
            .run(
                "rw",
                &grid,
                || PeakEnv::new(&[4], vec![1]),
                |_h, s| Ok(RandomWalker::new(
                    PeakEnv::new(&[4], vec![1]).space().clone(),
                    s
                )),
            )
            .is_err());
    }

    #[test]
    #[should_panic(expected = "eta must be at least 2")]
    fn successive_halving_panics_on_eta_one() {
        let _ = SuccessiveHalving::new(4, 1);
    }

    #[test]
    fn agent_factory_errors_propagate() {
        let sweep = Sweep::new(RunConfig::with_budget(10));
        let err = sweep.run(
            "rw",
            &peak_grid(),
            || PeakEnv::new(&[5], vec![2]),
            |hyper, _s| {
                hyper.float("missing")?; // always fails
                Ok(RandomWalker::new(
                    PeakEnv::new(&[5], vec![2]).space().clone(),
                    0,
                ))
            },
        );
        assert!(err.is_err());
    }
}
