//! Hyperparameter sweeps — the machinery behind the "hyperparameter
//! lottery" studies (Section 6.1, Figs. 4–6).
//!
//! A sweep runs one agent family over every assignment of a [`HyperGrid`]
//! (optionally with several seeds per assignment), collects the best reward
//! of each run, and summarizes the distribution. The paper's headline
//! observation — up to 90% interquartile spread, yet at least one winning
//! ticket per agent family — falls out of [`SweepSummary`].
//!
//! Every `(assignment, seed)` run is independent, so both [`Sweep`] and
//! [`SuccessiveHalving`] fan their runs out over an [`Executor`]: pass
//! [`Sweep::jobs`] a worker count (or `0` for every core) and the grid is
//! evaluated in parallel while the results stay in deterministic grid
//! order — a parallel sweep is point-for-point identical to a serial one.

use crate::agent::{Agent, HyperGrid, HyperMap};
use crate::cache::{CachedEnv, EvalCache};
use crate::env::Environment;
use crate::error::Result;
use crate::executor::Executor;
use crate::search::{RunConfig, RunResult, SearchLoop};
use crate::stats::{summarize, Summary};
use crate::trajectory::Dataset;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The outcome of one `(hyperparameter assignment, seed)` run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The hyperparameter assignment of this run.
    pub hyper: HyperMap,
    /// RNG seed used.
    pub seed: u64,
    /// The run report.
    pub result: RunResult,
}

/// All runs of one agent family over a hyperparameter grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Agent family identifier (e.g. `"ga"`).
    pub agent: String,
    /// Environment identifier.
    pub env: String,
    /// Every `(assignment, seed)` outcome.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// Best rewards across all points, in run order.
    pub fn best_rewards(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.result.best_reward).collect()
    }

    /// Distribution summary of best rewards — one box of a Fig. 4 box plot.
    ///
    /// # Panics
    ///
    /// Panics if the sweep is empty.
    pub fn summary(&self) -> SweepSummary {
        let rewards = self.best_rewards();
        let stats = summarize(&rewards);
        let winner = self.winner();
        SweepSummary {
            agent: self.agent.clone(),
            env: self.env.clone(),
            stats,
            winning_hyper: winner.hyper.clone(),
            winning_seed: winner.seed,
        }
    }

    /// The winning run (highest best reward).
    ///
    /// # Panics
    ///
    /// Panics if the sweep is empty.
    pub fn winner(&self) -> &SweepPoint {
        self.points
            .iter()
            .max_by(|a, b| {
                a.result
                    .best_reward
                    .partial_cmp(&b.result.best_reward)
                    .expect("NaN reward")
            })
            .expect("empty sweep")
    }

    /// Merge the recorded transitions of every run into one dataset —
    /// this is the per-agent dataset that Fig. 9 aggregates.
    pub fn merged_dataset(&self) -> Dataset {
        let mut merged = Dataset::new();
        for p in &self.points {
            merged.merge(p.result.dataset.clone());
        }
        merged
    }

    /// Export the sweep as CSV — one row per `(assignment, seed)` run —
    /// for external plotting of the lottery distributions. Embedded
    /// double quotes in the hyperparameter summary are doubled per
    /// RFC 4180 so the quoted field stays well-formed.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_csv<W: std::io::Write>(&self, mut writer: W) -> Result<()> {
        writeln!(
            writer,
            "agent,env,hyper,seed,best_reward,samples_used,wall_seconds"
        )?;
        for p in &self.points {
            writeln!(
                writer,
                "{},{},\"{}\",{},{},{},{}",
                self.agent,
                self.env,
                p.hyper.summary().replace('"', "\"\""),
                p.seed,
                p.result.best_reward,
                p.result.samples_used,
                p.result.wall_seconds
            )?;
        }
        Ok(())
    }
}

/// Distribution summary of one agent's sweep — one box of Fig. 4/5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSummary {
    /// Agent family identifier.
    pub agent: String,
    /// Environment identifier.
    pub env: String,
    /// Five-number summary of best rewards over the sweep.
    pub stats: Summary,
    /// The hyperparameter assignment of the best run — the "winning
    /// lottery ticket".
    pub winning_hyper: HyperMap,
    /// Seed of the best run.
    pub winning_seed: u64,
}

/// Runs a hyperparameter sweep for one agent family.
///
/// The caller supplies two factories: one building a fresh environment per
/// run (environments may carry mutable simulator state) and one building
/// the agent from a hyperparameter assignment and seed. Both are invoked
/// from worker threads when [`Sweep::jobs`] enables parallelism, so they
/// must be `Fn + Sync`; every worker builds its own environment and agent,
/// which keeps runs fully independent.
#[derive(Debug, Clone)]
pub struct Sweep {
    run_config: RunConfig,
    seeds: Vec<u64>,
    jobs: usize,
    cache: Option<Arc<EvalCache>>,
    telemetry: crate::telemetry::Recorder,
}

impl Sweep {
    /// A serial sweep executing each assignment once with seed `0`.
    pub fn new(run_config: RunConfig) -> Self {
        Sweep {
            run_config,
            seeds: vec![0],
            jobs: 1,
            cache: None,
            telemetry: crate::telemetry::Recorder::default(),
        }
    }

    /// Run each assignment once per seed, builder-style.
    pub fn seeds<I: IntoIterator<Item = u64>>(mut self, seeds: I) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Distribute runs over `jobs` worker threads, builder-style.
    /// `0` selects every available core; `1` (the default) runs serially.
    /// Results are in grid order and bit-identical regardless of `jobs`.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Memoize design-point evaluations through a shared [`EvalCache`],
    /// builder-style. Every run (across assignments, seeds and worker
    /// threads) consults the same cache, so revisited configurations
    /// cost a hash lookup instead of a simulation. Only sound when the
    /// environment's `step` is a pure function of the action — true for
    /// all bundled cost models.
    pub fn cache(mut self, cache: Arc<EvalCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Aggregate run telemetry into `recorder`, builder-style. Every run
    /// (across assignments, seeds and worker threads) records into the
    /// same shared cells, so the recorder ends up with sweep-wide totals.
    pub fn telemetry(mut self, recorder: &crate::telemetry::Recorder) -> Self {
        self.telemetry = recorder.clone();
        self
    }

    /// Execute the sweep over every assignment of a grid.
    ///
    /// # Errors
    ///
    /// Propagates errors from the agent factory (e.g. a grid assignment
    /// with a missing or mistyped hyperparameter).
    pub fn run<E, FE, FA, A>(
        &self,
        agent_name: &str,
        grid: &HyperGrid,
        make_env: FE,
        make_agent: FA,
    ) -> Result<SweepResult>
    where
        E: Environment + Clone + Send,
        A: Agent,
        FE: Fn() -> E + Sync,
        FA: Fn(&HyperMap, u64) -> Result<A> + Sync,
    {
        let assignments: Vec<HyperMap> = grid.iter().collect();
        self.run_assignments(agent_name, &assignments, make_env, make_agent)
    }

    /// Execute the sweep over an explicit list of assignments (e.g. a
    /// capped prefix of a grid).
    ///
    /// # Errors
    ///
    /// Propagates errors from the agent factory.
    pub fn run_assignments<E, FE, FA, A>(
        &self,
        agent_name: &str,
        assignments: &[HyperMap],
        make_env: FE,
        make_agent: FA,
    ) -> Result<SweepResult>
    where
        E: Environment + Clone + Send,
        A: Agent,
        FE: Fn() -> E + Sync,
        FA: Fn(&HyperMap, u64) -> Result<A> + Sync,
    {
        let units: Vec<(&HyperMap, u64)> = assignments
            .iter()
            .flat_map(|hyper| self.seeds.iter().map(move |&seed| (hyper, seed)))
            .collect();
        let outcomes = Executor::new(self.jobs).map(
            &units,
            |&(hyper, seed)| -> Result<(String, SweepPoint)> {
                let env = CachedEnv::with_cache(make_env(), self.cache.clone());
                let env_name = env.name().to_owned();
                let mut agent = make_agent(hyper, seed)?;
                let result = SearchLoop::new(self.run_config.clone())
                    .with_telemetry(self.telemetry.clone())
                    .run_pooled(&mut agent, env);
                Ok((
                    env_name,
                    SweepPoint {
                        hyper: hyper.clone(),
                        seed,
                        result,
                    },
                ))
            },
        );

        let mut points = Vec::with_capacity(outcomes.len());
        let mut env_name = String::new();
        for outcome in outcomes {
            let (name, point): (String, SweepPoint) = outcome?;
            env_name = name;
            points.push(point);
        }
        Ok(SweepResult {
            agent: agent_name.to_owned(),
            env: env_name,
            points,
        })
    }
}

/// Successive-halving survivor count: keep the top `1/eta` fraction of
/// `candidates`, rounded up so at least one survives. This is the one
/// elimination rule shared by [`SuccessiveHalving`] and the online
/// racing scheduler ([`crate::race`]).
pub fn halving_keep(candidates: usize, eta: usize) -> usize {
    candidates.div_ceil(eta)
}

/// One elimination round of a successive-halving tune.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HalvingRound {
    /// Sample budget each surviving assignment received this round.
    pub budget: u64,
    /// Assignments evaluated this round (summaries of their best rewards).
    pub survivors: Vec<(HyperMap, f64)>,
}

/// The outcome of a successive-halving hyperparameter tune.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HalvingResult {
    /// Agent family identifier.
    pub agent: String,
    /// Environment identifier.
    pub env: String,
    /// The winning assignment and its final run.
    pub winner_hyper: HyperMap,
    /// The winner's final full-budget run.
    pub winner_result: RunResult,
    /// Per-round elimination history.
    pub rounds: Vec<HalvingRound>,
    /// Simulator samples actually consumed across all rounds.
    pub total_samples: u64,
    /// What a flat grid sweep at the final budget would have consumed.
    pub flat_sweep_samples: u64,
}

impl HalvingResult {
    /// Sample-budget saving relative to a flat sweep at the final budget.
    pub fn savings_factor(&self) -> f64 {
        self.flat_sweep_samples as f64 / self.total_samples.max(1) as f64
    }
}

/// Successive halving over a hyperparameter grid: evaluate every
/// assignment cheaply, keep the best `1/eta` fraction, multiply the
/// budget by `eta`, repeat until one assignment remains.
///
/// The paper observes that finding good hyperparameters "requires a
/// significant amount of resources" and that tuning techniques add
/// another layer of complexity; successive halving is the standard way
/// to spend those simulator samples sub-linearly in grid size. Each
/// round's candidates are independent, so rounds parallelize over
/// [`SuccessiveHalving::jobs`] workers with deterministic results.
#[derive(Debug, Clone)]
pub struct SuccessiveHalving {
    initial_budget: u64,
    eta: usize,
    total: Option<u64>,
    batch: usize,
    seed: u64,
    jobs: usize,
    batch_jobs: usize,
    cache: Option<Arc<EvalCache>>,
}

impl SuccessiveHalving {
    /// Create a tuner starting each assignment at `initial_budget`
    /// samples, keeping the top `1/eta` each round.
    ///
    /// # Panics
    ///
    /// Panics if `eta < 2` or `initial_budget == 0`.
    pub fn new(initial_budget: u64, eta: usize) -> Self {
        assert!(eta >= 2, "eta must be at least 2");
        assert!(initial_budget > 0, "initial budget must be positive");
        SuccessiveHalving {
            initial_budget,
            eta,
            total: None,
            batch: 16,
            seed: 0,
            jobs: 1,
            batch_jobs: 1,
            cache: None,
        }
    }

    /// Pin the tune to an exact *total* sample budget, builder-style.
    /// Per-round budgets are then derived from the racing layer's
    /// [`rung_schedule`](crate::race::rung_schedule) instead of the
    /// classic `initial_budget * eta^round` progression: the schedule
    /// splits `total` over the elimination levels and — crucially —
    /// routes any division remainder into the final winner-only round,
    /// where the classic integer split silently dropped it. The tune
    /// then consumes exactly `total` samples (whenever no agent stops
    /// proposing early).
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    pub fn total_budget(mut self, total: u64) -> Self {
        assert!(total > 0, "total budget must be positive");
        self.total = Some(total);
        self
    }

    /// Override the proposal batch size, builder-style.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Override the per-run seed, builder-style.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Evaluate each round's candidates over `jobs` worker threads,
    /// builder-style. `0` selects every available core; `1` (the
    /// default) runs serially.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Evaluate each *run's* proposal batches over `batch_jobs` workers
    /// (the [`RunConfig::jobs`] knob of the per-round runs),
    /// builder-style. Useful in the late rounds, where few candidates
    /// remain and across-candidate parallelism alone leaves cores idle.
    pub fn batch_jobs(mut self, batch_jobs: usize) -> Self {
        self.batch_jobs = batch_jobs;
        self
    }

    /// Memoize design-point evaluations through a shared [`EvalCache`],
    /// builder-style. Halving is a prime cache customer: surviving
    /// assignments re-explore much of the previous round's territory at
    /// the larger budget.
    pub fn cache(mut self, cache: Arc<EvalCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Run the tune.
    ///
    /// # Errors
    ///
    /// Propagates agent-factory errors; fails on an empty grid.
    pub fn run<E, FE, FA, A>(
        &self,
        agent_name: &str,
        grid: &HyperGrid,
        make_env: FE,
        make_agent: FA,
    ) -> Result<HalvingResult>
    where
        E: Environment + Clone + Send,
        A: Agent,
        FE: Fn() -> E + Sync,
        FA: Fn(&HyperMap, u64) -> Result<A> + Sync,
    {
        let mut candidates: Vec<HyperMap> = grid.iter().collect();
        if candidates.is_empty() {
            return Err(crate::error::ArchGymError::InvalidConfig(
                "successive halving needs a non-empty grid".into(),
            ));
        }
        let executor = Executor::new(self.jobs);
        let grid_size = candidates.len() as u64;
        let mut budget = self.initial_budget;
        // Exact-total mode: per-round budgets come from the racing
        // layer's rung schedule, which routes the division remainder to
        // the final winner-only round instead of dropping it.
        let schedule = self
            .total
            .map(|total| crate::race::rung_schedule(candidates.len(), self.eta, total));
        let mut round_idx = 0usize;
        let mut rounds = Vec::new();
        let mut total_samples = 0u64;
        let mut env_name = String::new();

        // Each iteration evaluates the surviving candidates at the
        // current budget and keeps the top 1/eta; the loop exits by
        // yielding the final round's best run directly.
        let (winner_hyper, winner_result) = loop {
            let round_budget = match &schedule {
                Some(s) => s[round_idx].slice,
                None => budget,
            };
            let round_config = RunConfig::with_budget(round_budget)
                .batch(self.batch)
                .record(false)
                .jobs(self.batch_jobs);
            let outcomes = executor.map(&candidates, |hyper| -> Result<(String, RunResult)> {
                let env = CachedEnv::with_cache(make_env(), self.cache.clone());
                let name = env.name().to_owned();
                let mut agent = make_agent(hyper, self.seed)?;
                let result = SearchLoop::new(round_config.clone()).run_pooled(&mut agent, env);
                Ok((name, result))
            });
            let mut scored: Vec<(HyperMap, RunResult)> = Vec::with_capacity(candidates.len());
            for (hyper, outcome) in candidates.iter().zip(outcomes) {
                let (name, result): (String, RunResult) = outcome?;
                env_name = name;
                total_samples += result.samples_used;
                scored.push((hyper.clone(), result));
            }
            scored.sort_by(|a, b| {
                b.1.best_reward
                    .partial_cmp(&a.1.best_reward)
                    .expect("NaN reward")
            });
            rounds.push(HalvingRound {
                budget: round_budget,
                survivors: scored
                    .iter()
                    .map(|(h, r)| (h.clone(), r.best_reward))
                    .collect(),
            });
            match &schedule {
                // Exact-total mode runs the solo winner round (which
                // holds the remainder) before exiting.
                Some(_) => {
                    if scored.len() == 1 {
                        break scored.remove(0);
                    }
                    scored.truncate(halving_keep(scored.len(), self.eta));
                }
                None => {
                    scored.truncate(halving_keep(scored.len(), self.eta));
                    if scored.len() <= 1 {
                        break scored.remove(0);
                    }
                    budget *= self.eta as u64;
                }
            }
            candidates = scored.into_iter().map(|(h, _)| h).collect();
            round_idx += 1;
        };
        let final_budget = rounds.last().map_or(0, |r| r.budget);

        Ok(HalvingResult {
            agent: agent_name.to_owned(),
            env: env_name,
            winner_hyper,
            winner_result,
            rounds,
            total_samples,
            flat_sweep_samples: grid_size * final_budget,
        })
    }
}

/// Normalize each agent's mean best reward by the best mean across agents —
/// the y-axis of Fig. 7 ("mean normalized reward").
///
/// Returns `(agent, normalized mean)` pairs in the input order. An all-zero
/// or negative-best field normalizes against the maximum *absolute* mean to
/// keep the scale meaningful.
pub fn mean_normalized_rewards(sweeps: &[SweepResult]) -> Vec<(String, f64)> {
    let means: Vec<(String, f64)> = sweeps
        .iter()
        .map(|s| {
            let rewards = s.best_rewards();
            let mean = if rewards.is_empty() {
                0.0
            } else {
                rewards.iter().sum::<f64>() / rewards.len() as f64
            };
            (s.agent.clone(), mean)
        })
        .collect();
    let denom = means
        .iter()
        .map(|(_, m)| m.abs())
        .fold(0.0f64, f64::max)
        .max(f64::EPSILON);
    means.into_iter().map(|(a, m)| (a, m / denom)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::RandomWalker;
    use crate::toy::PeakEnv;

    fn peak_grid() -> HyperGrid {
        HyperGrid::new().axis("dummy", [1i64, 2, 3])
    }

    /// Everything but wall-clock must match point-for-point — the
    /// determinism contract of parallel sweeps.
    fn assert_points_identical(a: &SweepResult, b: &SweepResult) {
        assert_eq!(a.agent, b.agent);
        assert_eq!(a.env, b.env);
        assert_eq!(a.points.len(), b.points.len());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.hyper, pb.hyper);
            assert_eq!(pa.seed, pb.seed);
            assert_eq!(pa.result.agent, pb.result.agent);
            assert_eq!(pa.result.env, pb.result.env);
            assert_eq!(pa.result.best_reward, pb.result.best_reward);
            assert_eq!(pa.result.best_action, pb.result.best_action);
            assert_eq!(pa.result.best_observation, pb.result.best_observation);
            assert_eq!(pa.result.samples_used, pb.result.samples_used);
            assert_eq!(pa.result.reward_history, pb.result.reward_history);
            assert_eq!(pa.result.dataset, pb.result.dataset);
        }
    }

    #[test]
    fn sweep_runs_grid_times_seeds() {
        let sweep = Sweep::new(RunConfig::with_budget(20)).seeds([1, 2]);
        let result = sweep
            .run(
                "rw",
                &peak_grid(),
                || PeakEnv::new(&[8, 8], vec![1, 6]),
                |_hyper, seed| {
                    Ok(RandomWalker::new(
                        PeakEnv::new(&[8, 8], vec![1, 6]).space().clone(),
                        seed,
                    ))
                },
            )
            .unwrap();
        assert_eq!(result.points.len(), 6);
        assert_eq!(result.agent, "rw");
        assert_eq!(result.env, "peak");
        assert!(result.points.iter().all(|p| p.result.samples_used == 20));
    }

    #[test]
    fn parallel_sweep_is_point_identical_to_serial() {
        let run_at = |jobs: usize| {
            Sweep::new(RunConfig::with_budget(40))
                .seeds([1, 2, 3])
                .jobs(jobs)
                .run(
                    "rw",
                    &peak_grid(),
                    || PeakEnv::new(&[9, 9], vec![4, 7]),
                    |hyper, seed| {
                        let offset = hyper.int("dummy")? as u64;
                        Ok(RandomWalker::new(
                            PeakEnv::new(&[9, 9], vec![4, 7]).space().clone(),
                            seed + offset * 100,
                        ))
                    },
                )
                .unwrap()
        };
        let serial = run_at(1);
        for jobs in [2, 4, 0] {
            assert_points_identical(&serial, &run_at(jobs));
        }
    }

    #[test]
    fn cached_sweep_is_point_identical_to_uncached() {
        let run = |cache: Option<Arc<EvalCache>>, jobs: usize| {
            let mut sweep = Sweep::new(RunConfig::with_budget(40))
                .seeds([1, 2, 3])
                .jobs(jobs);
            if let Some(cache) = cache {
                sweep = sweep.cache(cache);
            }
            sweep
                .run(
                    "rw",
                    &peak_grid(),
                    || PeakEnv::new(&[9, 9], vec![4, 7]),
                    |hyper, seed| {
                        let offset = hyper.int("dummy")? as u64;
                        Ok(RandomWalker::new(
                            PeakEnv::new(&[9, 9], vec![4, 7]).space().clone(),
                            seed + offset * 100,
                        ))
                    },
                )
                .unwrap()
        };
        let uncached = run(None, 1);
        // Serial and parallel cached sweeps both match the uncached run.
        for jobs in [1, 4] {
            let cache = Arc::new(EvalCache::new());
            let cached = run(Some(cache.clone()), jobs);
            assert_points_identical(&uncached, &cached);
            let stats = cache.stats();
            // 9 runs × 40 samples over an 81-point space: revisits are
            // guaranteed, so the cache must have served hits.
            assert_eq!(stats.hits + stats.misses, 9 * 40, "jobs={jobs}");
            assert!(stats.hits > 0, "jobs={jobs}");
            assert!(stats.entries <= 81, "jobs={jobs}");
        }
    }

    #[test]
    fn cold_and_warm_cached_sweeps_produce_identical_csv() {
        let cache = Arc::new(EvalCache::new());
        let run = || {
            Sweep::new(RunConfig::with_budget(30))
                .seeds([5, 6])
                .cache(cache.clone())
                .run(
                    "rw",
                    &peak_grid(),
                    || PeakEnv::new(&[8, 8], vec![2, 6]),
                    |_h, seed| {
                        Ok(RandomWalker::new(
                            PeakEnv::new(&[8, 8], vec![2, 6]).space().clone(),
                            seed,
                        ))
                    },
                )
                .unwrap()
        };
        let csv_of = |result: &SweepResult| {
            let mut buf = Vec::new();
            result.write_csv(&mut buf).unwrap();
            // Wall-clock differs run to run; the determinism contract
            // covers everything else, so strip the last CSV column.
            String::from_utf8(buf)
                .unwrap()
                .lines()
                .map(|l| l.rsplit_once(',').unwrap().0.to_owned())
                .collect::<Vec<_>>()
                .join("\n")
        };
        let cold = run();
        let misses_after_cold = cache.stats().misses;
        let warm = run();
        assert_eq!(csv_of(&cold), csv_of(&warm));
        // The warm pass re-asks only already-seen points.
        assert_eq!(cache.stats().misses, misses_after_cold);
        assert!(cache.stats().hits > 0);
    }

    #[test]
    fn cached_halving_matches_uncached() {
        let grid = HyperGrid::new().axis("dummy", [1i64, 2, 3, 4]);
        let run = |cache: Option<Arc<EvalCache>>| {
            let mut tuner = SuccessiveHalving::new(8, 2).batch(4).jobs(2);
            if let Some(cache) = cache {
                tuner = tuner.cache(cache);
            }
            tuner
                .run(
                    "rw",
                    &grid,
                    || PeakEnv::new(&[20, 20], vec![11, 6]),
                    |hyper, _seed| {
                        let seed = hyper.int("dummy")? as u64;
                        Ok(RandomWalker::new(
                            PeakEnv::new(&[20, 20], vec![11, 6]).space().clone(),
                            seed,
                        ))
                    },
                )
                .unwrap()
        };
        let plain = run(None);
        let cache = Arc::new(EvalCache::new());
        let cached = run(Some(cache.clone()));
        assert_eq!(plain.winner_hyper, cached.winner_hyper);
        assert_eq!(
            plain.winner_result.best_reward,
            cached.winner_result.best_reward
        );
        assert_eq!(plain.rounds, cached.rounds);
        assert!(cache.stats().hits + cache.stats().misses > 0);
    }

    #[test]
    fn summary_identifies_winner() {
        let sweep = Sweep::new(RunConfig::with_budget(64));
        let result = sweep
            .run(
                "rw",
                &peak_grid(),
                || PeakEnv::new(&[4, 4], vec![3, 3]),
                |hyper, _seed| {
                    // Seed derived from the hyper so runs differ.
                    let seed = hyper.int("dummy")? as u64;
                    Ok(RandomWalker::new(
                        PeakEnv::new(&[4, 4], vec![3, 3]).space().clone(),
                        seed,
                    ))
                },
            )
            .unwrap();
        let summary = result.summary();
        assert_eq!(summary.stats.count, 3);
        assert!(summary.stats.max >= summary.stats.median);
        assert_eq!(result.winner().result.best_reward, summary.stats.max);
        // 64 samples over a 16-point space: the peak is found.
        assert_eq!(summary.stats.max, 1.0);
    }

    #[test]
    fn merged_dataset_accumulates_all_runs() {
        let sweep = Sweep::new(RunConfig::with_budget(10));
        let result = sweep
            .run(
                "rw",
                &peak_grid(),
                || PeakEnv::new(&[5], vec![2]),
                |_h, s| {
                    Ok(RandomWalker::new(
                        PeakEnv::new(&[5], vec![2]).space().clone(),
                        s,
                    ))
                },
            )
            .unwrap();
        assert_eq!(result.merged_dataset().len(), 30);
    }

    #[test]
    fn run_assignments_matches_full_grid_prefix() {
        let grid = peak_grid();
        let assignments: Vec<HyperMap> = grid.iter().take(2).collect();
        let sweep = Sweep::new(RunConfig::with_budget(15)).seeds([4]);
        let make_env = || PeakEnv::new(&[7], vec![3]);
        let make_agent = |_h: &HyperMap, s: u64| {
            Ok(RandomWalker::new(
                PeakEnv::new(&[7], vec![3]).space().clone(),
                s,
            ))
        };
        let capped = sweep
            .run_assignments("rw", &assignments, make_env, make_agent)
            .unwrap();
        let full = sweep.run("rw", &grid, make_env, make_agent).unwrap();
        assert_eq!(capped.points.len(), 2);
        assert_points_identical(
            &capped,
            &SweepResult {
                agent: full.agent.clone(),
                env: full.env.clone(),
                points: full.points[..2].to_vec(),
            },
        );
    }

    #[test]
    fn mean_normalized_rewards_peak_at_one() {
        let sweep = Sweep::new(RunConfig::with_budget(30));
        let a = sweep
            .run(
                "rw-a",
                &peak_grid(),
                || PeakEnv::new(&[6], vec![5]),
                |_h, s| {
                    Ok(RandomWalker::new(
                        PeakEnv::new(&[6], vec![5]).space().clone(),
                        s,
                    ))
                },
            )
            .unwrap();
        let b = sweep
            .run(
                "rw-b",
                &peak_grid(),
                || PeakEnv::new(&[6], vec![5]),
                |_h, s| {
                    Ok(RandomWalker::new(
                        PeakEnv::new(&[6], vec![5]).space().clone(),
                        s + 10,
                    ))
                },
            )
            .unwrap();
        let normalized = mean_normalized_rewards(&[a, b]);
        assert_eq!(normalized.len(), 2);
        let max = normalized.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        assert!(normalized.iter().all(|(_, v)| *v <= 1.0 + 1e-12));
    }

    #[test]
    fn sweep_csv_export_has_one_row_per_run() {
        let sweep = Sweep::new(RunConfig::with_budget(10)).seeds([1, 2]);
        let result = sweep
            .run(
                "rw",
                &peak_grid(),
                || PeakEnv::new(&[5], vec![2]),
                |_h, s| {
                    Ok(RandomWalker::new(
                        PeakEnv::new(&[5], vec![2]).space().clone(),
                        s,
                    ))
                },
            )
            .unwrap();
        let mut buf = Vec::new();
        result.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 6); // header + 3 assignments × 2 seeds
        assert!(lines[0].starts_with("agent,env,hyper"));
        assert!(lines[1].starts_with("rw,peak,"));
    }

    #[test]
    fn sweep_csv_escapes_embedded_quotes() {
        let mut sweep = Sweep::new(RunConfig::with_budget(5))
            .run(
                "rw",
                &peak_grid(),
                || PeakEnv::new(&[5], vec![2]),
                |_h, s| {
                    Ok(RandomWalker::new(
                        PeakEnv::new(&[5], vec![2]).space().clone(),
                        s,
                    ))
                },
            )
            .unwrap();
        sweep.points[0].hyper.set("label", "say \"hi\"");
        let mut buf = Vec::new();
        sweep.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let row = text.lines().nth(1).unwrap();
        // The embedded quotes are doubled, keeping the field well-formed.
        assert!(row.contains(r#"say ""hi"""#), "{row}");
        // An RFC 4180 parse of the row yields exactly 7 fields.
        let mut fields = 0;
        let mut in_quotes = false;
        for c in row.chars() {
            match c {
                '"' => in_quotes = !in_quotes,
                ',' if !in_quotes => fields += 1,
                _ => {}
            }
        }
        assert!(!in_quotes, "unbalanced quotes: {row}");
        assert_eq!(fields + 1, 7, "{row}");
    }

    #[test]
    fn successive_halving_eliminates_down_to_one_winner() {
        // A grid where the "dummy" hyperparameter is actually the seed,
        // so assignments genuinely differ in quality.
        let grid = HyperGrid::new().axis("dummy", [1i64, 2, 3, 4, 5, 6, 7, 8]);
        let tuner = SuccessiveHalving::new(8, 2).batch(4);
        let result = tuner
            .run(
                "rw",
                &grid,
                || PeakEnv::new(&[30, 30], vec![17, 3]),
                |hyper, _seed| {
                    let seed = hyper.int("dummy")? as u64;
                    Ok(RandomWalker::new(
                        PeakEnv::new(&[30, 30], vec![17, 3]).space().clone(),
                        seed,
                    ))
                },
            )
            .unwrap();
        // 8 → 4 → 2 → 1 candidates: three evaluation rounds.
        assert_eq!(result.rounds.len(), 3);
        assert_eq!(result.rounds[0].survivors.len(), 8);
        assert_eq!(result.rounds[1].survivors.len(), 4);
        assert_eq!(result.rounds[2].survivors.len(), 2);
        // Budgets escalate geometrically.
        assert_eq!(result.rounds[0].budget, 8);
        assert_eq!(result.rounds[2].budget, 32);
        // Total cost is below a flat final-budget sweep of all 8.
        assert!(result.total_samples < result.flat_sweep_samples);
        assert!(result.savings_factor() > 1.2);
        // The winner is the best of the final round.
        assert_eq!(
            result.winner_result.best_reward,
            result.rounds[2].survivors[0].1
        );
    }

    #[test]
    fn parallel_halving_matches_serial() {
        let grid = HyperGrid::new().axis("dummy", [1i64, 2, 3, 4, 5, 6]);
        let run_at = |jobs: usize| {
            SuccessiveHalving::new(8, 2)
                .batch(4)
                .jobs(jobs)
                .run(
                    "rw",
                    &grid,
                    || PeakEnv::new(&[20, 20], vec![11, 6]),
                    |hyper, _seed| {
                        let seed = hyper.int("dummy")? as u64;
                        Ok(RandomWalker::new(
                            PeakEnv::new(&[20, 20], vec![11, 6]).space().clone(),
                            seed,
                        ))
                    },
                )
                .unwrap()
        };
        let serial = run_at(1);
        let parallel = run_at(4);
        assert_eq!(serial.winner_hyper, parallel.winner_hyper);
        assert_eq!(
            serial.winner_result.best_reward,
            parallel.winner_result.best_reward
        );
        assert_eq!(serial.rounds, parallel.rounds);
        assert_eq!(serial.total_samples, parallel.total_samples);
        assert_eq!(serial.flat_sweep_samples, parallel.flat_sweep_samples);
    }

    #[test]
    fn successive_halving_single_candidate_grid_still_reports_a_winner() {
        let grid = HyperGrid::new().axis("dummy", [7i64]);
        let result = SuccessiveHalving::new(16, 2)
            .run(
                "rw",
                &grid,
                || PeakEnv::new(&[10], vec![4]),
                |_h, s| {
                    Ok(RandomWalker::new(
                        PeakEnv::new(&[10], vec![4]).space().clone(),
                        s,
                    ))
                },
            )
            .unwrap();
        assert_eq!(result.rounds.len(), 1);
        assert_eq!(result.winner_hyper.int("dummy").unwrap(), 7);
        assert_eq!(
            result.winner_result.best_reward,
            result.rounds[0].survivors[0].1
        );
    }

    #[test]
    fn successive_halving_rejects_empty_grid_and_bad_eta() {
        let grid = HyperGrid::new().axis("x", Vec::<i64>::new());
        let tuner = SuccessiveHalving::new(4, 2);
        assert!(tuner
            .run(
                "rw",
                &grid,
                || PeakEnv::new(&[4], vec![1]),
                |_h, s| Ok(RandomWalker::new(
                    PeakEnv::new(&[4], vec![1]).space().clone(),
                    s
                )),
            )
            .is_err());
    }

    #[test]
    #[should_panic(expected = "eta must be at least 2")]
    fn successive_halving_panics_on_eta_one() {
        let _ = SuccessiveHalving::new(4, 1);
    }

    #[test]
    fn total_budget_mode_spends_exactly_the_total_remainder_included() {
        // 5 candidates, eta 2 → 3 elimination levels (5, 3, 2, 1 with
        // div_ceil... schedule: 5→3→2→1, 4 levels). 1003 divides into
        // none of them evenly; the classic per-round integer split
        // would drop the remainder, the exact schedule must not.
        let grid = HyperGrid::new().axis("restart", [0i64, 1, 2, 3, 4]);
        let total = 1003;
        let result = SuccessiveHalving::new(1, 2)
            .total_budget(total)
            .batch(8)
            .run(
                "rw",
                &grid,
                || PeakEnv::new(&[6, 6], vec![2, 4]),
                |_h, s| {
                    Ok(RandomWalker::new(
                        PeakEnv::new(&[6, 6], vec![2, 4]).space().clone(),
                        s,
                    ))
                },
            )
            .unwrap();
        assert_eq!(result.total_samples, total, "remainder budget was dropped");
        // The final round is the solo winner holding the remainder, so
        // it is at least as large as every earlier per-candidate slice.
        let budgets: Vec<u64> = result.rounds.iter().map(|r| r.budget).collect();
        assert_eq!(result.rounds.last().unwrap().survivors.len(), 1);
        for pair in budgets.windows(2) {
            assert!(pair[1] >= pair[0], "round budgets must be monotone");
        }
    }

    #[test]
    fn agent_factory_errors_propagate() {
        let sweep = Sweep::new(RunConfig::with_budget(10));
        let err = sweep.run(
            "rw",
            &peak_grid(),
            || PeakEnv::new(&[5], vec![2]),
            |hyper, _s| {
                hyper.float("missing")?; // always fails
                Ok(RandomWalker::new(
                    PeakEnv::new(&[5], vec![2]).space().clone(),
                    0,
                ))
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn parallel_agent_factory_errors_propagate() {
        let sweep = Sweep::new(RunConfig::with_budget(10)).jobs(4).seeds([1, 2]);
        let err = sweep.run(
            "rw",
            &peak_grid(),
            || PeakEnv::new(&[5], vec![2]),
            |hyper, _s| {
                hyper.float("missing")?; // always fails
                Ok(RandomWalker::new(
                    PeakEnv::new(&[5], vec![2]).space().clone(),
                    0,
                ))
            },
        );
        assert!(err.is_err());
    }
}
