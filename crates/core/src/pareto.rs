//! Pareto-front extraction for multi-objective design spaces.
//!
//! Scalar rewards collapse trade-offs into one number; when the user-
//! defined target is genuinely multi-objective (latency *and* power
//! *and* area, as in FARSIGym's budgets), the exploration dataset's
//! Pareto-optimal designs are the artifact an architect actually wants.
//! All comparisons here treat every metric as **minimized**; negate a
//! metric to maximize it.

use crate::trajectory::Dataset;

/// Whether `a` dominates `b`: no metric worse, at least one strictly
/// better (both minimized).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut strictly_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Indices of the Pareto-optimal points (minimization, duplicates kept).
///
/// `O(n²)` pairwise filtering — fine for exploration datasets of up to a
/// few hundred thousand points.
pub fn pareto_front(points: &[Vec<f64>]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && dominates(other, &points[i]))
        })
        .collect()
}

/// The Pareto front of a dataset over selected observation metrics
/// (all minimized). Returns indices into `dataset.transitions()`.
///
/// Infeasible transitions are excluded — their observations are
/// placeholders, not real costs.
pub fn dataset_pareto_front(dataset: &Dataset, metrics: &[usize]) -> Vec<usize> {
    let candidates: Vec<(usize, Vec<f64>)> = dataset
        .iter()
        .enumerate()
        .filter(|(_, t)| t.feasible)
        .map(|(i, t)| (i, metrics.iter().map(|&m| t.observation[m]).collect()))
        .collect();
    let points: Vec<Vec<f64>> = candidates.iter().map(|(_, p)| p.clone()).collect();
    pareto_front(&points)
        .into_iter()
        .map(|k| candidates[k].0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{Observation, StepResult};
    use crate::space::Action;
    use crate::trajectory::Transition;

    #[test]
    fn dominance_semantics() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0])); // trade-off
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0])); // equal
    }

    #[test]
    fn front_of_a_convex_trade_off() {
        let points = vec![
            vec![1.0, 5.0], // front
            vec![2.0, 3.0], // front
            vec![4.0, 1.0], // front
            vec![3.0, 4.0], // dominated by (2,3)
            vec![5.0, 5.0], // dominated by everything
        ];
        assert_eq!(pareto_front(&points), vec![0, 1, 2]);
    }

    #[test]
    fn single_point_is_its_own_front() {
        assert_eq!(pareto_front(&[vec![3.0]]), vec![0]);
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn dataset_front_skips_infeasible_points() {
        let mut d = Dataset::new();
        let mut push = |obs: Vec<f64>, feasible: bool| {
            let mut result = StepResult::terminal(Observation::new(obs), 0.0);
            result.feasible = feasible;
            d.push(Transition::new("toy", "rw", Action::new(vec![0]), &result));
        };
        push(vec![1.0, 5.0], true); // 0: front
        push(vec![0.0, 0.0], false); // 1: would dominate all, but infeasible
        push(vec![2.0, 3.0], true); // 2: front
        push(vec![3.0, 4.0], true); // 3: dominated by 2
        assert_eq!(dataset_pareto_front(&d, &[0, 1]), vec![0, 2]);
    }

    #[test]
    fn duplicate_optima_are_all_kept() {
        let points = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        assert_eq!(pareto_front(&points), vec![0, 1]);
    }
}
