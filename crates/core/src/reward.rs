//! Reward / fitness formulations (the paper's Table 3).
//!
//! Three formulations appear in the paper:
//!
//! * `r_x = X_target / |X_target − X_obs|` — DRAMGym and TimeloopGym, which
//!   drive a metric toward a user-defined *target specification* (a design is
//!   "optimal" as soon as it meets the target, Section 1 footnote 2);
//! * `r_x = 1 / X` — MaestroGym, plain minimization;
//! * `distance-to-budget = Σ_m α · (D_m − B_m)/B_m` — FARSIGym, which sums
//!   normalized budget overshoots over {performance, power, area} (lower is
//!   better, so the reward is its negation).
//!
//! Multi-metric objectives combine per-metric terms; the paper's "joint
//! latency + power" DRAM objective is the product of the two target ratios.

use crate::env::Observation;
use serde::{Deserialize, Serialize};

/// Which observation components an objective cares about, and how.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RewardSpec {
    /// `r = Π_i target_i / |target_i − obs_i|`, capped at [`RewardSpec::MAX_TERM`]
    /// per term when the observation hits the target exactly.
    ///
    /// `terms` pairs an observation index with its target value.
    TargetRatio {
        /// `(observation index, target value)` pairs.
        terms: Vec<(usize, f64)>,
    },
    /// `r = 1 / obs_i` — minimize a single metric.
    Inverse {
        /// Observation index to minimize.
        metric: usize,
    },
    /// `r = −Σ_i α_i · max(0, (obs_i − budget_i) / budget_i)` — FARSI's
    /// distance-to-budget, negated so that higher is better and a design
    /// meeting all budgets scores exactly `0`.
    DistanceToBudget {
        /// Per-metric budget terms.
        terms: Vec<BudgetTerm>,
    },
    /// `r = −Σ_i w_i · obs_i` — weighted-sum minimization, a common baseline
    /// formulation for joint objectives.
    WeightedSum {
        /// `(observation index, weight)` pairs.
        weights: Vec<(usize, f64)>,
    },
}

/// One budget term of [`RewardSpec::DistanceToBudget`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetTerm {
    /// Observation index the budget applies to.
    pub metric: usize,
    /// The budget value `B_m` (must be positive).
    pub budget: f64,
    /// The weight `α` of this term.
    pub alpha: f64,
}

impl RewardSpec {
    /// Cap applied to a target-ratio term when `obs == target` exactly.
    pub const MAX_TERM: f64 = 1e6;

    /// Evaluate the reward for an observation.
    ///
    /// # Panics
    ///
    /// Panics if a referenced observation index is out of bounds; the
    /// objective and the environment must agree on the observation layout.
    pub fn reward(&self, obs: &Observation) -> f64 {
        match self {
            RewardSpec::TargetRatio { terms } => terms
                .iter()
                .map(|&(i, target)| {
                    let gap = (target - obs.get(i)).abs();
                    if gap <= target / Self::MAX_TERM {
                        Self::MAX_TERM
                    } else {
                        target / gap
                    }
                })
                .product(),
            RewardSpec::Inverse { metric } => {
                let x = obs.get(*metric);
                if x <= 0.0 {
                    0.0
                } else {
                    1.0 / x
                }
            }
            RewardSpec::DistanceToBudget { terms } => -terms
                .iter()
                .map(|t| {
                    let overshoot = (obs.get(t.metric) - t.budget) / t.budget;
                    t.alpha * overshoot.max(0.0)
                })
                .sum::<f64>(),
            RewardSpec::WeightedSum { weights } => {
                -weights.iter().map(|&(i, w)| w * obs.get(i)).sum::<f64>()
            }
        }
    }
}

/// A named optimization objective: a reward formulation plus metadata used
/// by sweep reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    name: String,
    spec: RewardSpec,
}

impl Objective {
    /// Create a named objective.
    pub fn new(name: &str, spec: RewardSpec) -> Self {
        Objective {
            name: name.to_owned(),
            spec,
        }
    }

    /// The objective's display name, e.g. `"low-power"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying reward formulation.
    pub fn spec(&self) -> &RewardSpec {
        &self.spec
    }

    /// Evaluate the reward for an observation.
    pub fn reward(&self, obs: &Observation) -> f64 {
        self.spec.reward(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_ratio_rises_toward_target() {
        let spec = RewardSpec::TargetRatio {
            terms: vec![(0, 1.0)],
        };
        let far = spec.reward(&Observation::new(vec![3.0]));
        let near = spec.reward(&Observation::new(vec![1.1]));
        assert!(near > far);
        assert!((far - 0.5).abs() < 1e-12);
    }

    #[test]
    fn target_ratio_exact_hit_is_capped_not_infinite() {
        let spec = RewardSpec::TargetRatio {
            terms: vec![(0, 2.0)],
        };
        let hit = spec.reward(&Observation::new(vec![2.0]));
        assert_eq!(hit, RewardSpec::MAX_TERM);
        assert!(hit.is_finite());
    }

    #[test]
    fn joint_target_ratio_is_product_of_terms() {
        let spec = RewardSpec::TargetRatio {
            terms: vec![(0, 1.0), (1, 2.0)],
        };
        let r = spec.reward(&Observation::new(vec![2.0, 4.0]));
        assert!((r - 1.0).abs() < 1e-12); // (1/1) * (2/2)
    }

    #[test]
    fn inverse_minimizes() {
        let spec = RewardSpec::Inverse { metric: 0 };
        assert!(
            spec.reward(&Observation::new(vec![2.0])) > spec.reward(&Observation::new(vec![4.0]))
        );
        assert_eq!(spec.reward(&Observation::new(vec![0.0])), 0.0);
    }

    #[test]
    fn distance_to_budget_zero_when_under_budget() {
        let spec = RewardSpec::DistanceToBudget {
            terms: vec![
                BudgetTerm {
                    metric: 0,
                    budget: 10.0,
                    alpha: 1.0,
                },
                BudgetTerm {
                    metric: 1,
                    budget: 5.0,
                    alpha: 1.0,
                },
            ],
        };
        assert_eq!(spec.reward(&Observation::new(vec![9.0, 4.0])), 0.0);
        let over = spec.reward(&Observation::new(vec![20.0, 4.0]));
        assert!((over + 1.0).abs() < 1e-12); // (20-10)/10 = 1 overshoot
    }

    #[test]
    fn weighted_sum_prefers_lower_cost() {
        let spec = RewardSpec::WeightedSum {
            weights: vec![(0, 1.0), (1, 0.5)],
        };
        let cheap = spec.reward(&Observation::new(vec![1.0, 1.0]));
        let costly = spec.reward(&Observation::new(vec![2.0, 2.0]));
        assert!(cheap > costly);
    }

    #[test]
    fn objective_carries_name() {
        let obj = Objective::new("low-power", RewardSpec::Inverse { metric: 1 });
        assert_eq!(obj.name(), "low-power");
        assert_eq!(obj.reward(&Observation::new(vec![0.0, 4.0])), 0.25);
    }
}
