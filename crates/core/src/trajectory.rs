//! Standardized exploration datasets (the paper's Section 3.4 and Fig. 9).
//!
//! Because every agent speaks the same action/observation/reward interface,
//! every agent↔environment interaction can be recorded as a [`Transition`].
//! A [`Dataset`] aggregates transitions across agents, hyperparameter runs
//! and experiments; datasets can be merged (for *size*) or sampled per
//! agent (for *diversity*) and exported to JSON/CSV — the Rust stand-in for
//! the paper's TFDS/RLDS artifacts. Section 7 trains random-forest proxy
//! cost models directly from these datasets.

use crate::codec::{parse_json, Json};
use crate::env::StepResult;
use crate::error::{ArchGymError, Result};
use crate::space::Action;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{Read, Write};

/// One recorded agent↔environment interaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Environment identifier (e.g. `"dram"`).
    pub env: String,
    /// Agent identifier (e.g. `"aco"`). This is the *source* label that
    /// dataset-diversity experiments stratify on.
    pub agent: String,
    /// Index-encoded design point.
    pub action: Action,
    /// Raw observation metrics.
    pub observation: Vec<f64>,
    /// Scalar reward/fitness.
    pub reward: f64,
    /// Whether the design was feasible.
    pub feasible: bool,
}

impl Transition {
    /// Record a step outcome.
    pub fn new(env: &str, agent: &str, action: Action, result: &StepResult) -> Self {
        Transition {
            env: env.to_owned(),
            agent: agent.to_owned(),
            action,
            observation: result.observation.as_slice().to_vec(),
            reward: result.reward,
            feasible: result.feasible,
        }
    }

    /// Encode as an offline-safe JSON value — bit-exact `f64`
    /// round-trips, quoted `"NaN"`/`"inf"`/`"-inf"` for non-finite
    /// values.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("env".into(), Json::Str(self.env.clone())),
            ("agent".into(), Json::Str(self.agent.clone())),
            (
                "action".into(),
                Json::Arr(
                    self.action
                        .iter()
                        .map(|&i| Json::num_u64(i as u64))
                        .collect(),
                ),
            ),
            (
                "observation".into(),
                Json::Arr(self.observation.iter().map(|&v| Json::num_f64(v)).collect()),
            ),
            ("reward".into(), Json::num_f64(self.reward)),
            ("feasible".into(), Json::Bool(self.feasible)),
        ])
    }

    /// Decode a value produced by [`Transition::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on schema mismatches.
    pub fn from_json(value: &Json) -> std::result::Result<Self, String> {
        Ok(Transition {
            env: value.field("env")?.as_str()?.to_owned(),
            agent: value.field("agent")?.as_str()?.to_owned(),
            action: Action::new(
                value
                    .field("action")?
                    .as_arr()?
                    .iter()
                    .map(Json::as_usize)
                    .collect::<std::result::Result<Vec<_>, String>>()?,
            ),
            observation: value
                .field("observation")?
                .as_arr()?
                .iter()
                .map(Json::as_f64)
                .collect::<std::result::Result<Vec<_>, String>>()?,
            reward: value.field("reward")?.as_f64()?,
            feasible: value.field("feasible")?.as_bool()?,
        })
    }

    /// Encode as a single JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().encode()
    }

    /// Decode one JSONL line produced by [`Transition::to_line`].
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::Dataset`] on malformed lines.
    pub fn from_line(line: &str) -> Result<Self> {
        parse_json(line)
            .and_then(|v| Self::from_json(&v))
            .map_err(|e| ArchGymError::Dataset(format!("bad line: {e}")))
    }
}

/// An ordered collection of [`Transition`]s with merge/sample/export
/// utilities — the "ArchGym Dataset" of Fig. 1.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    transitions: Vec<Transition>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Number of transitions.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the dataset holds no transitions.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Append one transition.
    pub fn push(&mut self, transition: Transition) {
        self.transitions.push(transition);
    }

    /// The transitions in insertion order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Iterate over transitions.
    pub fn iter(&self) -> std::slice::Iter<'_, Transition> {
        self.transitions.iter()
    }

    /// Merge another dataset into this one (the *size* axis of Fig. 10).
    pub fn merge(&mut self, other: Dataset) {
        self.transitions.extend(other.transitions);
    }

    /// The set of distinct agent labels present, with per-agent counts —
    /// the *composition* reported in Fig. 10(a).
    pub fn composition(&self) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for t in &self.transitions {
            *counts.entry(t.agent.clone()).or_insert(0) += 1;
        }
        counts
    }

    /// Keep only transitions produced by `agent` (the "single-source"
    /// datasets of Section 7.1).
    pub fn filter_agent(&self, agent: &str) -> Dataset {
        Dataset {
            transitions: self
                .transitions
                .iter()
                .filter(|t| t.agent == agent)
                .cloned()
                .collect(),
        }
    }

    /// Keep only feasible transitions.
    pub fn filter_feasible(&self) -> Dataset {
        Dataset {
            transitions: self
                .transitions
                .iter()
                .filter(|t| t.feasible)
                .cloned()
                .collect(),
        }
    }

    /// Uniformly sample `n` transitions without replacement (clamped to the
    /// dataset size) — the pandas-style sampling used to build the
    /// fixed-size dataset tiers of Fig. 10.
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Dataset {
        let mut picked = self.transitions.clone();
        picked.shuffle(rng);
        picked.truncate(n);
        Dataset {
            transitions: picked,
        }
    }

    /// Split into `(train, test)` with `train_frac` of the data (after a
    /// shuffle) in the training split.
    ///
    /// # Panics
    ///
    /// Panics if `train_frac` is outside `(0, 1)`.
    pub fn split<R: Rng + ?Sized>(&self, train_frac: f64, rng: &mut R) -> (Dataset, Dataset) {
        assert!(
            train_frac > 0.0 && train_frac < 1.0,
            "train_frac {train_frac} outside (0, 1)"
        );
        let mut shuffled = self.transitions.clone();
        shuffled.shuffle(rng);
        let cut = ((shuffled.len() as f64) * train_frac).round() as usize;
        let test = shuffled.split_off(cut.min(shuffled.len()));
        (
            Dataset {
                transitions: shuffled,
            },
            Dataset { transitions: test },
        )
    }

    /// Serialize as JSON-lines (one transition per line) to a writer
    /// via the offline-safe codec with bit-exact float round-trips.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_jsonl<W: Write>(&self, mut writer: W) -> Result<()> {
        for t in &self.transitions {
            writeln!(writer, "{}", t.to_line())?;
        }
        Ok(())
    }

    /// Parse a JSON-lines stream produced by [`Dataset::write_jsonl`].
    ///
    /// Equivalent to [`Dataset::read_jsonl_counting`] with the skip count
    /// discarded: a truncated final line (the artifact a crash mid-write
    /// leaves behind) is silently dropped.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::Dataset`] on malformed lines.
    pub fn read_jsonl<R: Read>(reader: R) -> Result<Dataset> {
        Ok(Self::read_jsonl_counting(reader)?.0)
    }

    /// Parse a JSON-lines stream, tolerating a truncated final line.
    ///
    /// A process killed mid-`write_jsonl` leaves a prefix of the last
    /// record with no trailing newline. If the stream does not end in
    /// `'\n'` and its final line fails to parse, that line is dropped and
    /// counted in the returned skip count instead of aborting the read.
    /// Malformed lines anywhere else — or a malformed final line in a
    /// newline-terminated stream — are still hard errors.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::Dataset`] on malformed complete lines and
    /// propagates I/O failures.
    pub fn read_jsonl_counting<R: Read>(mut reader: R) -> Result<(Dataset, usize)> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        let complete_tail = bytes.last() == Some(&b'\n');
        // A crash can also cut a multi-byte character in half; lossy
        // decoding turns that into a replacement character the tail-line
        // parser then rejects, so the partial record is still skipped.
        let text = String::from_utf8_lossy(&bytes);
        let lines: Vec<&str> = text.lines().collect();
        let mut dataset = Dataset::new();
        let mut skipped = 0;
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match Transition::from_line(line) {
                Ok(t) => dataset.push(t),
                Err(_) if !complete_tail && i + 1 == lines.len() => skipped += 1,
                Err(e) => return Err(e),
            }
        }
        Ok((dataset, skipped))
    }

    /// Serialize as CSV with a header row. Action indices become columns
    /// `a0..a{d-1}` and observation metrics `o0..o{m-1}`; all transitions
    /// must share the same action and observation widths.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::Dataset`] if widths are inconsistent, and
    /// propagates I/O failures.
    pub fn write_csv<W: Write>(&self, mut writer: W) -> Result<()> {
        let Some(first) = self.transitions.first() else {
            return Ok(());
        };
        let (ad, od) = (first.action.len(), first.observation.len());
        let mut header = vec!["env".to_owned(), "agent".to_owned()];
        header.extend((0..ad).map(|i| format!("a{i}")));
        header.extend((0..od).map(|i| format!("o{i}")));
        header.push("reward".into());
        header.push("feasible".into());
        writeln!(writer, "{}", header.join(","))?;
        for t in &self.transitions {
            if t.action.len() != ad || t.observation.len() != od {
                return Err(ArchGymError::Dataset(format!(
                    "inconsistent widths: expected {ad} action / {od} observation columns"
                )));
            }
            let mut row = vec![t.env.clone(), t.agent.clone()];
            row.extend(t.action.iter().map(|i| i.to_string()));
            row.extend(t.observation.iter().map(|v| format!("{v}")));
            row.push(format!("{}", t.reward));
            row.push(format!("{}", t.feasible));
            writeln!(writer, "{}", row.join(","))?;
        }
        Ok(())
    }

    /// Parse a CSV stream produced by [`Dataset::write_csv`].
    ///
    /// Equivalent to [`Dataset::read_csv_counting`] with the skip count
    /// discarded: a truncated final row (the artifact a crash mid-write
    /// leaves behind) is silently dropped.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::Dataset`] on malformed headers or rows.
    pub fn read_csv<R: Read>(reader: R) -> Result<Dataset> {
        Ok(Self::read_csv_counting(reader)?.0)
    }

    /// Parse a CSV stream, tolerating a truncated final row.
    ///
    /// Mirrors [`Dataset::read_jsonl_counting`]: if the stream does not
    /// end in `'\n'` and its final row fails to parse, that row is dropped
    /// and counted in the returned skip count. Malformed complete rows —
    /// and malformed headers — are still hard errors.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::Dataset`] on malformed headers or complete
    /// rows, and propagates I/O failures.
    pub fn read_csv_counting<R: Read>(mut reader: R) -> Result<(Dataset, usize)> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        let complete_tail = bytes.last() == Some(&b'\n');
        let text = String::from_utf8_lossy(&bytes);
        let mut lines = text.lines();
        let Some(header) = lines.next() else {
            return Ok((Dataset::new(), 0));
        };
        let columns: Vec<&str> = header.split(',').collect();
        let n_actions = columns
            .iter()
            .filter(|c| c.starts_with('a') && c[1..].parse::<usize>().is_ok())
            .count();
        let n_obs = columns
            .iter()
            .filter(|c| c.starts_with('o') && c[1..].parse::<usize>().is_ok())
            .count();
        let expected = 2 + n_actions + n_obs + 2;
        if columns.len() != expected
            || columns.first() != Some(&"env")
            || columns.get(1) != Some(&"agent")
        {
            return Err(ArchGymError::Dataset(format!(
                "unrecognized CSV header `{header}`"
            )));
        }
        let rows: Vec<&str> = lines.collect();
        let mut dataset = Dataset::new();
        let mut skipped = 0;
        for (i, line) in rows.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match Self::parse_csv_row(line, i + 2, n_actions, n_obs, expected) {
                Ok(t) => dataset.push(t),
                Err(_) if !complete_tail && i + 1 == rows.len() => skipped += 1,
                Err(e) => return Err(e),
            }
        }
        Ok((dataset, skipped))
    }

    /// Parse one data row of a [`Dataset::write_csv`] stream.
    fn parse_csv_row(
        line: &str,
        lineno: usize,
        n_actions: usize,
        n_obs: usize,
        expected: usize,
    ) -> Result<Transition> {
        let bad = |what: &str| ArchGymError::Dataset(format!("CSV row {lineno}: {what}"));
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != expected {
            return Err(bad("wrong column count"));
        }
        let action: Vec<usize> = fields[2..2 + n_actions]
            .iter()
            .map(|f| f.parse().map_err(|_| bad("bad action index")))
            .collect::<Result<_>>()?;
        let observation: Vec<f64> = fields[2 + n_actions..2 + n_actions + n_obs]
            .iter()
            .map(|f| f.parse().map_err(|_| bad("bad observation value")))
            .collect::<Result<_>>()?;
        let reward: f64 = fields[expected - 2]
            .parse()
            .map_err(|_| bad("bad reward"))?;
        let feasible: bool = fields[expected - 1]
            .parse()
            .map_err(|_| bad("bad feasible flag"))?;
        Ok(Transition {
            env: fields[0].to_owned(),
            agent: fields[1].to_owned(),
            action: Action::new(action),
            observation,
            reward,
            feasible,
        })
    }

    /// Feature/target matrices for proxy-model training: features are the
    /// raw action indices as `f64`, the target is observation metric
    /// `metric`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::Dataset`] on an empty dataset or an
    /// out-of-range metric index.
    pub fn features_targets(&self, metric: usize) -> Result<(Vec<Vec<f64>>, Vec<f64>)> {
        if self.transitions.is_empty() {
            return Err(ArchGymError::Dataset("empty dataset".into()));
        }
        let mut xs = Vec::with_capacity(self.len());
        let mut ys = Vec::with_capacity(self.len());
        for t in &self.transitions {
            if metric >= t.observation.len() {
                return Err(ArchGymError::Dataset(format!(
                    "metric index {metric} out of range ({} metrics)",
                    t.observation.len()
                )));
            }
            xs.push(t.action.iter().map(|&i| i as f64).collect());
            ys.push(t.observation[metric]);
        }
        Ok((xs, ys))
    }

    /// The transition with the highest reward, if any. Ties keep the
    /// earliest transition and NaN rewards are skipped — the same rule
    /// [`SearchLoop`](crate::search::SearchLoop) applies when tracking
    /// its best sample, so on a dataset recorded by a run the two agree
    /// on the winning action, not just the winning reward.
    pub fn best(&self) -> Option<&Transition> {
        let mut best: Option<&Transition> = None;
        for t in &self.transitions {
            if best.map_or(!t.reward.is_nan(), |b| t.reward > b.reward) {
                best = Some(t);
            }
        }
        best
    }
}

impl FromIterator<Transition> for Dataset {
    fn from_iter<I: IntoIterator<Item = Transition>>(iter: I) -> Self {
        Dataset {
            transitions: iter.into_iter().collect(),
        }
    }
}

impl Extend<Transition> for Dataset {
    fn extend<I: IntoIterator<Item = Transition>>(&mut self, iter: I) {
        self.transitions.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Observation;
    use crate::seeded_rng;

    fn transition(agent: &str, reward: f64) -> Transition {
        Transition::new(
            "toy",
            agent,
            Action::new(vec![1, 2]),
            &StepResult::terminal(Observation::new(vec![reward * 2.0, 7.0]), reward),
        )
    }

    fn sample_dataset() -> Dataset {
        let mut d = Dataset::new();
        for i in 0..10 {
            d.push(transition(if i % 2 == 0 { "aco" } else { "ga" }, i as f64));
        }
        d
    }

    #[test]
    fn push_merge_and_composition() {
        let mut d = sample_dataset();
        assert_eq!(d.len(), 10);
        let comp = d.composition();
        assert_eq!(comp["aco"], 5);
        assert_eq!(comp["ga"], 5);
        let mut other = Dataset::new();
        other.push(transition("bo", 1.0));
        d.merge(other);
        assert_eq!(d.len(), 11);
        assert_eq!(d.composition()["bo"], 1);
    }

    #[test]
    fn filter_agent_keeps_only_that_source() {
        let d = sample_dataset();
        let aco = d.filter_agent("aco");
        assert_eq!(aco.len(), 5);
        assert!(aco.iter().all(|t| t.agent == "aco"));
    }

    #[test]
    fn filter_feasible_drops_infeasible() {
        let mut d = sample_dataset();
        let mut bad = transition("rl", 0.0);
        bad.feasible = false;
        d.push(bad);
        assert_eq!(d.filter_feasible().len(), 10);
    }

    #[test]
    fn sample_without_replacement() {
        let d = sample_dataset();
        let mut rng = seeded_rng(3);
        let s = d.sample(4, &mut rng);
        assert_eq!(s.len(), 4);
        let s_all = d.sample(100, &mut rng);
        assert_eq!(s_all.len(), 10);
    }

    #[test]
    fn split_partitions_everything() {
        let d = sample_dataset();
        let mut rng = seeded_rng(5);
        let (train, test) = d.split(0.8, &mut rng);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(train.len(), 8);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1)")]
    fn split_rejects_bad_fraction() {
        let d = sample_dataset();
        let mut rng = seeded_rng(5);
        let _ = d.split(1.0, &mut rng);
    }

    #[test]
    fn jsonl_roundtrip() {
        let d = sample_dataset();
        let mut buf = Vec::new();
        d.write_jsonl(&mut buf).unwrap();
        let back = Dataset::read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn jsonl_rejects_garbage() {
        // Newline-terminated garbage is a *complete* malformed line, not a
        // crash artifact, so it must stay a hard error.
        let err = Dataset::read_jsonl("not json\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ArchGymError::Dataset(_)));
        // Garbage before the final line is always a hard error, even when
        // the stream also has a truncated tail.
        let err = Dataset::read_jsonl_counting("not json\nalso not".as_bytes()).unwrap_err();
        assert!(matches!(err, ArchGymError::Dataset(_)));
    }

    #[test]
    fn jsonl_reader_skips_truncated_final_line() {
        let d = sample_dataset();
        let mut buf = Vec::new();
        d.write_jsonl(&mut buf).unwrap();
        // Chop into the last record, as a crash mid-write would.
        let cut = buf.len() - 7;
        let (back, skipped) = Dataset::read_jsonl_counting(&buf[..cut]).unwrap();
        assert_eq!(skipped, 1);
        assert_eq!(back.len(), d.len() - 1);
        assert_eq!(back.transitions(), &d.transitions()[..d.len() - 1]);
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let d = sample_dataset();
        let mut buf = Vec::new();
        d.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 11);
        assert_eq!(lines[0], "env,agent,a0,a1,o0,o1,reward,feasible");
        assert!(lines[1].starts_with("toy,aco,1,2,"));
    }

    #[test]
    fn csv_roundtrip() {
        let d = sample_dataset();
        let mut buf = Vec::new();
        d.write_csv(&mut buf).unwrap();
        let back = Dataset::read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), d.len());
        for (a, b) in d.iter().zip(back.iter()) {
            assert_eq!(a.env, b.env);
            assert_eq!(a.agent, b.agent);
            assert_eq!(a.action, b.action);
            assert_eq!(a.reward, b.reward);
            assert_eq!(a.feasible, b.feasible);
            for (x, y) in a.observation.iter().zip(&b.observation) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn csv_reader_rejects_malformed_input() {
        assert!(Dataset::read_csv("not,a,header\n".as_bytes()).is_err());
        let missing_col = "env,agent,a0,o0,reward,feasible\ntoy,rw,1,2.0,0.5\n";
        assert!(Dataset::read_csv(missing_col.as_bytes()).is_err());
        let bad_action = "env,agent,a0,o0,reward,feasible\ntoy,rw,x,2.0,0.5,true\n";
        assert!(Dataset::read_csv(bad_action.as_bytes()).is_err());
        let bad_flag = "env,agent,a0,o0,reward,feasible\ntoy,rw,1,2.0,0.5,maybe\n";
        assert!(Dataset::read_csv(bad_flag.as_bytes()).is_err());
        // An empty stream is an empty dataset, not an error.
        assert!(Dataset::read_csv("".as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn csv_reader_skips_truncated_final_row() {
        let d = sample_dataset();
        let mut buf = Vec::new();
        d.write_csv(&mut buf).unwrap();
        assert_eq!(buf.last(), Some(&b'\n'));
        // Chop into the last row, as a crash mid-write would.
        let cut = buf.len() - 7;
        let (back, skipped) = Dataset::read_csv_counting(&buf[..cut]).unwrap();
        assert_eq!(skipped, 1);
        assert_eq!(back.len(), d.len() - 1);
        // A newline-terminated stream gets no such tolerance: the same
        // malformed row as the complete final line is a hard error.
        let mut terminated = buf[..cut].to_vec();
        terminated.push(b'\n');
        assert!(Dataset::read_csv_counting(terminated.as_slice()).is_err());
        // An intact stream reports zero skips.
        let (full, skipped) = Dataset::read_csv_counting(buf.as_slice()).unwrap();
        assert_eq!((full.len(), skipped), (d.len(), 0));
    }

    #[test]
    fn csv_rejects_ragged_rows() {
        let mut d = sample_dataset();
        d.push(Transition::new(
            "toy",
            "rw",
            Action::new(vec![1]),
            &StepResult::terminal(Observation::new(vec![0.0]), 0.0),
        ));
        let mut buf = Vec::new();
        assert!(d.write_csv(&mut buf).is_err());
    }

    #[test]
    fn features_targets_shape() {
        let d = sample_dataset();
        let (xs, ys) = d.features_targets(1).unwrap();
        assert_eq!(xs.len(), 10);
        assert_eq!(xs[0], vec![1.0, 2.0]);
        assert!(ys.iter().all(|&y| y == 7.0));
        assert!(d.features_targets(9).is_err());
        assert!(Dataset::new().features_targets(0).is_err());
    }

    #[test]
    fn best_finds_max_reward() {
        let d = sample_dataset();
        assert_eq!(d.best().unwrap().reward, 9.0);
        assert!(Dataset::new().best().is_none());
    }

    #[test]
    fn collect_from_iterator() {
        let d: Dataset = (0..3).map(|i| transition("rw", i as f64)).collect();
        assert_eq!(d.len(), 3);
    }
}
