//! Self-describing dataset artifacts.
//!
//! The paper's Section 3.4 envisions community-shared exploration
//! datasets in standardized exchange formats (TFDS/RLDS). A raw
//! [`Dataset`] carries transitions but not their *schema*; a
//! [`DatasetBundle`] adds the parameter space, observation labels and
//! provenance so a stranger (or a future session) can interpret — and
//! validate — every row without the environment's source code.

use crate::codec::{parse_json, Json};
use crate::env::Environment;
use crate::error::{ArchGymError, Result};
use crate::space::ParamSpace;
use crate::trajectory::{Dataset, Transition};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// A dataset plus everything needed to interpret it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetBundle {
    /// Environment identifier the data came from.
    pub env: String,
    /// The design space the actions index into.
    pub space: ParamSpace,
    /// Names of the observation metrics, in order.
    pub observation_labels: Vec<String>,
    /// Free-form provenance note (objective, scale, date, ...).
    pub note: String,
    /// The transitions.
    pub dataset: Dataset,
}

impl DatasetBundle {
    /// Bundle a dataset with its environment's schema.
    pub fn new<E: Environment + ?Sized>(env: &E, dataset: Dataset, note: &str) -> Self {
        DatasetBundle {
            env: env.name().to_owned(),
            space: env.space().clone(),
            observation_labels: env.observation_labels(),
            note: note.to_owned(),
            dataset,
        }
    }

    /// Check every transition against the declared schema.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::Dataset`] naming the first offending row.
    pub fn validate(&self) -> Result<()> {
        let n_obs = self.observation_labels.len();
        for (i, t) in self.dataset.iter().enumerate() {
            self.space
                .validate(&t.action)
                .map_err(|e| ArchGymError::Dataset(format!("transition {i}: {e}")))?;
            if t.observation.len() != n_obs {
                return Err(ArchGymError::Dataset(format!(
                    "transition {i}: {} observation metrics, schema declares {n_obs}",
                    t.observation.len()
                )));
            }
        }
        Ok(())
    }

    /// Encode as an offline-safe JSON value (see [`crate::codec`]).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("env".into(), Json::Str(self.env.clone())),
            ("space".into(), self.space.to_json()),
            (
                "observation_labels".into(),
                Json::Arr(
                    self.observation_labels
                        .iter()
                        .map(|l| Json::Str(l.clone()))
                        .collect(),
                ),
            ),
            ("note".into(), Json::Str(self.note.clone())),
            (
                "dataset".into(),
                Json::Arr(self.dataset.iter().map(Transition::to_json).collect()),
            ),
        ])
    }

    fn from_json(value: &Json) -> std::result::Result<Self, String> {
        Ok(DatasetBundle {
            env: value.field("env")?.as_str()?.to_owned(),
            space: ParamSpace::from_json(value.field("space")?)?,
            observation_labels: value
                .field("observation_labels")?
                .as_arr()?
                .iter()
                .map(|l| l.as_str().map(str::to_owned))
                .collect::<std::result::Result<Vec<_>, String>>()?,
            note: value.field("note")?.as_str()?.to_owned(),
            dataset: value
                .field("dataset")?
                .as_arr()?
                .iter()
                .map(Transition::from_json)
                .collect::<std::result::Result<Dataset, String>>()?,
        })
    }

    /// Serialize the whole bundle as JSON via the offline-safe codec.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_json<W: Write>(&self, mut writer: W) -> Result<()> {
        writer.write_all(self.to_json().encode().as_bytes())?;
        Ok(())
    }

    /// Parse a bundle written by [`DatasetBundle::write_json`] and
    /// validate its schema.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::Dataset`] on parse or validation failure.
    pub fn read_json<R: Read>(mut reader: R) -> Result<DatasetBundle> {
        let mut text = String::new();
        reader.read_to_string(&mut text)?;
        let bundle = parse_json(&text)
            .and_then(|v| Self::from_json(&v))
            .map_err(|e| ArchGymError::Dataset(format!("bad bundle: {e}")))?;
        bundle.validate()?;
        Ok(bundle)
    }

    /// Merge another bundle into this one.
    ///
    /// # Errors
    ///
    /// Returns [`ArchGymError::Dataset`] when the schemas differ — data
    /// from different design spaces must not be silently mixed.
    pub fn merge(&mut self, other: DatasetBundle) -> Result<()> {
        if other.space != self.space || other.observation_labels != self.observation_labels {
            return Err(ArchGymError::Dataset(format!(
                "schema mismatch: cannot merge `{}` into `{}`",
                other.env, self.env
            )));
        }
        self.dataset.merge(other.dataset);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Agent, RandomWalker};
    use crate::env::Environment;
    use crate::toy::PeakEnv;
    use crate::trajectory::Transition;

    fn explored_bundle(seed: u64) -> (PeakEnv, DatasetBundle) {
        let mut env = PeakEnv::new(&[6, 6], vec![2, 4]);
        let mut walker = RandomWalker::new(env.space().clone(), seed);
        let mut dataset = Dataset::new();
        for action in walker.propose(20) {
            let result = env.step(&action);
            dataset.push(Transition::new(env.name(), "rw", action, &result));
        }
        let bundle = DatasetBundle::new(&env, dataset, "unit test");
        (env, bundle)
    }

    #[test]
    fn bundle_carries_schema_and_validates() {
        let (env, bundle) = explored_bundle(1);
        assert_eq!(bundle.env, "peak");
        assert_eq!(bundle.space, *env.space());
        assert_eq!(bundle.observation_labels, ["distance"]);
        bundle.validate().unwrap();
    }

    #[test]
    fn json_roundtrip_revalidates() {
        let (_, bundle) = explored_bundle(2);
        let mut bytes = Vec::new();
        bundle.write_json(&mut bytes).unwrap();
        let back = DatasetBundle::read_json(bytes.as_slice()).unwrap();
        assert_eq!(back, bundle);
    }

    #[test]
    fn validation_catches_out_of_space_actions() {
        let (_, mut bundle) = explored_bundle(3);
        let mut bad = bundle.dataset.transitions()[0].clone();
        bad.action = crate::space::Action::new(vec![99, 0]);
        bundle.dataset.push(bad);
        let err = bundle.validate().unwrap_err();
        assert!(err.to_string().contains("transition 20"));
    }

    #[test]
    fn validation_catches_observation_width_drift() {
        let (_, mut bundle) = explored_bundle(4);
        let mut bad = bundle.dataset.transitions()[0].clone();
        bad.observation = vec![1.0, 2.0];
        bundle.dataset.push(bad);
        assert!(bundle.validate().is_err());
    }

    #[test]
    fn merge_requires_matching_schemas() {
        let (_, mut a) = explored_bundle(5);
        let (_, b) = explored_bundle(6);
        let before = a.dataset.len();
        a.merge(b).unwrap();
        assert_eq!(a.dataset.len(), before * 2);

        // A bundle over a different space must be rejected.
        let mut env = PeakEnv::new(&[3, 3, 3], vec![0, 1, 2]);
        let mut walker = RandomWalker::new(env.space().clone(), 7);
        let mut other_data = Dataset::new();
        for action in walker.propose(5) {
            let result = env.step(&action);
            other_data.push(Transition::new(env.name(), "rw", action, &result));
        }
        let other = DatasetBundle::new(&env, other_data, "different space");
        assert!(a.merge(other).is_err());
    }
}
