//! Online proxy screening — the policy and interface through which
//! [`SearchLoop`](crate::search::SearchLoop) consults a cheap surrogate
//! model before spending true simulator evaluations.
//!
//! The paper's Part 3 shows a random-forest proxy predicting simulator
//! metrics orders of magnitude faster than the cycle-accurate model.
//! This module closes that loop *online*: the driver over-samples each
//! agent proposal batch, ranks the candidates through a [`Screener`]
//! trained on the run's own settled samples, and forwards only the
//! top-k by predicted reward plus an uncertainty-sampled exploration
//! slice to the real evaluator.
//!
//! The concrete forest-backed screener lives in `archgym-proxy`
//! (`archgym_proxy::online::OnlineProxy`); this module holds only what
//! the core driver needs — the [`ScreenPolicy`] knobs, the [`Screener`]
//! trait, and the deterministic admission rule [`select_admitted`] —
//! so `archgym-core` stays free of any model dependency.
//!
//! Determinism contract: a screener must be a pure function of its
//! seed and the sample stream fed through [`Screener::observe`] /
//! [`Screener::revalidate`]. The driver relies on this to replay
//! journaled screened runs bit-identically (the journal additionally
//! pins every admission decision in a `screen` record, so divergence
//! is detected rather than silently absorbed).

use crate::codec::{push_json_f64, Json};
use crate::space::Action;
use crate::telemetry::Recorder;
use std::fmt::Write as _;

/// Knobs of the online screening layer.
///
/// With the default policy the driver proposes `oversample ×` the
/// configured batch size once the proxy has `warmup` true samples,
/// admits the `top_k` candidates by predicted reward plus
/// `ceil(explore_frac · top_k)` high-variance exploration picks, and
/// every `revalidate_every`-th screened batch bypasses the screen
/// entirely (all candidates truly evaluated) to measure drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreenPolicy {
    /// Candidates admitted per batch by predicted reward.
    pub top_k: usize,
    /// Exploration slice as a fraction of `top_k`: the driver admits an
    /// extra `ceil(explore_frac * top_k)` candidates with the highest
    /// per-tree prediction variance among the non-top-k rest.
    pub explore_frac: f64,
    /// Every n-th screened batch is fully evaluated (no screening) and
    /// the proxy's predictions are checked against the true rewards —
    /// drift triggers a refit, persistent drift disables the screen.
    /// `0` disables re-validation.
    pub revalidate_every: u64,
    /// Proposal over-sampling factor: the agent is asked for
    /// `oversample ×` the batch size once screening is active.
    pub oversample: usize,
    /// True samples required before the first fit; screening is
    /// inactive (plain batches) until then.
    pub warmup: u64,
    /// New training samples between refits after warm-up.
    pub refit_every: u64,
}

impl Default for ScreenPolicy {
    fn default() -> Self {
        ScreenPolicy {
            top_k: 4,
            explore_frac: 0.25,
            revalidate_every: 8,
            oversample: 4,
            warmup: 64,
            refit_every: 32,
        }
    }
}

impl ScreenPolicy {
    /// Set `top_k`, builder-style.
    pub fn top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k;
        self
    }

    /// Set `explore_frac`, builder-style.
    pub fn explore_frac(mut self, explore_frac: f64) -> Self {
        self.explore_frac = explore_frac;
        self
    }

    /// Set `revalidate_every`, builder-style.
    pub fn revalidate_every(mut self, revalidate_every: u64) -> Self {
        self.revalidate_every = revalidate_every;
        self
    }

    /// Set `oversample`, builder-style.
    pub fn oversample(mut self, oversample: usize) -> Self {
        self.oversample = oversample;
        self
    }

    /// Set `warmup`, builder-style.
    pub fn warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Set `refit_every`, builder-style.
    pub fn refit_every(mut self, refit_every: u64) -> Self {
        self.refit_every = refit_every;
        self
    }

    /// Check the policy for degenerate values.
    ///
    /// # Errors
    ///
    /// Returns a description of the first bad knob.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.top_k == 0 {
            return Err("proxy top_k must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.explore_frac) {
            return Err(format!(
                "proxy explore_frac {} outside [0, 1]",
                self.explore_frac
            ));
        }
        if self.oversample < 2 {
            return Err("proxy oversample must be >= 2 (1 would screen nothing)".into());
        }
        if self.warmup == 0 {
            return Err("proxy warmup must be >= 1".into());
        }
        if self.refit_every == 0 {
            return Err("proxy refit_every must be >= 1".into());
        }
        Ok(())
    }

    /// Encode as a canonical JSON object (offline-safe codec).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"top_k\":{},\"explore_frac\":", self.top_k);
        push_json_f64(&mut out, self.explore_frac);
        let _ = write!(
            out,
            ",\"revalidate_every\":{},\"oversample\":{},\"warmup\":{},\"refit_every\":{}}}",
            self.revalidate_every, self.oversample, self.warmup, self.refit_every
        );
        out
    }

    /// Decode a policy encoded by [`ScreenPolicy::encode`].
    ///
    /// # Errors
    ///
    /// Describes the first missing or mistyped field.
    pub fn from_json(value: &Json) -> std::result::Result<Self, String> {
        Ok(ScreenPolicy {
            top_k: value.field("top_k")?.as_usize()?,
            explore_frac: value.field("explore_frac")?.as_f64()?,
            revalidate_every: value.field("revalidate_every")?.as_u64()?,
            oversample: value.field("oversample")?.as_usize()?,
            warmup: value.field("warmup")?.as_u64()?,
            refit_every: value.field("refit_every")?.as_u64()?,
        })
    }
}

/// An online surrogate the driver can screen proposal batches through.
///
/// Implementations must be deterministic: state may depend only on the
/// construction seed and the exact sequence of [`Screener::observe`]
/// and [`Screener::revalidate`] calls. The driver guarantees that
/// sequence is identical across serial/pooled execution and across
/// journal resume, which is what makes screened runs reproducible.
pub trait Screener {
    /// The screening policy in force.
    fn policy(&self) -> ScreenPolicy;

    /// Install the run's telemetry recorder (refit counters / spans).
    fn set_telemetry(&mut self, recorder: &Recorder);

    /// Feed settled training samples — one reward per action. The
    /// driver excludes degraded samples (their penalty reward is a
    /// retry-policy artifact, not a simulator measurement).
    fn observe(&mut self, actions: &[Action], rewards: &[f64]);

    /// Whether screening is active: warmed up, fitted, and not
    /// disabled by drift.
    fn is_ready(&self) -> bool;

    /// Predict the reward of each candidate. `means` and `vars` are
    /// cleared and filled with one prediction mean and one per-tree
    /// prediction variance per candidate.
    fn predict(&mut self, candidates: &[Action], means: &mut Vec<f64>, vars: &mut Vec<f64>);

    /// Report a full-batch re-validation: `predicted` vs the settled
    /// `actual` rewards (degraded samples excluded from both). The
    /// screener refits on drift and disables itself when drift
    /// persists.
    fn revalidate(&mut self, predicted: &[f64], actual: &[f64]);

    /// Model (re)fits performed so far.
    fn refits(&self) -> u64;
}

/// The deterministic admission rule: given per-candidate prediction
/// `means` and `vars`, admit the top `top_k` candidates by predicted
/// reward (ties broken by lower index) plus up to
/// `ceil(explore_frac * top_k)` of the remaining candidates by highest
/// variance (same tie-break), capped at `cap` total. Returns indices
/// sorted ascending; at least one candidate is admitted whenever
/// `cap >= 1` and there are candidates, so a screened run always makes
/// progress.
pub fn select_admitted(
    means: &[f64],
    vars: &[f64],
    top_k: usize,
    explore_frac: f64,
    cap: usize,
) -> Vec<usize> {
    debug_assert_eq!(means.len(), vars.len());
    let n = means.len();
    if n == 0 || cap == 0 {
        return Vec::new();
    }
    let mut by_mean: Vec<usize> = (0..n).collect();
    by_mean.sort_by(|&a, &b| means[b].total_cmp(&means[a]).then(a.cmp(&b)));

    let exploit = top_k.max(1).min(cap).min(n);
    let mut admitted: Vec<usize> = by_mean[..exploit].to_vec();

    let explore_quota = (explore_frac * top_k as f64).ceil() as usize;
    let explore = explore_quota.min(cap - exploit).min(n - exploit);
    if explore > 0 {
        let mut rest: Vec<usize> = by_mean[exploit..].to_vec();
        rest.sort_by(|&a, &b| vars[b].total_cmp(&vars[a]).then(a.cmp(&b)));
        admitted.extend_from_slice(&rest[..explore]);
    }
    admitted.sort_unstable();
    admitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::parse_json;

    #[test]
    fn default_policy_is_valid() {
        ScreenPolicy::default().validate().unwrap();
    }

    #[test]
    fn builders_compose_and_validation_rejects_degenerate_knobs() {
        let policy = ScreenPolicy::default()
            .top_k(8)
            .explore_frac(0.5)
            .revalidate_every(4)
            .oversample(6)
            .warmup(100)
            .refit_every(10);
        assert_eq!(policy.top_k, 8);
        assert_eq!(policy.oversample, 6);
        policy.validate().unwrap();

        assert!(ScreenPolicy::default().top_k(0).validate().is_err());
        assert!(ScreenPolicy::default()
            .explore_frac(1.5)
            .validate()
            .is_err());
        assert!(ScreenPolicy::default()
            .explore_frac(-0.1)
            .validate()
            .is_err());
        assert!(ScreenPolicy::default().oversample(1).validate().is_err());
        assert!(ScreenPolicy::default().warmup(0).validate().is_err());
        assert!(ScreenPolicy::default().refit_every(0).validate().is_err());
        // revalidate_every 0 is legal: it just disables re-validation.
        ScreenPolicy::default()
            .revalidate_every(0)
            .validate()
            .unwrap();
    }

    #[test]
    fn policy_round_trips_through_the_codec() {
        for policy in [
            ScreenPolicy::default(),
            ScreenPolicy::default()
                .top_k(2)
                .explore_frac(1.0 / 3.0)
                .revalidate_every(0)
                .oversample(8)
                .warmup(17)
                .refit_every(5),
        ] {
            let line = policy.encode();
            let back = ScreenPolicy::from_json(&parse_json(&line).unwrap()).unwrap();
            assert_eq!(back, policy, "line: {line}");
            assert_eq!(back.encode(), line, "canonical encoding");
        }
    }

    #[test]
    fn select_admitted_takes_top_k_by_mean() {
        let means = [1.0, 5.0, 3.0, 4.0, 2.0];
        let vars = [0.0; 5];
        // top_k 2, no exploration: picks indices of the two largest means.
        assert_eq!(select_admitted(&means, &vars, 2, 0.0, 10), vec![1, 3]);
    }

    #[test]
    fn select_admitted_adds_high_variance_exploration() {
        let means = [10.0, 9.0, 1.0, 2.0, 3.0];
        let vars = [0.0, 0.0, 7.0, 0.5, 0.1];
        // top_k 2 exploit {0, 1}; explore_frac 0.5 → 1 pick by variance: 2.
        assert_eq!(select_admitted(&means, &vars, 2, 0.5, 10), vec![0, 1, 2]);
    }

    #[test]
    fn select_admitted_breaks_ties_by_lower_index() {
        let means = [2.0, 2.0, 2.0, 2.0];
        let vars = [1.0, 1.0, 1.0, 1.0];
        assert_eq!(select_admitted(&means, &vars, 2, 0.5, 10), vec![0, 1, 2]);
    }

    #[test]
    fn select_admitted_respects_the_cap() {
        let means = [1.0, 2.0, 3.0, 4.0];
        let vars = [1.0, 1.0, 1.0, 1.0];
        assert_eq!(select_admitted(&means, &vars, 3, 1.0, 2).len(), 2);
        assert_eq!(
            select_admitted(&means, &vars, 3, 1.0, 0),
            Vec::<usize>::new()
        );
        // Cap larger than the candidate set admits everything asked for.
        assert_eq!(
            select_admitted(&means, &vars, 4, 1.0, 100),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn select_admitted_always_makes_progress() {
        // Even a degenerate top_k of 0 admits one candidate.
        let means = [1.0, 2.0];
        let vars = [0.0, 0.0];
        assert_eq!(select_admitted(&means, &vars, 0, 0.0, 5), vec![1]);
        assert_eq!(select_admitted(&[], &[], 4, 0.5, 5), Vec::<usize>::new());
    }

    #[test]
    fn select_admitted_is_sorted_and_duplicate_free() {
        let means: Vec<f64> = (0..32).map(|i| ((i * 17) % 13) as f64).collect();
        let vars: Vec<f64> = (0..32).map(|i| ((i * 7) % 11) as f64).collect();
        let admitted = select_admitted(&means, &vars, 6, 0.5, 20);
        assert!(admitted.windows(2).all(|w| w[0] < w[1]), "{admitted:?}");
        assert_eq!(admitted.len(), 6 + 3);
    }
}
