//! The ArchGym environment trait and its interface signals.
//!
//! An environment encapsulates an **architecture cost model** together with a
//! **target workload** (Section 3.1). Agents interact with it exclusively
//! through the three standardized signals of Section 3.3 — action,
//! observation and reward — via the OpenAI-gym-style [`Environment::step`].

use crate::error::Result;
use crate::space::{Action, ParamSpace};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The state information an environment reports back to the agent.
///
/// For DRAMGym this is `<latency, power, energy>`; for TimeloopGym
/// `<latency, energy, area>`; and so on (Table 3). Values are in the
/// environment's natural units; [`Environment::observation_labels`] names
/// each component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation(Vec<f64>);

impl Observation {
    /// Wrap a metric vector.
    pub fn new(values: Vec<f64>) -> Self {
        Observation(values)
    }

    /// The metric at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> f64 {
        self.0[i]
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the observation carries no metrics.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// View the metrics as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Consume, returning the metric vector.
    pub fn into_inner(self) -> Vec<f64> {
        self.0
    }
}

impl From<Vec<f64>> for Observation {
    fn from(values: Vec<f64>) -> Self {
        Observation(values)
    }
}

impl fmt::Display for Observation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        write!(f, ">")
    }
}

/// Everything `step()` returns: observation, reward/fitness, episode-done
/// flag and free-form diagnostic info.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepResult {
    /// The cost model's state information for the evaluated design.
    pub observation: Observation,
    /// The scalar feedback signal (reward in RL parlance, fitness for
    /// BO/GA/ACO — the paper treats them as the same signal).
    pub reward: f64,
    /// Whether the episode terminated. Architecture DSE is one-shot, so
    /// most environments return `true` on every step.
    pub done: bool,
    /// Whether the evaluated design was feasible. Infeasible designs (e.g.
    /// a tile that overflows its scratchpad) still produce a (penalized)
    /// reward so that agents can learn to avoid them.
    pub feasible: bool,
    /// Free-form named diagnostics (e.g. per-component energies).
    pub info: BTreeMap<String, f64>,
}

impl StepResult {
    /// A feasible, terminal step — the common case for one-shot DSE.
    pub fn terminal(observation: Observation, reward: f64) -> Self {
        StepResult {
            observation,
            reward,
            done: true,
            feasible: true,
            info: BTreeMap::new(),
        }
    }

    /// A terminal step for an infeasible design with a penalty reward.
    pub fn infeasible(observation: Observation, penalty_reward: f64) -> Self {
        StepResult {
            observation,
            reward: penalty_reward,
            done: true,
            feasible: false,
            info: BTreeMap::new(),
        }
    }

    /// Attach a named diagnostic value, builder-style.
    pub fn with_info(mut self, key: &str, value: f64) -> Self {
        self.info.insert(key.to_owned(), value);
        self
    }
}

/// An ArchGym environment: an architecture cost model plus workload, behind
/// the standardized action/observation/reward interface.
///
/// Implementations decode the index-encoded [`Action`] against
/// [`Environment::space`], run their cost model, and report an
/// [`Observation`] plus scalar reward.
///
/// The trait is object-safe: the search loop and sweep infrastructure work
/// with `&mut dyn Environment`.
pub trait Environment {
    /// A short, stable identifier, e.g. `"dram"`, `"timeloop"`.
    fn name(&self) -> &str;

    /// The design space this environment exposes (the paper's Fig. 3).
    fn space(&self) -> &ParamSpace;

    /// Names for each component of the observation vector, in order.
    fn observation_labels(&self) -> Vec<String>;

    /// Reset internal episode state, returning the initial observation.
    ///
    /// One-shot DSE environments are stateless between designs, so the
    /// default returns an all-zero observation of the right width.
    fn reset(&mut self) -> Observation {
        Observation::new(vec![0.0; self.observation_labels().len()])
    }

    /// Evaluate one design point.
    fn step(&mut self, action: &Action) -> StepResult;

    /// Evaluate one design point, reporting evaluation failures instead
    /// of panicking or silently emitting garbage — the fallible seam the
    /// retry/degrade machinery of
    /// [`SearchLoop`](crate::search::SearchLoop) drives.
    ///
    /// The default delegates to [`Environment::step`] and always
    /// succeeds, so existing environments are untouched. Wrappers that
    /// model flaky cost models (e.g.
    /// [`FaultyEnv`](crate::fault::FaultyEnv)) override this to surface
    /// [`EvalFailed`](crate::error::ArchGymError::EvalFailed),
    /// [`Timeout`](crate::error::ArchGymError::Timeout) or
    /// [`EnvCrashed`](crate::error::ArchGymError::EnvCrashed).
    ///
    /// # Errors
    ///
    /// Implementation-specific evaluation failures; the default never
    /// fails.
    fn try_step(&mut self, action: &Action) -> Result<StepResult> {
        Ok(self.step(action))
    }

    /// Install a telemetry recorder. Instrumented wrappers
    /// ([`CachedEnv`](crate::cache::CachedEnv),
    /// [`FaultyEnv`](crate::fault::FaultyEnv), the DRAM controller env)
    /// store a clone of the handle and count into it; the default is a
    /// no-op, so plain environments need no changes. The
    /// [`SearchLoop`](crate::search::SearchLoop) calls this at run
    /// start, which is how `--metrics` reaches every layer without
    /// construction-site plumbing.
    fn set_telemetry(&mut self, _recorder: &crate::telemetry::Recorder) {}
}

impl<E: Environment + ?Sized> Environment for Box<E> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn space(&self) -> &ParamSpace {
        (**self).space()
    }
    fn observation_labels(&self) -> Vec<String> {
        (**self).observation_labels()
    }
    fn reset(&mut self) -> Observation {
        (**self).reset()
    }
    fn step(&mut self, action: &Action) -> StepResult {
        (**self).step(action)
    }
    fn try_step(&mut self, action: &Action) -> Result<StepResult> {
        (**self).try_step(action)
    }
    fn set_telemetry(&mut self, recorder: &crate::telemetry::Recorder) {
        (**self).set_telemetry(recorder);
    }
}

impl<E: Environment + ?Sized> Environment for &mut E {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn space(&self) -> &ParamSpace {
        (**self).space()
    }
    fn observation_labels(&self) -> Vec<String> {
        (**self).observation_labels()
    }
    fn reset(&mut self) -> Observation {
        (**self).reset()
    }
    fn step(&mut self, action: &Action) -> StepResult {
        (**self).step(action)
    }
    fn try_step(&mut self, action: &Action) -> Result<StepResult> {
        (**self).try_step(action)
    }
    fn set_telemetry(&mut self, recorder: &crate::telemetry::Recorder) {
        (**self).set_telemetry(recorder);
    }
}

/// An [`Environment`] that can be duplicated behind a trait object.
///
/// Every bundled cost model is `Clone + Send + Sync` (cloning is cheap
/// — e.g. `DramEnv` shares its trace through an `Arc`), so the blanket
/// impl covers them all. The point of the trait is `Box<dyn
/// CloneEnvironment>`: boxed environments built from CLI/bench specs
/// stay cloneable, which is what lets them fan out across the
/// per-worker replicas of an [`EnvPool`](crate::pool::EnvPool). The
/// `Sync` bound lets a boxed prototype serve as a shared `Fn() -> E`
/// sweep factory (cloned from worker threads) without an `unwrap`.
pub trait CloneEnvironment: Environment + Send + Sync {
    /// Clone into a fresh boxed replica.
    fn clone_env(&self) -> Box<dyn CloneEnvironment>;
}

impl<E: Environment + Clone + Send + Sync + 'static> CloneEnvironment for E {
    fn clone_env(&self) -> Box<dyn CloneEnvironment> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn CloneEnvironment> {
    fn clone(&self) -> Self {
        (**self).clone_env()
    }
}

/// A counting wrapper that tracks how many simulator queries have been
/// issued — the paper's *sample efficiency* axis (Section 6.2) normalizes
/// all agent comparisons by this number.
#[derive(Debug, Clone)]
pub struct CountingEnv<E> {
    inner: E,
    samples: u64,
}

impl<E: Environment> CountingEnv<E> {
    /// Wrap an environment, starting the counter at zero.
    pub fn new(inner: E) -> Self {
        CountingEnv { inner, samples: 0 }
    }

    /// Number of `step()` calls issued so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Access the wrapped environment.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Unwrap, discarding the counter.
    pub fn into_inner(self) -> E {
        self.inner
    }
}

impl<E: Environment> Environment for CountingEnv<E> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn space(&self) -> &ParamSpace {
        self.inner.space()
    }
    fn observation_labels(&self) -> Vec<String> {
        self.inner.observation_labels()
    }
    fn reset(&mut self) -> Observation {
        self.inner.reset()
    }
    fn step(&mut self, action: &Action) -> StepResult {
        self.samples += 1;
        self.inner.step(action)
    }
    fn try_step(&mut self, action: &Action) -> Result<StepResult> {
        // A failed attempt still consumed a simulator query.
        self.samples += 1;
        self.inner.try_step(action)
    }
    fn set_telemetry(&mut self, recorder: &crate::telemetry::Recorder) {
        self.inner.set_telemetry(recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::PeakEnv;

    #[test]
    fn observation_display_and_access() {
        let obs = Observation::new(vec![1.0, 2.5]);
        assert_eq!(obs.len(), 2);
        assert_eq!(obs.get(1), 2.5);
        assert_eq!(obs.to_string(), "<1.0000, 2.5000>");
    }

    #[test]
    fn step_result_constructors() {
        let ok = StepResult::terminal(Observation::new(vec![1.0]), 2.0);
        assert!(ok.feasible && ok.done);
        let bad = StepResult::infeasible(Observation::new(vec![0.0]), -1.0).with_info("why", 3.0);
        assert!(!bad.feasible);
        assert_eq!(bad.info["why"], 3.0);
    }

    #[test]
    fn peak_env_rewards_peak() {
        let mut env = PeakEnv::new(&[4, 4], vec![2, 3]);
        let at_peak = env.step(&Action::new(vec![2, 3]));
        assert_eq!(at_peak.reward, 1.0);
        let off_peak = env.step(&Action::new(vec![0, 0]));
        assert!(off_peak.reward < at_peak.reward);
    }

    #[test]
    fn counting_env_counts() {
        let mut env = CountingEnv::new(PeakEnv::new(&[3], vec![1]));
        assert_eq!(env.samples(), 0);
        env.step(&Action::new(vec![0]));
        env.step(&Action::new(vec![2]));
        assert_eq!(env.samples(), 2);
        assert_eq!(env.name(), "peak");
    }

    #[test]
    fn default_reset_matches_observation_width() {
        let mut env = PeakEnv::new(&[3], vec![1]);
        assert_eq!(env.reset().len(), env.observation_labels().len());
    }

    #[test]
    fn environment_is_object_safe() {
        let mut env = PeakEnv::new(&[3], vec![1]);
        let dyn_env: &mut dyn Environment = &mut env;
        let r = dyn_env.step(&Action::new(vec![1]));
        assert_eq!(r.reward, 1.0);
    }

    #[test]
    fn default_try_step_matches_step_and_forwards_through_wrappers() {
        let action = Action::new(vec![2]);
        let mut plain = PeakEnv::new(&[4], vec![2]);
        let expected = plain.step(&action);
        assert_eq!(plain.try_step(&action).unwrap(), expected);

        // Box / &mut / CountingEnv all forward try_step (not just step).
        let mut boxed: Box<dyn Environment> = Box::new(PeakEnv::new(&[4], vec![2]));
        assert_eq!(boxed.try_step(&action).unwrap(), expected);
        let mut counting = CountingEnv::new(PeakEnv::new(&[4], vec![2]));
        assert_eq!(counting.try_step(&action).unwrap(), expected);
        assert_eq!(counting.samples(), 1);
        let mut by_ref = &mut counting;
        assert_eq!(
            <&mut CountingEnv<PeakEnv> as Environment>::try_step(&mut by_ref, &action).unwrap(),
            expected
        );
        assert_eq!(counting.samples(), 2);
    }
}
