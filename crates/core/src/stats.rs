//! The summary statistics the paper reports.
//!
//! Section 6 measures agent performance by the *statistical spread*
//! (interquartile range) of best rewards across a hyperparameter sweep,
//! *mean normalized reward* under sample budgets (Fig. 7), and proxy-model
//! quality by *RMSE* and predicted-vs-actual *correlation* (Figs. 10–12).

use serde::{Deserialize, Serialize};

/// Five-number summary plus mean of a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Smallest value.
    pub min: f64,
    /// First quartile (linear interpolation).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (linear interpolation).
    pub q3: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Interquartile range `q3 − q1` — the paper's spread metric.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// IQR as a fraction of the sample's largest magnitude, the paper's
    /// "up to 90% statistical spread" normalization. Returns `0` for an
    /// all-zero sample. (Normalizing by magnitude rather than by `max`
    /// keeps the ratio meaningful for negated-distance rewards, whose
    /// best value is `0`.)
    pub fn relative_spread(&self) -> f64 {
        let denom = self.max.abs().max(self.min.abs());
        if denom < f64::EPSILON {
            0.0
        } else {
            self.iqr() / denom
        }
    }
}

/// Compute a [`Summary`] of a non-empty sample.
///
/// # Panics
///
/// Panics if `values` is empty or contains NaN.
pub fn summarize(values: &[f64]) -> Summary {
    assert!(!values.is_empty(), "cannot summarize an empty sample");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    Summary {
        count: sorted.len(),
        min: sorted[0],
        q1: quantile_sorted(&sorted, 0.25),
        median: quantile_sorted(&sorted, 0.5),
        q3: quantile_sorted(&sorted, 0.75),
        max: sorted[sorted.len() - 1],
        mean: mean(values),
    }
}

/// Linearly interpolated quantile of a **sorted** sample, `q` in `[0, 1]`.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "empty sample");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn std_dev(values: &[f64]) -> f64 {
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Root-mean-square error between predictions and ground truth.
///
/// # Panics
///
/// Panics if the slices are empty or differ in length.
pub fn rmse(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    assert!(!predicted.is_empty(), "empty sample");
    (predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).powi(2))
        .sum::<f64>()
        / predicted.len() as f64)
        .sqrt()
}

/// Pearson correlation coefficient. Returns `0` when either sample is
/// constant (no linear relationship is measurable).
///
/// # Panics
///
/// Panics if the slices are empty or differ in length.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    assert!(!x.is_empty(), "empty sample");
    let mx = mean(x);
    let my = mean(y);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx).powi(2);
        vy += (b - my).powi(2);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Percentile bootstrap confidence interval for the mean: resample
/// `values` with replacement `resamples` times and report the
/// `[(1−level)/2, (1+level)/2]` quantiles of the resampled means.
///
/// The paper's call to action — "report statistical distributions rather
/// than the state-of-the-art algorithm" — needs uncertainty estimates;
/// this is the standard nonparametric one.
///
/// # Panics
///
/// Panics if `values` is empty, `resamples == 0`, or `level` is outside
/// `(0, 1)`.
pub fn bootstrap_mean_ci(values: &[f64], resamples: usize, level: f64, seed: u64) -> (f64, f64) {
    assert!(!values.is_empty(), "empty sample");
    assert!(resamples > 0, "need at least one resample");
    assert!(
        (0.0..1.0).contains(&level) && level > 0.0,
        "level outside (0, 1)"
    );
    use rand::Rng;
    let mut rng = crate::seeded_rng(seed);
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            (0..values.len())
                .map(|_| values[rng.gen_range(0..values.len())])
                .sum::<f64>()
                / values.len() as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("NaN resampled mean"));
    (
        quantile_sorted(&means, (1.0 - level) / 2.0),
        quantile_sorted(&means, (1.0 + level) / 2.0),
    )
}

/// Min-max normalize each value into `[0, 1]` over the given bounds.
/// A degenerate range maps everything to `0.5`.
pub fn min_max_normalize(values: &[f64], lo: f64, hi: f64) -> Vec<f64> {
    values
        .iter()
        .map(|&v| {
            if (hi - lo).abs() < f64::EPSILON {
                0.5
            } else {
                ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.iqr(), 2.0);
        assert!((s.relative_spread() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn summary_handles_unsorted_input() {
        let s = summarize(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn quantile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(quantile_sorted(&sorted, 0.5), 5.0);
        assert_eq!(quantile_sorted(&sorted, 0.25), 2.5);
    }

    #[test]
    fn singleton_sample() {
        let s = summarize(&[42.0]);
        assert_eq!(s.q1, 42.0);
        assert_eq!(s.q3, 42.0);
        assert_eq!(s.iqr(), 0.0);
    }

    #[test]
    fn rmse_zero_for_perfect_prediction() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_linear_data_is_one() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let neg = [-2.0, -4.0, -6.0, -8.0];
        assert!((pearson(&x, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn min_max_normalize_clamps() {
        assert_eq!(
            min_max_normalize(&[-1.0, 0.5, 2.0], 0.0, 1.0),
            vec![0.0, 0.5, 1.0]
        );
        assert_eq!(min_max_normalize(&[3.0], 2.0, 2.0), vec![0.5]);
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean_and_narrows_with_data() {
        let narrow: Vec<f64> = (0..400).map(|i| (i % 10) as f64).collect();
        let (lo, hi) = bootstrap_mean_ci(&narrow, 500, 0.95, 1);
        let m = mean(&narrow);
        assert!(lo <= m && m <= hi, "CI [{lo}, {hi}] misses mean {m}");
        assert!(hi - lo < 1.0, "CI too wide for 400 points: {}", hi - lo);
        let small: Vec<f64> = narrow[..20].to_vec();
        let (lo_s, hi_s) = bootstrap_mean_ci(&small, 500, 0.95, 1);
        assert!(hi_s - lo_s > hi - lo, "more data should narrow the CI");
    }

    #[test]
    #[should_panic(expected = "level outside")]
    fn bootstrap_rejects_bad_level() {
        let _ = bootstrap_mean_ci(&[1.0], 10, 1.5, 0);
    }

    #[test]
    fn std_dev_of_known_sample() {
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_quartiles_are_ordered(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let s = summarize(&values);
            prop_assert!(s.min <= s.q1 + 1e-9);
            prop_assert!(s.q1 <= s.median + 1e-9);
            prop_assert!(s.median <= s.q3 + 1e-9);
            prop_assert!(s.q3 <= s.max + 1e-9);
            prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        }

        #[test]
        fn prop_pearson_bounded(
            x in proptest::collection::vec(-1e3f64..1e3, 2..50),
            seed in 0u64..100,
        ) {
            // Build y the same length as x, pseudo-randomly.
            let y: Vec<f64> = x.iter().enumerate()
                .map(|(i, v)| v * ((seed + i as u64) % 7) as f64 - i as f64)
                .collect();
            let r = pearson(&x, &y);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }

        #[test]
        fn prop_rmse_nonnegative(
            p in proptest::collection::vec(-1e3f64..1e3, 1..50),
        ) {
            let a: Vec<f64> = p.iter().map(|v| v + 1.0).collect();
            prop_assert!(rmse(&p, &a) >= 0.0);
        }
    }
}
