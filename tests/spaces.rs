//! Integration tests: the four design spaces of the paper's Fig. 3 are
//! exposed exactly as printed, and all agents can sample/decode them.

use archgym::core::prelude::*;

#[test]
fn dram_space_matches_fig3a() {
    let space = archgym::dram::dram_space();
    assert_eq!(space.len(), 10);
    assert_eq!(space.cardinality(), 1_769_472.0);
    let names: Vec<&str> = space.params().iter().map(|p| p.name()).collect();
    assert_eq!(
        names,
        [
            "RefreshMaxPostponed",
            "RefreshMaxPulledIn",
            "RequestBufferSize",
            "MaxActiveTransactions",
            "PagePolicy",
            "Scheduler",
            "SchedulerBuffer",
            "Arbiter",
            "RespQueue",
            "RefreshPolicy"
        ]
    );
}

#[test]
fn accel_space_matches_fig3b() {
    let space = archgym::accel::accel_space();
    assert_eq!(space.len(), 15);
    let expected = 24.0 * 3.0 * (84.0f64).powi(3) * 336.0;
    assert_eq!(space.cardinality(), expected);
}

#[test]
fn soc_space_matches_fig3c() {
    let space = archgym::soc::soc_space();
    assert_eq!(space.len(), 13);
    assert!(space.cardinality() > 1e14, "got {}", space.cardinality());
}

#[test]
fn mapping_space_matches_fig3d_for_vgg16_second_layer() {
    let net = archgym::models::vgg16();
    let space = archgym::mapping::mapping_space(net.layer("conv1_2").unwrap());
    assert_eq!(space.len(), 8);
    let expected = 3.0 * 3.0 * 224.0 * 224.0 * 64.0 * 64.0 * 720.0 * 512.0;
    assert_eq!(space.cardinality(), expected);
}

#[test]
fn every_space_roundtrips_sampled_actions() {
    let net = archgym::models::resnet18();
    let spaces = vec![
        archgym::dram::dram_space(),
        archgym::accel::accel_space(),
        archgym::soc::soc_space(),
        archgym::mapping::mapping_space(net.layer("stage1").unwrap()),
    ];
    let mut rng = archgym::core::seeded_rng(77);
    for space in spaces {
        for _ in 0..25 {
            let action = space.sample(&mut rng);
            space.validate(&action).unwrap();
            let values = space.decode(&action).unwrap();
            let back = space.encode(&values).unwrap();
            assert_eq!(back, action);
            let point = space.normalize(&action);
            assert_eq!(space.denormalize(&point), action);
        }
    }
}

#[test]
fn observation_layouts_match_table3() {
    use archgym::core::env::Environment;
    let dram = archgym::dram::DramEnv::new(
        archgym::dram::DramWorkload::Stream,
        archgym::dram::Objective::low_power(1.0),
    );
    assert_eq!(
        dram.observation_labels(),
        ["latency_ns", "power_w", "energy_uj"]
    );
    let accel = archgym::accel::AccelEnv::new(
        archgym::models::alexnet(),
        archgym::accel::Objective::latency(5.0),
    );
    assert_eq!(
        accel.observation_labels(),
        ["latency_ms", "energy_mj", "area_mm2"]
    );
    let soc = archgym::soc::SocEnv::new(archgym::soc::SocWorkload::AudioDecoder);
    assert_eq!(
        soc.observation_labels(),
        ["power_mw", "latency_ms", "area_mm2"]
    );
    let net = archgym::models::resnet18();
    let mapping = archgym::mapping::MappingEnv::for_layer(
        &net,
        "stage1",
        archgym::mapping::Objective::runtime(),
    )
    .unwrap();
    assert_eq!(
        mapping.observation_labels(),
        ["runtime_ms", "throughput_gmacs", "energy_mj", "area_mm2"]
    );
    // Silence unused-import lint for prelude items used implicitly.
    let _ = RunConfig::default();
}
