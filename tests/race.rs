//! Race-invariant tests for the online successive-halving racing layer
//! (`archgym::core::race`). The invariants pinned here are the ones the
//! layer's correctness rests on:
//!
//! * same-seed races are bit-identical regardless of `jobs`;
//! * eliminated lanes never consume budget after their rung;
//! * total true evaluations exactly equal the configured budget;
//! * a crash-prefix resume reproduces the uninterrupted run bit-for-bit;
//! * the rung-schedule and ranking math hold for arbitrary inputs
//!   (property-tested; `PROPTEST_CASES` scales the case count in CI).

use archgym::agents::{build_agent, race_roster};
use archgym::core::env::{Environment, StepResult};
use archgym::core::race::{rank_lanes, rung_schedule, Race, RaceLane, RaceResult};
use archgym::core::space::{Action, ParamSpace};
use archgym::core::toy::PeakEnv;
use archgym::dram::{DramEnv, DramWorkload, Objective};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One ticket per family (6 lanes), agents seeded identically.
fn roster_lanes(space: &ParamSpace, seed: u64) -> Vec<RaceLane> {
    race_roster(1)
        .into_iter()
        .map(|entry| {
            RaceLane::new(
                entry.name,
                build_agent(entry.kind, space, &entry.hyper, seed).unwrap(),
            )
        })
        .collect()
}

/// A `PeakEnv` that counts every true evaluation across clones, so a
/// test can assert exactly how many simulations a race really ran.
#[derive(Clone)]
struct CountingEnv {
    inner: PeakEnv,
    evals: Arc<AtomicU64>,
}

impl CountingEnv {
    fn new(evals: Arc<AtomicU64>) -> Self {
        CountingEnv {
            inner: PeakEnv::new(&[8, 8, 8], vec![2, 5, 1]),
            evals,
        }
    }
}

impl Environment for CountingEnv {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn space(&self) -> &ParamSpace {
        self.inner.space()
    }
    fn observation_labels(&self) -> Vec<String> {
        self.inner.observation_labels()
    }
    fn step(&mut self, action: &Action) -> StepResult {
        self.evals.fetch_add(1, Ordering::Relaxed);
        self.inner.step(action)
    }
}

/// Everything that must be reproducible, compared bit-for-bit.
fn assert_bit_identical(a: &RaceResult, b: &RaceResult, label: &str) {
    assert_eq!(a.winner, b.winner, "{label}: winner diverged");
    assert_eq!(
        a.best_reward.to_bits(),
        b.best_reward.to_bits(),
        "{label}: best reward diverged"
    );
    assert_eq!(
        a.best_action, b.best_action,
        "{label}: best action diverged"
    );
    assert_eq!(a.samples_used, b.samples_used, "{label}: samples diverged");
    assert_eq!(
        a.reward_history.len(),
        b.reward_history.len(),
        "{label}: history length diverged"
    );
    for (i, (x, y)) in a.reward_history.iter().zip(&b.reward_history).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: reward history diverged at step {i}"
        );
    }
    assert_eq!(a.lanes.len(), b.lanes.len(), "{label}: lane count diverged");
    for (la, lb) in a.lanes.iter().zip(&b.lanes) {
        assert_eq!(la.name, lb.name, "{label}: lane names diverged");
        assert_eq!(
            la.samples_used, lb.samples_used,
            "{label}: lane {} samples diverged",
            la.name
        );
        assert_eq!(
            la.best_reward.to_bits(),
            lb.best_reward.to_bits(),
            "{label}: lane {} best diverged",
            la.name
        );
        assert_eq!(
            la.eliminated_at, lb.eliminated_at,
            "{label}: lane {} elimination rung diverged",
            la.name
        );
    }
    // Rung outcomes match except `workers_per_lane`, which tracks the
    // worker pool and so legitimately varies with `jobs`.
    assert_eq!(a.rungs.len(), b.rungs.len(), "{label}: rung count diverged");
    for (ra, rb) in a.rungs.iter().zip(&b.rungs) {
        assert_eq!(
            (ra.rung, ra.lanes, ra.slice, &ra.eliminated),
            (rb.rung, rb.lanes, rb.slice, &rb.eliminated),
            "{label}: rung outcomes diverged"
        );
    }
}

#[test]
fn same_seed_race_is_bit_identical_across_jobs() {
    let make_env = || DramEnv::new(DramWorkload::Stream, Objective::low_power(1.0));
    let run = |jobs: usize| {
        let proto = make_env();
        let lanes = roster_lanes(proto.space(), 7);
        Race::new(240, 3)
            .batch(8)
            .jobs(jobs)
            .run(lanes, make_env())
            .unwrap()
    };
    let serial = run(1);
    let pooled = run(4);
    assert_bit_identical(&serial, &pooled, "jobs=1 vs jobs=4");
}

#[test]
fn race_consumes_exactly_the_budget_and_freezes_eliminated_lanes() {
    let evals = Arc::new(AtomicU64::new(0));
    let env = CountingEnv::new(Arc::clone(&evals));
    // Deliberately not a round number: the remainder must flow to the
    // final rung instead of being dropped or overdrawn.
    let budget: u64 = 333;
    let eta = 3;
    let lanes = roster_lanes(env.space(), 3);
    let lane_count = lanes.len();
    let result = Race::new(budget, eta).batch(4).run(lanes, env).unwrap();

    assert_eq!(result.samples_used, budget, "race under/over-spent");
    assert_eq!(
        evals.load(Ordering::Relaxed),
        budget,
        "true simulations differ from the configured budget"
    );

    // Every lane's consumption is exactly the schedule prefix it was
    // alive for: nothing before its first rung, nothing after its
    // elimination rung.
    let schedule = rung_schedule(lane_count, eta, budget);
    for lane in &result.lanes {
        let ran = match lane.eliminated_at {
            Some(r) => &schedule[..=r],
            None => &schedule[..],
        };
        let expected: u64 = ran.iter().map(|rung| rung.slice).sum();
        assert_eq!(
            lane.samples_used, expected,
            "lane {} (eliminated at {:?}) consumed budget outside its rungs",
            lane.name, lane.eliminated_at
        );
    }
    let across_lanes: u64 = result.lanes.iter().map(|l| l.samples_used).sum();
    assert_eq!(across_lanes, budget, "per-lane accounting does not add up");

    // Exactly one survivor without the ensemble option.
    assert_eq!(
        result
            .lanes
            .iter()
            .filter(|l| l.eliminated_at.is_none())
            .count(),
        1
    );
}

/// Delete or truncate race journals to simulate a crash: the final
/// rung's files vanish entirely (crash before those runs settled) and
/// one earlier journal loses its last record (crash mid-write; its
/// derived snapshot is dropped with it, as the journal is the source
/// of truth).
fn crash_journals(dir: &Path, prefix_name: &str) {
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            let name = p.file_name().unwrap().to_str().unwrap();
            name.starts_with(prefix_name) && name.ends_with(".jsonl")
        })
        .collect();
    files.sort();
    assert!(files.len() >= 2, "expected several rung journals");
    let last_rung: String = {
        let name = files.last().unwrap().file_name().unwrap().to_str().unwrap();
        // `{prefix}-lNNN-rNN.jsonl` — the rung suffix orders last.
        name[name.len() - "rNN.jsonl".len()..].to_owned()
    };
    for path in &files {
        let name = path.file_name().unwrap().to_str().unwrap();
        if name.ends_with(&last_rung) {
            std::fs::remove_file(path).unwrap();
            let mut snap = path.clone().into_os_string();
            snap.push(".snap");
            let _ = std::fs::remove_file(snap);
        }
    }
    // Truncate the tail record off the first surviving journal.
    let victim = files
        .iter()
        .find(|p| {
            !p.file_name()
                .unwrap()
                .to_str()
                .unwrap()
                .ends_with(&last_rung)
        })
        .expect("a surviving journal");
    let body = std::fs::read_to_string(victim).unwrap();
    let lines: Vec<&str> = body.lines().collect();
    assert!(lines.len() > 1, "journal too short to truncate");
    let mut kept = lines[..lines.len() - 1].join("\n");
    kept.push('\n');
    std::fs::write(victim, kept).unwrap();
    let mut snap = victim.clone().into_os_string();
    snap.push(".snap");
    let _ = std::fs::remove_file(snap);
}

#[test]
fn crash_prefix_resume_is_bit_identical_to_uninterrupted() {
    let dir = std::env::temp_dir().join(format!("archgym-race-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let make_env = || DramEnv::new(DramWorkload::Stream, Objective::low_power(1.0));
    let run = |prefix: &Path| {
        let proto = make_env();
        let lanes = roster_lanes(proto.space(), 5);
        Race::new(180, 3)
            .batch(8)
            .with_journal_prefix(prefix)
            .run(lanes, make_env())
            .unwrap()
    };

    let reference = run(&dir.join("ref"));
    let crashed_prefix = dir.join("crash");
    let _ = run(&crashed_prefix);
    crash_journals(&dir, "crash-");
    let resumed = run(&crashed_prefix);
    assert_bit_identical(&reference, &resumed, "crash-prefix resume");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn completed_race_journals_replay_without_new_simulations() {
    let dir = std::env::temp_dir().join(format!("archgym-race-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let prefix = dir.join("race");

    let evals = Arc::new(AtomicU64::new(0));
    let run = |counter: &Arc<AtomicU64>| {
        let env = CountingEnv::new(Arc::clone(counter));
        let lanes = roster_lanes(env.space(), 11);
        Race::new(200, 3)
            .batch(4)
            .with_journal_prefix(&prefix)
            .run(lanes, env)
            .unwrap()
    };
    let first = run(&evals);
    assert_eq!(evals.load(Ordering::Relaxed), 200);

    let replay_evals = Arc::new(AtomicU64::new(0));
    let replayed = run(&replay_evals);
    assert_eq!(
        replay_evals.load(Ordering::Relaxed),
        0,
        "a fully journaled race must replay without any live simulation"
    );
    assert_bit_identical(&first, &replayed, "journal replay");

    let _ = std::fs::remove_dir_all(&dir);
}

mod rung_math {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// For arbitrary roster sizes, elimination factors and budgets:
        /// lane counts follow ceil-division down to exactly one
        /// survivor, per-lane slices never shrink between rungs, and
        /// the schedule covers the budget exactly — no remainder
        /// dropped, no overdraw, no overflow.
        #[test]
        fn prop_schedule_is_monotone_and_covers_the_budget(
            lanes in 1usize..48,
            eta in 2usize..7,
            budget in 0u64..20_000,
        ) {
            let schedule = rung_schedule(lanes, eta, budget);
            prop_assert!(!schedule.is_empty());
            prop_assert_eq!(schedule[0].lanes, lanes);
            prop_assert_eq!(schedule.last().unwrap().lanes, 1, "must end at one survivor");
            for pair in schedule.windows(2) {
                prop_assert_eq!(pair[1].lanes, pair[0].lanes.div_ceil(eta));
                prop_assert!(pair[1].lanes < pair[0].lanes, "lane counts must shrink");
                prop_assert!(
                    pair[1].slice >= pair[0].slice,
                    "slices must be monotone: {} then {}", pair[0].slice, pair[1].slice
                );
            }
            let total: u64 = schedule
                .iter()
                .map(|r| r.slice.checked_mul(r.lanes as u64).expect("no overflow"))
                .sum();
            prop_assert_eq!(total, budget, "schedule must cover the budget exactly");
        }

        /// Elimination ranking is invariant under any permutation of
        /// the scored lanes, even with heavy reward ties: the total
        /// order is (reward desc, lane id asc).
        #[test]
        fn prop_ranking_is_permutation_invariant_under_ties(
            rewards in proptest::collection::vec(-3i32..3, 1..24),
            swaps in proptest::collection::vec(proptest::num::u64::ANY, 0..16),
        ) {
            // Small integer rewards force tie groups on purpose.
            let scored: Vec<(usize, f64)> = rewards
                .iter()
                .enumerate()
                .map(|(id, &r)| (id, f64::from(r)))
                .collect();
            let reference = rank_lanes(&scored);
            prop_assert_eq!(reference.len(), scored.len());

            let mut shuffled = scored.clone();
            for &word in &swaps {
                let a = (word as usize) % shuffled.len();
                let b = ((word >> 16) as usize) % shuffled.len();
                shuffled.swap(a, b);
            }
            prop_assert_eq!(rank_lanes(&shuffled), reference.clone());

            // The declared tiebreak actually holds: within the ranking,
            // reward never increases, and equal rewards appear in
            // ascending lane-id order.
            for pair in reference.windows(2) {
                let (ra, rb) = (scored[pair[0]].1, scored[pair[1]].1);
                prop_assert!(
                    ra > rb || (ra == rb && pair[0] < pair[1]),
                    "rank order violated: lane {} ({ra}) before lane {} ({rb})",
                    pair[0], pair[1]
                );
            }
        }
    }
}
