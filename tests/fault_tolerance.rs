//! Integration tests for the fault-tolerant search runtime: agents must
//! complete their full sample budget on flaky simulators with accurate
//! failure accounting, a quiet fault plan must be invisible, a panicking
//! worker must cost only its own work item, and every environment family
//! must be wrappable in [`FaultyEnv`].

use archgym_agents::factory::{build_agent, AgentKind};
use archgym_core::env::{Environment, StepResult};
use archgym_core::fault::{FaultPlan, FaultyEnv};
use archgym_core::search::{RetryPolicy, RunConfig, RunResult, SearchLoop};
use archgym_core::space::{Action, ParamSpace};
use archgym_core::toy::PeakEnv;
use archgym_dram::{DramEnv, DramWorkload, Objective as DramObjective};

/// GA proposes generations, ACO ant cohorts, SA neighbor batches — the
/// population agents the acceptance criteria name.
const POPULATION_AGENTS: [AgentKind; 3] = [AgentKind::Ga, AgentKind::Aco, AgentKind::Sa];

fn dram() -> DramEnv {
    DramEnv::new(DramWorkload::Stream, DramObjective::low_power(1.0))
}

fn run<E>(kind: AgentKind, env: E, budget: u64, jobs: usize, retries: u32) -> RunResult
where
    E: Environment + Clone + Send,
{
    let mut agent = build_agent(kind, env.space(), &Default::default(), 11).unwrap();
    let config = RunConfig::with_budget(budget)
        .batch(0)
        .jobs(jobs)
        .retry(RetryPolicy::new(retries));
    SearchLoop::new(config).run_pooled(&mut agent, env)
}

#[test]
fn agents_complete_their_budget_on_a_flaky_dram_simulator() {
    for kind in POPULATION_AGENTS {
        let plan = FaultPlan::new(97).transient(0.10).latched(0.01);
        let env = FaultyEnv::new(dram(), plan);
        let handle = env.clone(); // clones share fault counters
        let result = run(kind, env, 96, 1, 3);
        assert_eq!(result.samples_used, 96, "{kind:?} must finish its budget");
        assert!(
            result.eval_failures > 0,
            "{kind:?}: 10% transients must fire"
        );
        assert_eq!(
            result.eval_failures,
            handle.stats().total(),
            "{kind:?}: every injected fault must be accounted for"
        );
        assert!(result.best_reward.is_finite(), "{kind:?}");
    }
}

#[test]
fn pooled_runs_keep_accurate_fault_counters() {
    let plan = FaultPlan::new(41).transient(0.10).latched(0.01);
    let env = FaultyEnv::new(dram(), plan);
    let handle = env.clone();
    let result = run(AgentKind::Ga, env, 96, 4, 3);
    assert_eq!(result.samples_used, 96);
    assert!(result.eval_failures > 0);
    assert_eq!(result.eval_failures, handle.stats().total());
}

#[test]
fn a_quiet_fault_plan_is_bit_identical_to_the_bare_environment() {
    for kind in POPULATION_AGENTS {
        let bare = run(kind, dram(), 64, 1, 2);
        let quiet = run(kind, FaultyEnv::new(dram(), FaultPlan::new(0)), 64, 1, 2);
        assert_eq!(bare.best_reward, quiet.best_reward, "{kind:?}");
        assert_eq!(bare.best_action, quiet.best_action, "{kind:?}");
        assert_eq!(bare.best_observation, quiet.best_observation, "{kind:?}");
        assert_eq!(bare.reward_history, quiet.reward_history, "{kind:?}");
        assert_eq!(bare.dataset, quiet.dataset, "{kind:?}");
        assert_eq!(quiet.eval_failures, 0, "{kind:?}");
        assert_eq!(quiet.eval_retries, 0, "{kind:?}");
        assert_eq!(quiet.degraded_samples, 0, "{kind:?}");
    }
}

/// A simulator that segfault-panics on one specific design point.
#[derive(Clone)]
struct LandmineEnv {
    inner: PeakEnv,
    mine: Vec<usize>,
}

impl Environment for LandmineEnv {
    fn name(&self) -> &str {
        "landmine"
    }
    fn space(&self) -> &ParamSpace {
        self.inner.space()
    }
    fn observation_labels(&self) -> Vec<String> {
        self.inner.observation_labels()
    }
    fn step(&mut self, action: &Action) -> StepResult {
        assert!(action.as_slice() != self.mine, "simulator segfault");
        self.inner.step(action)
    }
}

#[test]
fn a_panicking_worker_costs_only_its_own_work_item() {
    let inner = PeakEnv::new(&[32], vec![20]);
    let mine = vec![5usize];
    let env = LandmineEnv {
        inner: inner.clone(),
        mine: mine.clone(),
    };
    // Evaluate every design point in one pooled run: the mined one must
    // degrade to the infeasible penalty, every other must match the
    // bare simulator exactly.
    let actions: Vec<Action> = (0..32).map(|i| Action::new(vec![i])).collect();
    let mut pool = archgym_core::pool::EnvPool::new(env, 4);
    use archgym_core::pool::BatchEvaluator;
    let results = pool.try_eval_batch(&actions);
    assert_eq!(results.len(), 32);
    let mut bare = inner;
    for (i, outcome) in results.iter().enumerate() {
        if actions[i].as_slice() == mine {
            let err = outcome.as_ref().unwrap_err();
            assert!(
                err.to_string().contains("worker panicked"),
                "mined slot must report the panic, got: {err}"
            );
        } else {
            let expected = bare.step(&actions[i]);
            let got = outcome.as_ref().unwrap();
            assert_eq!(got.reward, expected.reward, "slot {i} must survive");
        }
    }
}

#[test]
fn a_panicking_design_point_degrades_inside_a_full_run() {
    let env = LandmineEnv {
        inner: PeakEnv::new(&[8], vec![6]),
        mine: vec![5],
    };
    // A random walker will eventually hit index 5; the run must still
    // complete its budget, with the mined samples degraded.
    let result = run(AgentKind::Rw, env, 64, 4, 1);
    assert_eq!(result.samples_used, 64);
    assert!(result.degraded_samples > 0, "the mine must have been hit");
    assert!(result.best_reward.is_finite());
}

/// Wrap one environment of each family and check fault injection and
/// degradation behave identically everywhere.
fn check_family<E: Environment>(env: E, family: &str) {
    let mut faulty = FaultyEnv::new(env, FaultPlan::new(3).transient(1.0));
    let action = Action::new(vec![0; faulty.space().len()]);
    assert!(
        faulty.try_step(&action).is_err(),
        "{family}: a certain transient must fail"
    );
    let degraded = faulty.step(&action);
    assert!(degraded.reward.is_finite(), "{family}");
    assert!(
        !degraded.feasible,
        "{family}: degraded results are infeasible"
    );
    assert!(faulty.stats().transient >= 2, "{family}");
}

#[test]
fn every_environment_family_wraps_in_faulty_env() {
    check_family(dram(), "dram");
    let network = archgym_models::by_name("alexnet").unwrap();
    check_family(
        archgym_accel::AccelEnv::new(network.clone(), archgym_accel::Objective::latency(15.0)),
        "timeloop",
    );
    check_family(
        archgym_soc::SocEnv::new(archgym_soc::SocWorkload::EdgeDetection),
        "farsi",
    );
    let network = archgym_models::by_name("resnet18").unwrap();
    check_family(
        archgym_mapping::MappingEnv::for_layer(
            &network,
            "stage2",
            archgym_mapping::Objective::runtime(),
        )
        .unwrap(),
        "maestro",
    );
}
