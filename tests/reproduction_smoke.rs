//! Integration tests: every paper experiment harness runs end-to-end at
//! smoke scale and reproduces the paper's qualitative claims.

use archgym_bench::harness::Scale;

#[test]
fn fig4_lottery_panels_have_winning_tickets_for_every_agent() {
    let panels = archgym_bench::fig4::run(Scale::Smoke, 0).unwrap();
    for panel in &panels {
        assert_eq!(panel.summaries.len(), 5);
        // The paper's claim needs a real sweep; at smoke scale just check
        // that the machinery reports spreads and a best design per agent.
        for s in &panel.summaries {
            assert!(s.stats.max.is_finite());
            assert!(s.stats.max >= s.stats.median);
        }
    }
}

#[test]
fn fig5_covers_multiple_simulators_with_the_same_interface() {
    let panels = archgym_bench::fig5::run(Scale::Smoke, 0).unwrap();
    assert!(panels.len() >= 2);
    let sims: Vec<&str> = panels.iter().map(|p| p.simulator).collect();
    assert!(sims.contains(&"dram"));
    assert!(sims.contains(&"farsi"));
}

#[test]
fn table4_designs_hover_around_the_power_target() {
    let rows = archgym_bench::table4::run(Scale::Smoke, 0).unwrap();
    assert_eq!(rows.len(), 5);
    for row in &rows {
        assert!(
            (0.4..=2.0).contains(&row.power_w),
            "{}: {} W",
            row.agent,
            row.power_w
        );
    }
}

#[test]
fn fig7_normalizes_the_best_agent_to_one() {
    let cells = archgym_bench::fig7::run(Scale::Smoke, 0).unwrap();
    for cell in &cells {
        let max = cell
            .normalized
            .iter()
            .map(|(_, v)| *v)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((max - 1.0).abs() < 1e-9);
    }
}

#[test]
fn fig8_measures_all_ten_timings() {
    let timings = archgym_bench::fig8::run(Scale::Smoke).unwrap();
    assert_eq!(timings.len(), 10);
}

#[test]
fn fig12_proxy_is_much_faster_than_the_simulator() {
    let result = archgym_bench::fig12::run(Scale::Smoke, 0).unwrap();
    assert!(result.speedup > 10.0, "speedup only {:.1}×", result.speedup);
    assert_eq!(result.rmse_rows.len(), 3);
}
