//! Golden regression tests: exact simulator outputs for fixed designs.
//!
//! These pin the cost models bit-for-bit. If a change to a simulator is
//! *intended* to alter results, update the constants here and record the
//! recalibration in EXPERIMENTS.md — silent drift would invalidate every
//! recorded experiment and shared dataset.

use archgym::core::env::Environment;
use archgym::core::space::Action;

fn assert_close(actual: f64, expected: f64, what: &str) {
    let tol = expected.abs().max(1e-12) * 1e-9;
    assert!(
        (actual - expected).abs() <= tol,
        "{what}: {actual:?} != golden {expected:?}"
    );
}

#[test]
fn dram_golden() {
    let mut env = archgym::dram::DramEnv::new(
        archgym::dram::DramWorkload::Cloud1,
        archgym::dram::Objective::low_power(1.0),
    );
    let action = Action::new(vec![3, 4, 5, 3, 1, 2, 2, 1, 0, 1]);
    let r = env.step(&action);
    assert_close(r.observation.get(0), 15148.533528645834, "dram latency_ns");
    assert_close(r.observation.get(1), 1.1009266409266407, "dram power_w");
    assert_close(r.observation.get(2), 39.20675, "dram energy_uj");
    assert_close(r.reward, 9.908186687069644, "dram reward");
    assert!(r.feasible);
}

#[test]
fn accel_golden() {
    let mut env = archgym::accel::AccelEnv::new(
        archgym::models::resnet50(),
        archgym::accel::Objective::latency(15.0),
    );
    let action = Action::new(vec![11, 2, 3, 1, 2, 3, 1, 3, 2, 2, 1, 4, 2, 2, 3]);
    let r = env.step(&action);
    assert!(r.feasible);
    assert_close(r.observation.get(0), 22.996736, "accel latency_ms");
    assert_close(r.observation.get(1), 3.8911366867039994, "accel energy_mj");
    assert_close(r.observation.get(2), 56.62583808, "accel area_mm2");
    assert_close(r.reward, 1.8757653122473972, "accel reward");
}

#[test]
fn soc_golden() {
    let mut env = archgym::soc::SocEnv::new(archgym::soc::SocWorkload::SlamLite);
    let action = Action::new(vec![1, 2, 2, 2, 100, 8, 2, 2, 15, 1, 2, 1, 15]);
    let r = env.step(&action);
    assert!(r.feasible);
    assert_close(r.observation.get(0), 782.0057565557058, "soc power_mw");
    assert_close(r.observation.get(1), 3.2030606666666666, "soc latency_ms");
    assert_close(r.observation.get(2), 5.42, "soc area_mm2");
    assert_close(r.reward, -1.234302161587731, "soc reward");
}

#[test]
fn mapping_golden() {
    let net = archgym::models::resnet18();
    let mut env = archgym::mapping::MappingEnv::for_layer(
        &net,
        "stage2",
        archgym::mapping::Objective::runtime(),
    )
    .unwrap();
    let action = Action::new(vec![2, 2, 13, 13, 31, 15, 100, 127]);
    let r = env.step(&action);
    assert!(r.feasible);
    assert_close(r.observation.get(0), 0.479232, "mapping runtime_ms");
    assert_close(
        r.observation.get(1),
        241.23076923076923,
        "mapping throughput",
    );
    assert_close(r.observation.get(2), 0.0720054272, "mapping energy_mj");
    assert_close(r.observation.get(3), 4.5565824, "mapping area_mm2");
    assert_close(r.reward, 2.0866720085470085, "mapping reward");
}

#[test]
fn trace_generation_golden() {
    // The first few requests of the canonical cloud-1 trace — pins both
    // the RNG plumbing and the generator.
    use archgym::dram::{trace::generate, DramWorkload, TraceConfig};
    let trace = generate(
        DramWorkload::Cloud1,
        &TraceConfig::default(),
        &mut archgym::core::seeded_rng(0xD7A3),
    );
    assert_eq!(trace.len(), 768);
    let first = trace[0];
    let last = trace[trace.len() - 1];
    // Deterministic per seed: spot-check the boundary requests.
    assert_eq!(first.addr % 64, 0);
    assert!(last.arrival > first.arrival);
    let fingerprint: u64 = trace
        .iter()
        .take(32)
        .map(|r| r.arrival ^ r.addr ^ u64::from(r.is_write))
        .fold(0, |acc, x| acc.wrapping_mul(31).wrapping_add(x));
    assert_eq!(
        fingerprint, 7510049671687309472,
        "cloud-1 trace fingerprint drifted"
    );
}

#[test]
fn race_metrics_golden() {
    // `search --auto --metrics` keeps only order-independent counters
    // (cache traffic is job-dependent and filtered), so the file must
    // be byte-identical to the committed golden across reruns and
    // regardless of `--jobs`.
    let golden = include_str!("golden/race_metrics.json");
    for jobs in ["1", "4"] {
        let dir = std::env::temp_dir().join("archgym-golden-metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("race-jobs{jobs}.json"));
        let args = archgym_cli::Args::parse([
            "search",
            "--auto",
            "true",
            "--env",
            "dram/stream",
            "--objective",
            "power:1.0",
            "--budget",
            "96",
            "--seed",
            "0",
            "--batch",
            "8",
            "--roster-cap",
            "2",
            "--jobs",
            jobs,
            "--metrics",
            path.to_str().unwrap(),
        ])
        .unwrap();
        archgym_cli::run(&args).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            body, golden,
            "search --auto --metrics drifted from the golden at jobs={jobs}"
        );
    }
}

#[test]
fn compare_metrics_golden() {
    // `compare --metrics` keeps only order-independent counters, so the
    // file must be byte-identical to the committed golden regardless of
    // how many worker threads settle the batches — and across reruns.
    let golden = include_str!("golden/compare_metrics.json");
    for jobs in ["1", "4"] {
        let dir = std::env::temp_dir().join("archgym-golden-metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("compare-jobs{jobs}.json"));
        let args = archgym_cli::Args::parse([
            "compare",
            "--env",
            "dram/stream",
            "--agents",
            "rw,ga,sa",
            "--objective",
            "power:1.0",
            "--budget",
            "32",
            "--seed",
            "0",
            "--jobs",
            jobs,
            "--metrics",
            path.to_str().unwrap(),
        ])
        .unwrap();
        archgym_cli::run(&args).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            body, golden,
            "compare --metrics drifted from the golden at jobs={jobs}"
        );
    }
}
