//! Integration tests for in-run batch evaluation: a pooled run
//! (`jobs > 1`) must be point-for-point identical to a serial run for
//! every population agent on both a toy and a real simulator, and the
//! shared [`EvalCache`] must keep exact counters when a pool fans a
//! batch across workers.

use std::collections::HashSet;
use std::sync::Arc;

use archgym_agents::factory::{build_agent, AgentKind};
use archgym_core::cache::{CachedEnv, EvalCache};
use archgym_core::env::Environment;
use archgym_core::search::{RunConfig, RunResult, SearchLoop};
use archgym_core::toy::PeakEnv;
use archgym_dram::{DramEnv, DramWorkload, Objective};

/// GA proposes generations, ACO proposes ant cohorts, SA fills its
/// neighbor batch — the three population agents the pool accelerates.
const POPULATION_AGENTS: [AgentKind; 3] = [AgentKind::Ga, AgentKind::Aco, AgentKind::Sa];

fn run_with_jobs<E>(kind: AgentKind, env: &E, budget: u64, jobs: usize) -> RunResult
where
    E: Environment + Clone + Send,
{
    let mut agent = build_agent(kind, env.space(), &Default::default(), 11).unwrap();
    // batch = 0: let the agent pick its natural batch size.
    let config = RunConfig::with_budget(budget).batch(0).jobs(jobs);
    SearchLoop::new(config).run_pooled(&mut agent, env.clone())
}

/// Everything except wall-clock must match, including dataset order.
fn assert_identical(serial: &RunResult, pooled: &RunResult, label: &str) {
    assert_eq!(serial.best_reward, pooled.best_reward, "{label}");
    assert_eq!(serial.best_action, pooled.best_action, "{label}");
    assert_eq!(serial.best_observation, pooled.best_observation, "{label}");
    assert_eq!(serial.samples_used, pooled.samples_used, "{label}");
    assert_eq!(serial.reward_history, pooled.reward_history, "{label}");
    assert_eq!(serial.dataset, pooled.dataset, "{label}");
}

#[test]
fn population_agents_are_bit_identical_under_pooling_on_peak() {
    let env = PeakEnv::new(&[16, 16, 16], vec![4, 11, 7]);
    for kind in POPULATION_AGENTS {
        let serial = run_with_jobs(kind, &env, 160, 1);
        for jobs in [2, 4] {
            let pooled = run_with_jobs(kind, &env, 160, jobs);
            assert_identical(&serial, &pooled, &format!("{kind:?} jobs={jobs} on peak"));
        }
    }
}

#[test]
fn population_agents_are_bit_identical_under_pooling_on_dram() {
    let env = DramEnv::new(DramWorkload::Stream, Objective::low_power(1.0));
    for kind in POPULATION_AGENTS {
        let serial = run_with_jobs(kind, &env, 96, 1);
        let pooled = run_with_jobs(kind, &env, 96, 4);
        assert_identical(&serial, &pooled, &format!("{kind:?} jobs=4 on dram"));
    }
}

#[test]
fn eval_cache_counters_stay_exact_under_batch_parallelism() {
    let base = PeakEnv::new(&[8, 8], vec![3, 5]);
    let budget = 96u64;
    let run = |jobs: usize| {
        let cache = Arc::new(EvalCache::new());
        let env = CachedEnv::new(base.clone(), cache.clone());
        let mut agent = build_agent(AgentKind::Ga, base.space(), &Default::default(), 5).unwrap();
        let result = SearchLoop::new(RunConfig::with_budget(budget).batch(0).jobs(jobs))
            .run_pooled(&mut agent, env);
        (result, cache)
    };
    let (serial_result, serial_cache) = run(1);
    let (pooled_result, pooled_cache) = run(4);
    // Memoization must not perturb the search, pooled or not.
    assert_identical(&serial_result, &pooled_result, "cached GA jobs=4");

    let distinct: HashSet<&[usize]> = serial_result
        .dataset
        .iter()
        .map(|t| t.action.as_slice())
        .collect();
    let serial = serial_cache.stats();
    let pooled = pooled_cache.stats();
    // Serially, every repeat of a design is a hit — the counters are
    // fully determined by the proposal stream.
    assert_eq!(serial.hits + serial.misses, budget);
    assert_eq!(serial.misses, distinct.len() as u64);
    assert_eq!(serial.entries, distinct.len() as u64);
    // Pooled, a duplicate within one batch may race to a double miss,
    // but lookups are still counted one per evaluation and the memo
    // table still holds exactly the distinct designs.
    assert_eq!(pooled.hits + pooled.misses, budget);
    assert_eq!(pooled.entries, distinct.len() as u64);
    assert_eq!(pooled.inserts, pooled.misses);
}
