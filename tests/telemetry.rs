//! Cross-layer telemetry invariants: the run recorder's accounting must
//! agree *exactly* with every other ledger in the system — the search
//! loop's `RunResult` counters, the cache's hit/miss arithmetic, the
//! fault injector's `FaultStats`, and the resume path's replay split —
//! whether batches are settled serially or fanned over an `EnvPool`.

use archgym_agents::factory::{build_agent, AgentKind};
use archgym_core::agent::Agent;
use archgym_core::cache::{CachedEnv, EvalCache};
use archgym_core::env::Environment;
use archgym_core::fault::{FaultPlan, FaultyEnv};
use archgym_core::journal::RunJournal;
use archgym_core::search::{RetryPolicy, RunConfig, RunResult, SearchLoop};
use archgym_core::space::ParamSpace;
use archgym_core::telemetry::{Counter, Recorder, RunReport};
use archgym_core::toy::PeakEnv;
use archgym_dram::{DramEnv, DramWorkload, Objective};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const JOB_COUNTS: [usize; 2] = [1, 4];

fn dram() -> DramEnv {
    DramEnv::new(DramWorkload::Stream, Objective::low_power(1.0))
}

fn peak() -> PeakEnv {
    PeakEnv::new(&[6, 6, 6], vec![2, 3, 4])
}

fn agent(space: &ParamSpace, seed: u64) -> Box<dyn Agent> {
    build_agent(AgentKind::Ga, space, &Default::default(), seed).unwrap()
}

/// Run `env` under a live recorder and return the result + snapshot.
fn observed_run<E>(env: E, budget: u64, jobs: usize, retries: u32) -> (RunResult, RunReport)
where
    E: Environment + Clone + Send,
{
    let rec = Recorder::new();
    let mut agent = agent(env.space(), 11);
    let config = RunConfig::with_budget(budget)
        .batch(8)
        .jobs(jobs)
        .retry(RetryPolicy::new(retries));
    let result = SearchLoop::new(config)
        .with_telemetry(rec.clone())
        .run_pooled(agent.as_mut(), env);
    let report = rec.report().expect("live recorder yields a report");
    (result, report)
}

fn counter(report: &RunReport, c: Counter) -> u64 {
    report.counters[c.name()]
}

/// A flaky-but-recoverable fault plan (transients only, so retries can
/// always settle every sample within the budget's retry allowance).
fn transient_plan() -> FaultPlan {
    FaultPlan::new(7).transient(0.2)
}

#[test]
fn cache_lookups_split_exactly_into_hits_and_misses() {
    for jobs in JOB_COUNTS {
        let (result, report) = observed_run(
            CachedEnv::with_cache(peak(), Some(Arc::new(EvalCache::new()))),
            96,
            jobs,
            2,
        );
        let lookups = counter(&report, Counter::CacheLookups);
        let hits = counter(&report, Counter::CacheHits);
        let misses = counter(&report, Counter::CacheMisses);
        assert_eq!(lookups, hits + misses, "jobs={jobs}: {report:?}");
        // Every settled sample probed the cache exactly once.
        assert_eq!(lookups, result.samples_used, "jobs={jobs}");
        // A deterministic pure env inserts at most once per miss, and a
        // GA revisits designs, so a 96-sample run must hit sometimes.
        assert!(hits > 0, "jobs={jobs}: GA revisits must hit the cache");
        assert!(
            counter(&report, Counter::CacheInserts) <= misses,
            "jobs={jobs}"
        );
    }
}

#[test]
fn fault_ledgers_agree_across_all_three_layers() {
    for jobs in JOB_COUNTS {
        for (label, result, report, stats) in [
            {
                let faulty = FaultyEnv::new(peak(), transient_plan());
                let handle = faulty.clone();
                let (result, report) = observed_run(faulty, 64, jobs, 3);
                ("peak", result, report, handle.stats())
            },
            {
                let faulty = FaultyEnv::new(dram(), transient_plan());
                let handle = faulty.clone();
                let (result, report) = observed_run(faulty, 64, jobs, 3);
                ("dram", result, report, handle.stats())
            },
        ] {
            let ctx = format!("{label} jobs={jobs}");
            assert!(result.eval_failures > 0, "{ctx}: 20% transients must fire");
            // RunResult, FaultStats, and the recorder: one ledger.
            assert_eq!(result.eval_failures, stats.total(), "{ctx}");
            assert_eq!(
                counter(&report, Counter::EvalFailures),
                result.eval_failures,
                "{ctx}"
            );
            assert_eq!(
                counter(&report, Counter::EvalRetries),
                result.eval_retries,
                "{ctx}"
            );
            assert_eq!(
                counter(&report, Counter::DegradedSamples),
                result.degraded_samples,
                "{ctx}"
            );
            // Per-mode recorder counters mirror FaultStats exactly.
            assert_eq!(
                counter(&report, Counter::FaultTransient),
                stats.transient,
                "{ctx}"
            );
            assert_eq!(
                counter(&report, Counter::FaultLatched),
                stats.latched,
                "{ctx}"
            );
            assert_eq!(
                counter(&report, Counter::FaultCorrupt),
                stats.corrupt,
                "{ctx}"
            );
            assert_eq!(counter(&report, Counter::FaultStall), stats.stall, "{ctx}");
            assert_eq!(
                counter(&report, Counter::FaultCrashedRejections),
                stats.crashed_rejections,
                "{ctx}"
            );
            assert_eq!(
                counter(&report, Counter::SamplesSettled),
                result.samples_used,
                "{ctx}"
            );
        }
    }
}

#[test]
fn pooled_and_serial_runs_record_identical_stable_counters() {
    let peak_reports: Vec<RunReport> = JOB_COUNTS
        .iter()
        .map(|&jobs| observed_run(peak(), 96, jobs, 2).1)
        .collect();
    assert_eq!(
        peak_reports[0].stable_json(),
        peak_reports[1].stable_json(),
        "peak: stable counters must not depend on the job count"
    );
    let dram_reports: Vec<RunReport> = JOB_COUNTS
        .iter()
        .map(|&jobs| observed_run(dram(), 48, jobs, 2).1)
        .collect();
    assert_eq!(
        dram_reports[0].stable_json(),
        dram_reports[1].stable_json(),
        "dram: stable counters must not depend on the job count"
    );
    // DRAM decisions decompose exactly into row outcomes, and fire for
    // every one of the 48 simulated samples.
    let report = &dram_reports[0];
    let decisions = counter(report, Counter::DramDecisions);
    assert!(decisions > 0);
    assert_eq!(
        decisions,
        counter(report, Counter::DramRowHits)
            + counter(report, Counter::DramRowMisses)
            + counter(report, Counter::DramRowConflicts)
    );
    assert_eq!(counter(report, Counter::SamplesSettled), 48);
}

/// A unique, clean path in the shared temp dir.
fn fresh_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("archgym-telemetry-tests");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(RunJournal::snapshot_path(&path));
    path
}

fn cleanup(path: &Path) {
    let _ = fs::remove_file(path);
    let _ = fs::remove_file(RunJournal::snapshot_path(path));
}

#[test]
fn resume_replays_are_split_out_and_never_double_counted() {
    let budget = 64;
    let path = fresh_path("replay-accounting.jsonl");
    let journal_path = path.to_str().unwrap();
    let run = |p: &str| -> (RunResult, RunReport) {
        let rec = Recorder::new();
        let env = FaultyEnv::new(dram(), transient_plan());
        let mut agent = agent(env.space(), 11);
        let config = RunConfig::with_budget(budget)
            .batch(8)
            .retry(RetryPolicy::new(3));
        let result = SearchLoop::new(config)
            .with_telemetry(rec.clone())
            .run_resumable_pooled(agent.as_mut(), env, p)
            .unwrap();
        (result, rec.report().unwrap())
    };

    let (original, first) = run(journal_path);
    assert_eq!(counter(&first, Counter::SamplesSettled), budget);
    assert_eq!(counter(&first, Counter::SamplesReplayed), 0);
    assert!(counter(&first, Counter::JournalAppends) > 0);
    assert!(counter(&first, Counter::EvalFailures) > 0);

    // Re-running against the completed journal absorbs every sample
    // from the log: nothing settles live, nothing is counted twice,
    // and the journaled retries/faults reproduce the original ledger.
    let (resumed, second) = run(journal_path);
    assert_eq!(counter(&second, Counter::SamplesReplayed), budget);
    assert_eq!(counter(&second, Counter::SamplesSettled), 0);
    assert_eq!(
        counter(&second, Counter::SamplesReplayed) + counter(&second, Counter::SamplesSettled),
        resumed.samples_used
    );
    assert_eq!(resumed.best_reward, original.best_reward);
    assert_eq!(resumed.samples_used, original.samples_used);
    assert_eq!(
        counter(&second, Counter::EvalFailures),
        counter(&first, Counter::EvalFailures),
        "replayed failure accounting must match the live run"
    );
    assert_eq!(
        counter(&second, Counter::EvalRetries),
        counter(&first, Counter::EvalRetries)
    );
    assert_eq!(
        counter(&second, Counter::Batches),
        counter(&first, Counter::Batches)
    );
    cleanup(&path);
}

#[test]
fn run_result_carries_the_report_only_when_telemetry_is_live() {
    let mut agent = agent(peak().space(), 11);
    let silent = SearchLoop::new(RunConfig::with_budget(16)).run_pooled(agent.as_mut(), peak());
    assert_eq!(silent.telemetry, None);

    let mut agent = agent_fresh();
    let observed = SearchLoop::new(RunConfig::with_budget(16))
        .with_telemetry(Recorder::new())
        .run_pooled(agent.as_mut(), peak());
    let report = observed.telemetry.expect("live recorder attaches a report");
    assert_eq!(report.counters["samples_settled"], 16);
    // The snapshot itself survives the repo's own codec byte-for-byte.
    assert_eq!(RunReport::parse(&report.encode()).unwrap(), report);
}

fn agent_fresh() -> Box<dyn Agent> {
    agent(peak().space(), 11)
}
