//! Integration tests: every agent family runs end-to-end against every
//! environment through the one standardized interface — the paper's core
//! interoperability claim (Section 3).

use archgym::agents::factory::{build_agent, AgentKind};
use archgym::core::env::Environment;
use archgym::core::prelude::*;

fn environments() -> Vec<Box<dyn Environment>> {
    let net = archgym::models::resnet18();
    vec![
        Box::new(archgym::dram::DramEnv::new(
            archgym::dram::DramWorkload::Cloud1,
            archgym::dram::Objective::joint(30.0, 1.0),
        )),
        Box::new(archgym::accel::AccelEnv::new(
            archgym::models::alexnet(),
            archgym::accel::Objective::latency(2.0),
        )),
        Box::new(archgym::soc::SocEnv::new(
            archgym::soc::SocWorkload::EdgeDetection,
        )),
        Box::new(
            archgym::mapping::MappingEnv::for_layer(
                &net,
                "stage2",
                archgym::mapping::Objective::runtime(),
            )
            .unwrap(),
        ),
    ]
}

#[test]
fn every_agent_runs_on_every_environment() {
    for mut env in environments() {
        for kind in AgentKind::ALL {
            let mut agent = build_agent(kind, env.space(), &HyperMap::new(), 31)
                .unwrap_or_else(|e| panic!("{kind:?} on {}: {e}", env.name()));
            let result =
                SearchLoop::new(RunConfig::with_budget(96).batch(16)).run(&mut agent, &mut env);
            assert_eq!(
                result.samples_used,
                96,
                "{kind:?} under-sampled on {}",
                env.name()
            );
            assert!(
                result.best_reward.is_finite(),
                "{kind:?} produced a non-finite best reward on {}",
                env.name()
            );
            env.space()
                .validate(&result.best_action)
                .unwrap_or_else(|e| panic!("{kind:?} best action invalid on {}: {e}", env.name()));
        }
    }
}

#[test]
fn learned_agents_beat_random_on_a_large_dram_budget() {
    // Not a lottery claim — just a sanity check that feedback is wired:
    // with the same budget, at least two of the learning agents should
    // match or beat the random walker's median outcome on DRAM. The
    // 15 ns target sits below the device floor, so the target-ratio
    // reward is a smooth, monotone latency-minimization signal.
    let budget = 1_500;
    let run = |kind: AgentKind, seed: u64| {
        let mut env = archgym::dram::DramEnv::new(
            archgym::dram::DramWorkload::Random,
            archgym::dram::Objective::low_latency(15.0),
        );
        let mut agent = build_agent(kind, env.space(), &HyperMap::new(), seed).unwrap();
        SearchLoop::new(RunConfig::with_budget(budget))
            .run(&mut agent, &mut env)
            .best_reward
    };
    let rw: f64 = (0..3).map(|s| run(AgentKind::Rw, s)).sum::<f64>() / 3.0;
    let beat = [AgentKind::Ga, AgentKind::Aco, AgentKind::Bo, AgentKind::Rl]
        .into_iter()
        .filter(|&k| {
            let score: f64 = (0..3).map(|s| run(k, s)).sum::<f64>() / 3.0;
            score >= rw * 0.9
        })
        .count();
    assert!(
        beat >= 2,
        "only {beat} learning agents kept up with random search"
    );
}

#[test]
fn trajectories_are_recorded_identically_across_agents() {
    // Section 3.4: the standardized interface makes every agent's
    // exploration logging uniform.
    let mut widths = std::collections::BTreeSet::new();
    for kind in AgentKind::ALL {
        let mut env = archgym::dram::DramEnv::new(
            archgym::dram::DramWorkload::Stream,
            archgym::dram::Objective::low_power(1.0),
        );
        let mut agent = build_agent(kind, env.space(), &HyperMap::new(), 5).unwrap();
        let result = SearchLoop::new(RunConfig::with_budget(32)).run(&mut agent, &mut env);
        assert_eq!(result.dataset.len(), 32);
        for t in result.dataset.iter() {
            widths.insert((t.action.len(), t.observation.len()));
            assert_eq!(t.agent, kind.name());
            assert_eq!(t.env, "dram/stream");
        }
    }
    assert_eq!(
        widths.len(),
        1,
        "inconsistent transition shapes: {widths:?}"
    );
}

#[test]
fn counting_wrapper_normalizes_sample_budgets_across_agents() {
    use archgym::core::env::CountingEnv;
    for kind in AgentKind::ALL {
        let mut env = CountingEnv::new(archgym::soc::SocEnv::new(
            archgym::soc::SocWorkload::AudioDecoder,
        ));
        let mut agent = build_agent(kind, env.space(), &HyperMap::new(), 3).unwrap();
        let _ = SearchLoop::new(RunConfig::with_budget(64)).run(&mut agent, &mut env);
        assert_eq!(env.samples(), 64, "{kind:?} budget accounting broken");
    }
}
