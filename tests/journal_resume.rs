//! Integration tests for crash-safe checkpoint/resume: a run killed at
//! *any* point of its write-ahead journal — including mid-line — must
//! resume to a report bit-identical to the uninterrupted reference.

use archgym_agents::factory::{build_agent, AgentKind};
use archgym_core::agent::Agent;
use archgym_core::env::Environment;
use archgym_core::fault::{FaultPlan, FaultyEnv};
use archgym_core::journal::RunJournal;
use archgym_core::search::{RetryPolicy, RunConfig, RunResult, SearchLoop};
use archgym_core::space::ParamSpace;
use archgym_dram::{DramEnv, DramWorkload, Objective};
use std::fs;
use std::path::{Path, PathBuf};

fn dram() -> DramEnv {
    DramEnv::new(DramWorkload::Stream, Objective::low_power(1.0))
}

fn config(budget: u64) -> RunConfig {
    RunConfig::with_budget(budget)
        .batch(8)
        .retry(RetryPolicy::new(3))
}

fn agent(space: &ParamSpace) -> Box<dyn Agent> {
    build_agent(AgentKind::Ga, space, &Default::default(), 11).unwrap()
}

/// A unique, clean path in the shared temp dir (no leftover journal or
/// snapshot from an earlier test run).
fn fresh_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("archgym-journal-resume-tests");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(RunJournal::snapshot_path(&path));
    path
}

fn cleanup(path: &Path) {
    let _ = fs::remove_file(path);
    let _ = fs::remove_file(RunJournal::snapshot_path(path));
}

/// The value fields every resumed run must reproduce exactly.
fn assert_identical(reference: &RunResult, resumed: &RunResult, label: &str) {
    assert_eq!(reference.best_reward, resumed.best_reward, "{label}");
    assert_eq!(reference.best_action, resumed.best_action, "{label}");
    assert_eq!(
        reference.best_observation, resumed.best_observation,
        "{label}"
    );
    assert_eq!(reference.samples_used, resumed.samples_used, "{label}");
    assert_eq!(reference.reward_history, resumed.reward_history, "{label}");
    assert_eq!(reference.dataset, resumed.dataset, "{label}");
}

#[test]
fn resuming_from_every_crash_prefix_is_bit_identical() {
    let budget = 32;
    let path = fresh_path("every-prefix.jsonl");
    let env = dram();
    let mut reference_agent = agent(env.space());
    let reference = SearchLoop::new(config(budget))
        .run_resumable(&mut *reference_agent, &mut dram(), &path)
        .unwrap();
    let full = fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = full.lines().collect();
    assert!(
        lines.len() > budget as usize,
        "journal must hold every step"
    );

    // Simulate a SIGKILL after each journal line (1 = header only) and
    // resume from that prefix.
    for cut in 1..=lines.len() {
        let partial = fresh_path("prefix.jsonl");
        fs::write(&partial, lines[..cut].join("\n") + "\n").unwrap();
        let mut resumed_agent = agent(env.space());
        let resumed = SearchLoop::new(config(budget))
            .run_resumable(&mut *resumed_agent, &mut dram(), &partial)
            .unwrap();
        assert_identical(&reference, &resumed, &format!("cut after line {cut}"));
        cleanup(&partial);
    }
    cleanup(&path);
}

#[test]
fn resuming_a_mid_line_truncation_is_bit_identical() {
    let budget = 32;
    let path = fresh_path("midline-reference.jsonl");
    let env = dram();
    let mut reference_agent = agent(env.space());
    let reference = SearchLoop::new(config(budget))
        .run_resumable(&mut *reference_agent, &mut dram(), &path)
        .unwrap();
    let full = fs::read(&path).unwrap();

    // Chop the journal mid-record — the torn write a crash leaves.
    for cut in [full.len() - 3, full.len() - 25, full.len() / 2] {
        let partial = fresh_path("midline.jsonl");
        fs::write(&partial, &full[..cut]).unwrap();
        let mut resumed_agent = agent(env.space());
        let resumed = SearchLoop::new(config(budget))
            .run_resumable(&mut *resumed_agent, &mut dram(), &partial)
            .unwrap();
        assert_identical(&reference, &resumed, &format!("torn at byte {cut}"));
        cleanup(&partial);
    }
    cleanup(&path);
}

#[test]
fn resume_survives_injected_faults() {
    // A flaky simulator under a fixed fault seed: the interrupted-then-
    // resumed run must reproduce the reference's rewards exactly. (Fault
    // *counters* may legitimately differ across the crash boundary —
    // retry accounting is process-local — so only value fields are
    // compared, and the scenario is chosen so nothing degrades.)
    let budget = 32;
    let plan = FaultPlan::new(19).transient(0.10);
    let path = fresh_path("faulty-reference.jsonl");
    let env = FaultyEnv::new(dram(), plan);
    let mut reference_agent = agent(env.space());
    let reference = SearchLoop::new(config(budget))
        .run_resumable(&mut *reference_agent, &mut env.clone(), &path)
        .unwrap();
    assert!(reference.eval_failures > 0, "faults must fire");
    assert_eq!(reference.degraded_samples, 0, "scenario must not degrade");

    let full = fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = full.lines().collect();
    for frac in [4, 2, 1] {
        let cut = (lines.len() / frac).max(1);
        let partial = fresh_path("faulty-prefix.jsonl");
        fs::write(&partial, lines[..cut].join("\n") + "\n").unwrap();
        let mut resumed_agent = agent(env.space());
        let mut resumed_env = FaultyEnv::new(dram(), plan);
        let resumed = SearchLoop::new(config(budget))
            .run_resumable(&mut *resumed_agent, &mut resumed_env, &partial)
            .unwrap();
        assert_identical(&reference, &resumed, &format!("faulty cut at {cut}"));
        cleanup(&partial);
    }
    cleanup(&path);
}

#[test]
fn a_journal_from_a_different_run_is_rejected() {
    let path = fresh_path("mismatch.jsonl");
    let env = dram();
    let mut a = agent(env.space());
    SearchLoop::new(config(32))
        .run_resumable(&mut *a, &mut dram(), &path)
        .unwrap();
    // Same journal, different budget: refuse rather than silently mix.
    let mut b = agent(env.space());
    let err = SearchLoop::new(config(64))
        .run_resumable(&mut *b, &mut dram(), &path)
        .unwrap_err();
    assert!(
        err.to_string().contains("different run"),
        "unexpected error: {err}"
    );
    cleanup(&path);
}

#[test]
fn a_finished_journal_replays_without_re_evaluating() {
    let budget = 32;
    let path = fresh_path("finished.jsonl");
    let env = dram();
    let mut a = agent(env.space());
    let reference = SearchLoop::new(config(budget))
        .run_resumable(&mut *a, &mut dram(), &path)
        .unwrap();
    // Replaying the complete journal touches the simulator zero times.
    let mut b = agent(env.space());
    let mut counter = archgym_core::env::CountingEnv::new(dram());
    let replayed = SearchLoop::new(config(budget))
        .run_resumable(&mut *b, &mut counter, &path)
        .unwrap();
    assert_identical(&reference, &replayed, "full replay");
    assert_eq!(counter.samples(), 0, "replay must not re-evaluate");
    cleanup(&path);
}
