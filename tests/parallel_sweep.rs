//! Integration tests for the parallel sweep executor on a real simulator:
//! a parallel lottery must be point-for-point identical to a serial one
//! (the determinism contract), and must actually scale on multicore hosts.

use std::time::Instant;

use archgym_agents::factory::AgentKind;
use archgym_bench::harness::{lottery, LotterySpec, Scale};
use archgym_core::sweep::SweepResult;
use archgym_core::Executor;
use archgym_dram::{DramEnv, DramWorkload, Objective};

fn dram_lottery(kind: AgentKind, spec: LotterySpec, jobs: usize) -> SweepResult {
    lottery(kind, &spec.jobs(jobs), || {
        Box::new(DramEnv::new(
            DramWorkload::Stream,
            Objective::low_power(1.0),
        ))
    })
    .unwrap()
}

/// Everything except wall-clock must match point-for-point.
fn assert_points_identical(serial: &SweepResult, parallel: &SweepResult) {
    assert_eq!(serial.agent, parallel.agent);
    assert_eq!(serial.env, parallel.env);
    assert_eq!(serial.points.len(), parallel.points.len());
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(a.hyper, b.hyper);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.result.best_reward, b.result.best_reward);
        assert_eq!(a.result.best_action, b.result.best_action);
        assert_eq!(a.result.best_observation, b.result.best_observation);
        assert_eq!(a.result.samples_used, b.result.samples_used);
        assert_eq!(a.result.reward_history, b.result.reward_history);
        assert_eq!(a.result.dataset, b.result.dataset);
    }
}

#[test]
fn parallel_dram_lottery_is_point_identical_to_serial() {
    for kind in [AgentKind::Ga, AgentKind::Rw] {
        let spec = LotterySpec::new(Scale::Smoke);
        let serial = dram_lottery(kind, spec, 1);
        let parallel = dram_lottery(kind, spec, 4);
        assert_points_identical(&serial, &parallel);
        // And `0` (all cores) picks some width without changing results.
        assert_points_identical(&serial, &dram_lottery(kind, spec, 0));
    }
}

#[test]
fn parallel_dram_lottery_speeds_up_on_multicore_hosts() {
    // Default-scale grid (9 assignments × 2 seeds = 18 units) with a
    // trimmed budget: enough work per unit for the fan-out to dominate
    // thread setup, small enough to keep the test in seconds.
    let spec = LotterySpec::new(Scale::Default).budget(256);

    let start = Instant::now();
    let serial = dram_lottery(AgentKind::Ga, spec, 1);
    let serial_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let parallel = dram_lottery(AgentKind::Ga, spec, 4);
    let parallel_s = start.elapsed().as_secs_f64();

    let speedup = serial_s / parallel_s.max(1e-9);
    println!(
        "parallel lottery speedup: serial {serial_s:.3}s / jobs=4 {parallel_s:.3}s = {speedup:.2}x"
    );
    assert_points_identical(&serial, &parallel);

    // Only hold the throughput bar on hosts that can deliver it.
    if Executor::available_parallelism() >= 4 {
        assert!(
            speedup >= 2.0,
            "expected >=2x speedup at jobs=4 on a >=4-core host, got {speedup:.2}x \
             (serial {serial_s:.3}s, parallel {parallel_s:.3}s)"
        );
    }
}
