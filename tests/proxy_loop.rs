//! Proxy screening determinism suite.
//!
//! Three guarantees, in order of importance:
//!
//! 1. **Proxy-off runs are bit-identical to the pre-proxy driver.** The
//!    fingerprints below were captured on this repo immediately before
//!    the screening layer landed; any drift means the unscreened path
//!    was not left alone.
//! 2. **Proxy-on runs are reproducible**: the same seed produces the
//!    same screened run serially, pooled at any job count, and across
//!    repeats.
//! 3. **Screened runs resume bit-identically** after a crash at any
//!    journal prefix, including torn tails.

use archgym_agents::factory::{build_agent, AgentKind};
use archgym_core::agent::RandomWalker;
use archgym_core::env::Environment;
use archgym_core::journal::RunJournal;
use archgym_core::screen::ScreenPolicy;
use archgym_core::search::{RunConfig, RunResult, SearchLoop};
use archgym_core::toy::PeakEnv;
use archgym_dram::{DramEnv, DramWorkload, Objective};
use archgym_proxy::OnlineProxy;
use std::fs;
use std::path::{Path, PathBuf};

/// FNV-style fold of the reward history — the same fingerprint the
/// pre-proxy captures used, so drift in any single reward bit shows.
fn fingerprint(history: &[f64]) -> u64 {
    history.iter().map(|r| r.to_bits()).fold(0u64, |acc, x| {
        acc.wrapping_mul(0x100000001B3).wrapping_add(x)
    })
}

fn fresh_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("archgym-proxy-loop-tests");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(RunJournal::snapshot_path(&path));
    path
}

fn cleanup(path: &Path) {
    let _ = fs::remove_file(path);
    let _ = fs::remove_file(RunJournal::snapshot_path(path));
}

fn assert_identical(reference: &RunResult, candidate: &RunResult, label: &str) {
    assert_eq!(reference.best_reward, candidate.best_reward, "{label}");
    assert_eq!(reference.best_action, candidate.best_action, "{label}");
    assert_eq!(reference.samples_used, candidate.samples_used, "{label}");
    assert_eq!(
        reference.reward_history, candidate.reward_history,
        "{label}"
    );
}

// --- 1. proxy-off bit-identity against pre-proxy captures -------------

#[test]
fn proxy_off_peak_run_matches_the_pre_proxy_fingerprint() {
    for jobs in [1, 4] {
        let env = PeakEnv::new(&[12, 12], vec![4, 9]);
        let mut agent = RandomWalker::new(env.space().clone(), 5);
        let result =
            SearchLoop::new(RunConfig::with_budget(48).jobs(jobs)).run_pooled(&mut agent, env);
        assert_eq!(result.best_reward, 0.5, "jobs={jobs}");
        assert_eq!(result.best_action.as_slice(), &[4, 8], "jobs={jobs}");
        assert_eq!(
            fingerprint(&result.reward_history),
            3512112665090659720,
            "peak/rw reward history drifted from the pre-proxy capture at jobs={jobs}"
        );
    }
}

#[test]
fn proxy_off_dram_run_matches_the_pre_proxy_fingerprint() {
    for jobs in [1, 4] {
        let env = DramEnv::new(DramWorkload::Stream, Objective::low_power(1.0));
        let mut agent = build_agent(AgentKind::Ga, env.space(), &Default::default(), 0).unwrap();
        let result =
            SearchLoop::new(RunConfig::with_budget(64).jobs(jobs)).run_pooled(&mut *agent, env);
        assert_eq!(result.best_reward, 1440.5695009427427, "jobs={jobs}");
        assert_eq!(
            result.best_action.as_slice(),
            &[3, 2, 4, 1, 3, 1, 1, 1, 0, 1],
            "jobs={jobs}"
        );
        assert_eq!(
            fingerprint(&result.reward_history),
            1363372723125192059,
            "dram/ga reward history drifted from the pre-proxy capture at jobs={jobs}"
        );
    }
}

// --- 2. proxy-on reproducibility --------------------------------------

fn screened_dram_run(jobs: usize) -> RunResult {
    let env = DramEnv::new(DramWorkload::Stream, Objective::low_power(1.0));
    let mut agent = build_agent(AgentKind::Ga, env.space(), &Default::default(), 7).unwrap();
    let policy = ScreenPolicy::default().warmup(32).revalidate_every(4);
    let mut screener = OnlineProxy::with_defaults(policy, 7).unwrap();
    SearchLoop::new(RunConfig::with_budget(128).jobs(jobs)).run_screened_pooled(
        &mut *agent,
        env,
        &mut screener,
    )
}

#[test]
fn screened_runs_are_reproducible_serial_and_pooled() {
    let serial = screened_dram_run(1);
    assert_eq!(serial.samples_used, 128);
    // Screening actually engaged: the history is the admitted stream,
    // which a 128-budget run with warmup 32 fills exactly.
    assert_eq!(serial.reward_history.len(), 128);
    let repeat = screened_dram_run(1);
    assert_identical(&serial, &repeat, "serial repeat");
    for jobs in [2, 4] {
        let pooled = screened_dram_run(jobs);
        assert_identical(&serial, &pooled, &format!("pooled jobs={jobs}"));
    }
}

// --- 3. screened resume after a crash ---------------------------------

fn screened_resumable_run(path: &Path) -> RunResult {
    let env = DramEnv::new(DramWorkload::Stream, Objective::low_power(1.0));
    let mut agent = build_agent(AgentKind::Ga, env.space(), &Default::default(), 9).unwrap();
    let policy = ScreenPolicy::default().warmup(24).revalidate_every(3);
    let mut screener = OnlineProxy::with_defaults(policy, 9).unwrap();
    SearchLoop::new(RunConfig::with_budget(96))
        .run_screened_resumable_pooled(&mut *agent, env, &mut screener, path)
        .unwrap()
}

#[test]
fn screened_resume_is_bit_identical_at_every_crash_prefix_class() {
    let path = fresh_path("screened-reference.jsonl");
    let reference = screened_resumable_run(&path);
    let full = fs::read_to_string(&path).unwrap();
    assert!(
        full.contains("\"type\":\"screen\""),
        "journal must record screening decisions"
    );
    let lines: Vec<&str> = full.lines().collect();

    // Whole-line crash prefixes: early (pre-warmup), mid-run (screening
    // active), and just before completion.
    for cut in [3, lines.len() / 2, lines.len() - 2] {
        let partial = fresh_path("screened-prefix.jsonl");
        fs::write(&partial, lines[..cut].join("\n") + "\n").unwrap();
        let resumed = screened_resumable_run(&partial);
        assert_identical(&reference, &resumed, &format!("cut after line {cut}"));
        cleanup(&partial);
    }

    // Torn tail: the partial last line a SIGKILL mid-write leaves.
    let bytes = fs::read(&path).unwrap();
    let torn = fresh_path("screened-torn.jsonl");
    fs::write(&torn, &bytes[..bytes.len() - 7]).unwrap();
    let resumed = screened_resumable_run(&torn);
    assert_identical(&reference, &resumed, "torn tail");
    cleanup(&torn);
    cleanup(&path);
}

#[test]
fn screened_journals_refuse_a_proxy_off_resume() {
    let path = fresh_path("screened-mismatch.jsonl");
    let _ = screened_resumable_run(&path);
    // Drop the completion marker so the journal looks like a crash, then
    // replay without a screener: the oversampled proposal batches cannot
    // match a plain run's, and the resume must fail loudly rather than
    // silently mix screened history into an unscreened run.
    let full = fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = full.lines().collect();
    let partial = fresh_path("screened-mismatch-cut.jsonl");
    fs::write(&partial, lines[..lines.len() / 2].join("\n") + "\n").unwrap();
    let env = DramEnv::new(DramWorkload::Stream, Objective::low_power(1.0));
    let mut agent = build_agent(AgentKind::Ga, env.space(), &Default::default(), 9).unwrap();
    let err = SearchLoop::new(RunConfig::with_budget(96))
        .run_resumable_pooled(&mut *agent, env, &partial)
        .unwrap_err();
    assert!(
        err.to_string().contains("diverged") || err.to_string().contains("screen"),
        "unexpected error: {err}"
    );
    cleanup(&partial);
    cleanup(&path);
}
