//! Integration tests: the dataset artifact pipeline — record, export,
//! re-import, merge, train a proxy (Sections 3.4 and 7 end to end).

use archgym::agents::factory::{build_agent, AgentKind};
use archgym::core::env::Environment;
use archgym::core::prelude::*;
use archgym::proxy::forest::ForestConfig;
use archgym::proxy::pipeline::{train_proxy_fixed, DatasetTiers};

fn explore(kind: AgentKind, budget: u64, seed: u64) -> Dataset {
    let mut env = archgym::dram::DramEnv::new(
        archgym::dram::DramWorkload::Random,
        archgym::dram::Objective::low_power(1.0),
    );
    let mut agent = build_agent(kind, env.space(), &HyperMap::new(), seed).unwrap();
    SearchLoop::new(RunConfig::with_budget(budget))
        .run(&mut agent, &mut env)
        .dataset
}

#[test]
fn jsonl_roundtrip_preserves_merged_multi_agent_datasets() {
    let mut pool = Dataset::new();
    for (i, kind) in AgentKind::ALL.into_iter().enumerate() {
        pool.merge(explore(kind, 40, i as u64));
    }
    assert_eq!(pool.len(), 200);
    assert_eq!(pool.composition().len(), 5);

    let mut bytes = Vec::new();
    pool.write_jsonl(&mut bytes).unwrap();
    let back = Dataset::read_jsonl(bytes.as_slice()).unwrap();
    assert_eq!(back, pool);
}

#[test]
fn csv_export_is_rectangular_for_real_exploration_data() {
    let pool = explore(AgentKind::Ga, 50, 9);
    let mut bytes = Vec::new();
    pool.write_csv(&mut bytes).unwrap();
    let text = String::from_utf8(bytes).unwrap();
    let mut lines = text.lines();
    let header = lines.next().unwrap();
    // env, agent, 10 action columns, 3 observation columns, reward, feasible.
    assert_eq!(header.split(',').count(), 2 + 10 + 3 + 2);
    let width = header.split(',').count();
    for line in lines {
        assert_eq!(line.split(',').count(), width);
    }
}

#[test]
fn pooled_dataset_trains_a_usable_power_proxy() {
    let mut pool = Dataset::new();
    for (i, kind) in AgentKind::ALL.into_iter().enumerate() {
        pool.merge(explore(kind, 160, 40 + i as u64));
    }
    let mut rng = archgym::core::seeded_rng(3);
    let (train, test) = pool.split(0.8, &mut rng);
    let proxy = train_proxy_fixed(&train, 1, &ForestConfig::default(), 5).unwrap();
    let report = proxy.report(&test).unwrap();
    assert!(
        report.relative_rmse < 0.10,
        "power proxy relative RMSE {:.3} too high",
        report.relative_rmse
    );
    assert!(
        report.correlation > 0.85,
        "power proxy correlation {:.3} too low",
        report.correlation
    );
}

#[test]
fn diversity_tiers_partition_by_source_agent() {
    let mut pool = Dataset::new();
    for (i, kind) in AgentKind::ALL.into_iter().enumerate() {
        pool.merge(explore(kind, 60, 80 + i as u64));
    }
    let mut rng = archgym::core::seeded_rng(4);
    let tiers = DatasetTiers::build(&pool, "rl", &[50], &mut rng).unwrap();
    let (_, single, diverse) = &tiers.tiers[0];
    assert!(single.iter().all(|t| t.agent == "rl"));
    assert!(diverse.composition().len() > 1);
    assert_eq!(single.len(), 50);
    assert_eq!(diverse.len(), 50);
}

#[test]
fn best_transition_matches_search_loop_best() {
    let mut env = archgym::dram::DramEnv::new(
        archgym::dram::DramWorkload::Cloud2,
        archgym::dram::Objective::low_power(1.0),
    );
    let mut agent = build_agent(AgentKind::Aco, env.space(), &HyperMap::new(), 6).unwrap();
    let result = SearchLoop::new(RunConfig::with_budget(120)).run(&mut agent, &mut env);
    let best = result.dataset.best().unwrap();
    assert_eq!(best.reward, result.best_reward);
    assert_eq!(best.action, result.best_action);
}
