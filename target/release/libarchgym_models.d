/root/repo/target/release/libarchgym_models.rlib: /root/repo/crates/models/src/lib.rs /tmp/stubs/serde/src/lib.rs /tmp/stubs/serde_derive/src/lib.rs
