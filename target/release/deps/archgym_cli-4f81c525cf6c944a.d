/root/repo/target/release/deps/archgym_cli-4f81c525cf6c944a.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/cmd.rs crates/cli/src/spec.rs

/root/repo/target/release/deps/libarchgym_cli-4f81c525cf6c944a.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/cmd.rs crates/cli/src/spec.rs

/root/repo/target/release/deps/libarchgym_cli-4f81c525cf6c944a.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/cmd.rs crates/cli/src/spec.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/cmd.rs:
crates/cli/src/spec.rs:
