/root/repo/target/release/deps/archgym_dram-df1cdb416f921640.d: crates/dram/src/lib.rs crates/dram/src/controller.rs crates/dram/src/device.rs crates/dram/src/env.rs crates/dram/src/power.rs crates/dram/src/trace.rs

/root/repo/target/release/deps/libarchgym_dram-df1cdb416f921640.rlib: crates/dram/src/lib.rs crates/dram/src/controller.rs crates/dram/src/device.rs crates/dram/src/env.rs crates/dram/src/power.rs crates/dram/src/trace.rs

/root/repo/target/release/deps/libarchgym_dram-df1cdb416f921640.rmeta: crates/dram/src/lib.rs crates/dram/src/controller.rs crates/dram/src/device.rs crates/dram/src/env.rs crates/dram/src/power.rs crates/dram/src/trace.rs

crates/dram/src/lib.rs:
crates/dram/src/controller.rs:
crates/dram/src/device.rs:
crates/dram/src/env.rs:
crates/dram/src/power.rs:
crates/dram/src/trace.rs:
