/root/repo/target/release/deps/archgym_soc-75dd93a8d98c9eb8.d: crates/soc/src/lib.rs crates/soc/src/env.rs crates/soc/src/soc.rs crates/soc/src/taskgraph.rs

/root/repo/target/release/deps/libarchgym_soc-75dd93a8d98c9eb8.rlib: crates/soc/src/lib.rs crates/soc/src/env.rs crates/soc/src/soc.rs crates/soc/src/taskgraph.rs

/root/repo/target/release/deps/libarchgym_soc-75dd93a8d98c9eb8.rmeta: crates/soc/src/lib.rs crates/soc/src/env.rs crates/soc/src/soc.rs crates/soc/src/taskgraph.rs

crates/soc/src/lib.rs:
crates/soc/src/env.rs:
crates/soc/src/soc.rs:
crates/soc/src/taskgraph.rs:
