/root/repo/target/release/deps/fig12-b82268800ec1b189.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-b82268800ec1b189: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
