/root/repo/target/release/deps/archgym_core-726cecd76b71e193.d: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/bundle.rs crates/core/src/env.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/pareto.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/space.rs crates/core/src/stats.rs crates/core/src/sweep.rs crates/core/src/toy.rs crates/core/src/trajectory.rs

/root/repo/target/release/deps/libarchgym_core-726cecd76b71e193.rlib: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/bundle.rs crates/core/src/env.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/pareto.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/space.rs crates/core/src/stats.rs crates/core/src/sweep.rs crates/core/src/toy.rs crates/core/src/trajectory.rs

/root/repo/target/release/deps/libarchgym_core-726cecd76b71e193.rmeta: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/bundle.rs crates/core/src/env.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/pareto.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/space.rs crates/core/src/stats.rs crates/core/src/sweep.rs crates/core/src/toy.rs crates/core/src/trajectory.rs

crates/core/src/lib.rs:
crates/core/src/agent.rs:
crates/core/src/bundle.rs:
crates/core/src/env.rs:
crates/core/src/error.rs:
crates/core/src/executor.rs:
crates/core/src/pareto.rs:
crates/core/src/reward.rs:
crates/core/src/search.rs:
crates/core/src/space.rs:
crates/core/src/stats.rs:
crates/core/src/sweep.rs:
crates/core/src/toy.rs:
crates/core/src/trajectory.rs:
