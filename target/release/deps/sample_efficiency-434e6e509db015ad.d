/root/repo/target/release/deps/sample_efficiency-434e6e509db015ad.d: crates/bench/src/bin/sample_efficiency.rs

/root/repo/target/release/deps/sample_efficiency-434e6e509db015ad: crates/bench/src/bin/sample_efficiency.rs

crates/bench/src/bin/sample_efficiency.rs:
