/root/repo/target/release/deps/fig6-635dd7940c18ee97.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-635dd7940c18ee97: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
