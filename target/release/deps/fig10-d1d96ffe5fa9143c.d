/root/repo/target/release/deps/fig10-d1d96ffe5fa9143c.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-d1d96ffe5fa9143c: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
