/root/repo/target/release/deps/archgym_accel-4cc1f8f01e0f2164.d: crates/accel/src/lib.rs crates/accel/src/arch.rs crates/accel/src/cost.rs crates/accel/src/env.rs

/root/repo/target/release/deps/libarchgym_accel-4cc1f8f01e0f2164.rlib: crates/accel/src/lib.rs crates/accel/src/arch.rs crates/accel/src/cost.rs crates/accel/src/env.rs

/root/repo/target/release/deps/libarchgym_accel-4cc1f8f01e0f2164.rmeta: crates/accel/src/lib.rs crates/accel/src/arch.rs crates/accel/src/cost.rs crates/accel/src/env.rs

crates/accel/src/lib.rs:
crates/accel/src/arch.rs:
crates/accel/src/cost.rs:
crates/accel/src/env.rs:
