/root/repo/target/release/deps/archgym_models-7aacf83b73cb0d7d.d: crates/models/src/lib.rs

/root/repo/target/release/deps/libarchgym_models-7aacf83b73cb0d7d.rlib: crates/models/src/lib.rs

/root/repo/target/release/deps/libarchgym_models-7aacf83b73cb0d7d.rmeta: crates/models/src/lib.rs

crates/models/src/lib.rs:
