/root/repo/target/release/deps/archgym_agents-aa959057d96d4018.d: crates/agents/src/lib.rs crates/agents/src/aco.rs crates/agents/src/bo.rs crates/agents/src/factory.rs crates/agents/src/ga.rs crates/agents/src/linalg.rs crates/agents/src/nn.rs crates/agents/src/ppo.rs crates/agents/src/rl.rs crates/agents/src/sa.rs

/root/repo/target/release/deps/libarchgym_agents-aa959057d96d4018.rlib: crates/agents/src/lib.rs crates/agents/src/aco.rs crates/agents/src/bo.rs crates/agents/src/factory.rs crates/agents/src/ga.rs crates/agents/src/linalg.rs crates/agents/src/nn.rs crates/agents/src/ppo.rs crates/agents/src/rl.rs crates/agents/src/sa.rs

/root/repo/target/release/deps/libarchgym_agents-aa959057d96d4018.rmeta: crates/agents/src/lib.rs crates/agents/src/aco.rs crates/agents/src/bo.rs crates/agents/src/factory.rs crates/agents/src/ga.rs crates/agents/src/linalg.rs crates/agents/src/nn.rs crates/agents/src/ppo.rs crates/agents/src/rl.rs crates/agents/src/sa.rs

crates/agents/src/lib.rs:
crates/agents/src/aco.rs:
crates/agents/src/bo.rs:
crates/agents/src/factory.rs:
crates/agents/src/ga.rs:
crates/agents/src/linalg.rs:
crates/agents/src/nn.rs:
crates/agents/src/ppo.rs:
crates/agents/src/rl.rs:
crates/agents/src/sa.rs:
