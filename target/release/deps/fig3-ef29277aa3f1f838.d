/root/repo/target/release/deps/fig3-ef29277aa3f1f838.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-ef29277aa3f1f838: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
