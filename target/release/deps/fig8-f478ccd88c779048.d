/root/repo/target/release/deps/fig8-f478ccd88c779048.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-f478ccd88c779048: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
