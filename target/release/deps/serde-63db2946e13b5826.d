/root/repo/target/release/deps/serde-63db2946e13b5826.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-63db2946e13b5826.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-63db2946e13b5826.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
