/root/repo/target/release/deps/archgym_proxy-a8dab6e5ba21b88b.d: crates/proxy/src/lib.rs crates/proxy/src/forest.rs crates/proxy/src/offline.rs crates/proxy/src/pipeline.rs crates/proxy/src/proxy_env.rs crates/proxy/src/tree.rs

/root/repo/target/release/deps/libarchgym_proxy-a8dab6e5ba21b88b.rlib: crates/proxy/src/lib.rs crates/proxy/src/forest.rs crates/proxy/src/offline.rs crates/proxy/src/pipeline.rs crates/proxy/src/proxy_env.rs crates/proxy/src/tree.rs

/root/repo/target/release/deps/libarchgym_proxy-a8dab6e5ba21b88b.rmeta: crates/proxy/src/lib.rs crates/proxy/src/forest.rs crates/proxy/src/offline.rs crates/proxy/src/pipeline.rs crates/proxy/src/proxy_env.rs crates/proxy/src/tree.rs

crates/proxy/src/lib.rs:
crates/proxy/src/forest.rs:
crates/proxy/src/offline.rs:
crates/proxy/src/pipeline.rs:
crates/proxy/src/proxy_env.rs:
crates/proxy/src/tree.rs:
