/root/repo/target/release/deps/fig5-97ee8af49fbdd323.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-97ee8af49fbdd323: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
