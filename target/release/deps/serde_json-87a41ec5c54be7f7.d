/root/repo/target/release/deps/serde_json-87a41ec5c54be7f7.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-87a41ec5c54be7f7.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-87a41ec5c54be7f7.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
