/root/repo/target/release/deps/archgym-d4289904f5a18dd3.d: src/lib.rs

/root/repo/target/release/deps/libarchgym-d4289904f5a18dd3.rlib: src/lib.rs

/root/repo/target/release/deps/libarchgym-d4289904f5a18dd3.rmeta: src/lib.rs

src/lib.rs:
