/root/repo/target/release/deps/ablation-ecc6f6c09eb501fe.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-ecc6f6c09eb501fe: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
