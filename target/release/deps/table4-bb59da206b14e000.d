/root/repo/target/release/deps/table4-bb59da206b14e000.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-bb59da206b14e000: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
