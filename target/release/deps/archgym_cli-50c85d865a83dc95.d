/root/repo/target/release/deps/archgym_cli-50c85d865a83dc95.d: crates/cli/src/bin/archgym.rs

/root/repo/target/release/deps/archgym_cli-50c85d865a83dc95: crates/cli/src/bin/archgym.rs

crates/cli/src/bin/archgym.rs:
