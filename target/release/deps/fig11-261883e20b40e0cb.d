/root/repo/target/release/deps/fig11-261883e20b40e0cb.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-261883e20b40e0cb: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
