/root/repo/target/release/deps/fig7-b098c73230397893.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-b098c73230397893: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
