/root/repo/target/release/deps/archgym_mapping-424d90081f3bf310.d: crates/mapping/src/lib.rs crates/mapping/src/cost.rs crates/mapping/src/env.rs crates/mapping/src/space.rs crates/mapping/src/two_level.rs

/root/repo/target/release/deps/libarchgym_mapping-424d90081f3bf310.rlib: crates/mapping/src/lib.rs crates/mapping/src/cost.rs crates/mapping/src/env.rs crates/mapping/src/space.rs crates/mapping/src/two_level.rs

/root/repo/target/release/deps/libarchgym_mapping-424d90081f3bf310.rmeta: crates/mapping/src/lib.rs crates/mapping/src/cost.rs crates/mapping/src/env.rs crates/mapping/src/space.rs crates/mapping/src/two_level.rs

crates/mapping/src/lib.rs:
crates/mapping/src/cost.rs:
crates/mapping/src/env.rs:
crates/mapping/src/space.rs:
crates/mapping/src/two_level.rs:
