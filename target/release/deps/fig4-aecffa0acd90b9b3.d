/root/repo/target/release/deps/fig4-aecffa0acd90b9b3.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-aecffa0acd90b9b3: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
