/root/repo/target/debug/deps/reproduction_smoke-22ed455e08707867.d: tests/reproduction_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libreproduction_smoke-22ed455e08707867.rmeta: tests/reproduction_smoke.rs Cargo.toml

tests/reproduction_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
