/root/repo/target/debug/deps/archgym_cli-1949471699fd0fcf.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/cmd.rs crates/cli/src/spec.rs

/root/repo/target/debug/deps/archgym_cli-1949471699fd0fcf: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/cmd.rs crates/cli/src/spec.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/cmd.rs:
crates/cli/src/spec.rs:
