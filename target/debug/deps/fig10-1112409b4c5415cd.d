/root/repo/target/debug/deps/fig10-1112409b4c5415cd.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-1112409b4c5415cd.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
