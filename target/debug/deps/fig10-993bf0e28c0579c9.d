/root/repo/target/debug/deps/fig10-993bf0e28c0579c9.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-993bf0e28c0579c9: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
