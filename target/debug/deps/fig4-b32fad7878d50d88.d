/root/repo/target/debug/deps/fig4-b32fad7878d50d88.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-b32fad7878d50d88: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
