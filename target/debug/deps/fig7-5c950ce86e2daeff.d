/root/repo/target/debug/deps/fig7-5c950ce86e2daeff.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-5c950ce86e2daeff: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
