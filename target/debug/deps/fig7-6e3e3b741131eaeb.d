/root/repo/target/debug/deps/fig7-6e3e3b741131eaeb.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-6e3e3b741131eaeb.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
