/root/repo/target/debug/deps/archgym-1b512d3afc2c1e7d.d: src/lib.rs

/root/repo/target/debug/deps/archgym-1b512d3afc2c1e7d: src/lib.rs

src/lib.rs:
