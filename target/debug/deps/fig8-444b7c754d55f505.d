/root/repo/target/debug/deps/fig8-444b7c754d55f505.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-444b7c754d55f505: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
