/root/repo/target/debug/deps/archgym_proxy-439dd7b19627495e.d: crates/proxy/src/lib.rs crates/proxy/src/forest.rs crates/proxy/src/offline.rs crates/proxy/src/pipeline.rs crates/proxy/src/proxy_env.rs crates/proxy/src/tree.rs

/root/repo/target/debug/deps/archgym_proxy-439dd7b19627495e: crates/proxy/src/lib.rs crates/proxy/src/forest.rs crates/proxy/src/offline.rs crates/proxy/src/pipeline.rs crates/proxy/src/proxy_env.rs crates/proxy/src/tree.rs

crates/proxy/src/lib.rs:
crates/proxy/src/forest.rs:
crates/proxy/src/offline.rs:
crates/proxy/src/pipeline.rs:
crates/proxy/src/proxy_env.rs:
crates/proxy/src/tree.rs:
