/root/repo/target/debug/deps/fig5-b833551ca16661aa.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-b833551ca16661aa: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
