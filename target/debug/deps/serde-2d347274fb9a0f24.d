/root/repo/target/debug/deps/serde-2d347274fb9a0f24.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-2d347274fb9a0f24.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
