/root/repo/target/debug/deps/table4-ae6683b5812f56fc.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-ae6683b5812f56fc: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
