/root/repo/target/debug/deps/agents_on_envs-7d4187a8d0da5a61.d: tests/agents_on_envs.rs

/root/repo/target/debug/deps/agents_on_envs-7d4187a8d0da5a61: tests/agents_on_envs.rs

tests/agents_on_envs.rs:
