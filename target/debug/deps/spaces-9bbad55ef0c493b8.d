/root/repo/target/debug/deps/spaces-9bbad55ef0c493b8.d: tests/spaces.rs Cargo.toml

/root/repo/target/debug/deps/libspaces-9bbad55ef0c493b8.rmeta: tests/spaces.rs Cargo.toml

tests/spaces.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
