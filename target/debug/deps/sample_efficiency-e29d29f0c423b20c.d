/root/repo/target/debug/deps/sample_efficiency-e29d29f0c423b20c.d: crates/bench/src/bin/sample_efficiency.rs

/root/repo/target/debug/deps/sample_efficiency-e29d29f0c423b20c: crates/bench/src/bin/sample_efficiency.rs

crates/bench/src/bin/sample_efficiency.rs:
