/root/repo/target/debug/deps/agents-fb862bce0367b9b8.d: crates/bench/benches/agents.rs Cargo.toml

/root/repo/target/debug/deps/libagents-fb862bce0367b9b8.rmeta: crates/bench/benches/agents.rs Cargo.toml

crates/bench/benches/agents.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
