/root/repo/target/debug/deps/fig6-2953fe4363f30311.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-2953fe4363f30311: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
