/root/repo/target/debug/deps/archgym-e2beb35d2ea6f423.d: src/lib.rs

/root/repo/target/debug/deps/libarchgym-e2beb35d2ea6f423.rlib: src/lib.rs

/root/repo/target/debug/deps/libarchgym-e2beb35d2ea6f423.rmeta: src/lib.rs

src/lib.rs:
