/root/repo/target/debug/deps/fig3-1fb9a4c5b96e746d.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-1fb9a4c5b96e746d: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
