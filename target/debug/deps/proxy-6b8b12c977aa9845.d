/root/repo/target/debug/deps/proxy-6b8b12c977aa9845.d: crates/bench/benches/proxy.rs Cargo.toml

/root/repo/target/debug/deps/libproxy-6b8b12c977aa9845.rmeta: crates/bench/benches/proxy.rs Cargo.toml

crates/bench/benches/proxy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
