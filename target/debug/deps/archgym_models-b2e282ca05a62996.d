/root/repo/target/debug/deps/archgym_models-b2e282ca05a62996.d: crates/models/src/lib.rs

/root/repo/target/debug/deps/libarchgym_models-b2e282ca05a62996.rlib: crates/models/src/lib.rs

/root/repo/target/debug/deps/libarchgym_models-b2e282ca05a62996.rmeta: crates/models/src/lib.rs

crates/models/src/lib.rs:
