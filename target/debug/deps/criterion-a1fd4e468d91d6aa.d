/root/repo/target/debug/deps/criterion-a1fd4e468d91d6aa.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-a1fd4e468d91d6aa.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-a1fd4e468d91d6aa.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
