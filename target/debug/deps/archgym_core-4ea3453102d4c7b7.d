/root/repo/target/debug/deps/archgym_core-4ea3453102d4c7b7.d: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/bundle.rs crates/core/src/env.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/pareto.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/space.rs crates/core/src/stats.rs crates/core/src/sweep.rs crates/core/src/toy.rs crates/core/src/trajectory.rs

/root/repo/target/debug/deps/libarchgym_core-4ea3453102d4c7b7.rlib: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/bundle.rs crates/core/src/env.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/pareto.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/space.rs crates/core/src/stats.rs crates/core/src/sweep.rs crates/core/src/toy.rs crates/core/src/trajectory.rs

/root/repo/target/debug/deps/libarchgym_core-4ea3453102d4c7b7.rmeta: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/bundle.rs crates/core/src/env.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/pareto.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/space.rs crates/core/src/stats.rs crates/core/src/sweep.rs crates/core/src/toy.rs crates/core/src/trajectory.rs

crates/core/src/lib.rs:
crates/core/src/agent.rs:
crates/core/src/bundle.rs:
crates/core/src/env.rs:
crates/core/src/error.rs:
crates/core/src/executor.rs:
crates/core/src/pareto.rs:
crates/core/src/reward.rs:
crates/core/src/search.rs:
crates/core/src/space.rs:
crates/core/src/stats.rs:
crates/core/src/sweep.rs:
crates/core/src/toy.rs:
crates/core/src/trajectory.rs:
