/root/repo/target/debug/deps/archgym_accel-4df8d00c7aae14ac.d: crates/accel/src/lib.rs crates/accel/src/arch.rs crates/accel/src/cost.rs crates/accel/src/env.rs Cargo.toml

/root/repo/target/debug/deps/libarchgym_accel-4df8d00c7aae14ac.rmeta: crates/accel/src/lib.rs crates/accel/src/arch.rs crates/accel/src/cost.rs crates/accel/src/env.rs Cargo.toml

crates/accel/src/lib.rs:
crates/accel/src/arch.rs:
crates/accel/src/cost.rs:
crates/accel/src/env.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
