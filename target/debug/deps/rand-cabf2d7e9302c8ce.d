/root/repo/target/debug/deps/rand-cabf2d7e9302c8ce.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-cabf2d7e9302c8ce.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
