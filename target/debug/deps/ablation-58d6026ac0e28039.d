/root/repo/target/debug/deps/ablation-58d6026ac0e28039.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-58d6026ac0e28039: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
