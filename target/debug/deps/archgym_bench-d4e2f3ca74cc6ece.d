/root/repo/target/debug/deps/archgym_bench-d4e2f3ca74cc6ece.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/harness.rs crates/bench/src/sample_efficiency.rs crates/bench/src/table4.rs Cargo.toml

/root/repo/target/debug/deps/libarchgym_bench-d4e2f3ca74cc6ece.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/harness.rs crates/bench/src/sample_efficiency.rs crates/bench/src/table4.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig12.rs:
crates/bench/src/fig4.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6.rs:
crates/bench/src/fig7.rs:
crates/bench/src/fig8.rs:
crates/bench/src/harness.rs:
crates/bench/src/sample_efficiency.rs:
crates/bench/src/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
