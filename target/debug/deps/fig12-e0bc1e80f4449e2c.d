/root/repo/target/debug/deps/fig12-e0bc1e80f4449e2c.d: crates/bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/debug/deps/libfig12-e0bc1e80f4449e2c.rmeta: crates/bench/src/bin/fig12.rs Cargo.toml

crates/bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
