/root/repo/target/debug/deps/fig6-48d0b399bd43c730.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-48d0b399bd43c730: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
