/root/repo/target/debug/deps/fig6-9e99c4536d18b7a3.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-9e99c4536d18b7a3.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
