/root/repo/target/debug/deps/fig4-7d16e5e748729849.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-7d16e5e748729849: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
