/root/repo/target/debug/deps/spaces-62191134edb0fe27.d: tests/spaces.rs

/root/repo/target/debug/deps/spaces-62191134edb0fe27: tests/spaces.rs

tests/spaces.rs:
