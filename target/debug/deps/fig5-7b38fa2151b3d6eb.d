/root/repo/target/debug/deps/fig5-7b38fa2151b3d6eb.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-7b38fa2151b3d6eb: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
