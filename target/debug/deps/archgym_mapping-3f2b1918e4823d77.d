/root/repo/target/debug/deps/archgym_mapping-3f2b1918e4823d77.d: crates/mapping/src/lib.rs crates/mapping/src/cost.rs crates/mapping/src/env.rs crates/mapping/src/space.rs crates/mapping/src/two_level.rs Cargo.toml

/root/repo/target/debug/deps/libarchgym_mapping-3f2b1918e4823d77.rmeta: crates/mapping/src/lib.rs crates/mapping/src/cost.rs crates/mapping/src/env.rs crates/mapping/src/space.rs crates/mapping/src/two_level.rs Cargo.toml

crates/mapping/src/lib.rs:
crates/mapping/src/cost.rs:
crates/mapping/src/env.rs:
crates/mapping/src/space.rs:
crates/mapping/src/two_level.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
