/root/repo/target/debug/deps/fig11-50b38077349a13d3.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-50b38077349a13d3: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
