/root/repo/target/debug/deps/archgym_soc-4bce7e92eb9731b7.d: crates/soc/src/lib.rs crates/soc/src/env.rs crates/soc/src/soc.rs crates/soc/src/taskgraph.rs

/root/repo/target/debug/deps/libarchgym_soc-4bce7e92eb9731b7.rlib: crates/soc/src/lib.rs crates/soc/src/env.rs crates/soc/src/soc.rs crates/soc/src/taskgraph.rs

/root/repo/target/debug/deps/libarchgym_soc-4bce7e92eb9731b7.rmeta: crates/soc/src/lib.rs crates/soc/src/env.rs crates/soc/src/soc.rs crates/soc/src/taskgraph.rs

crates/soc/src/lib.rs:
crates/soc/src/env.rs:
crates/soc/src/soc.rs:
crates/soc/src/taskgraph.rs:
