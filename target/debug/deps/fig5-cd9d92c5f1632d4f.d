/root/repo/target/debug/deps/fig5-cd9d92c5f1632d4f.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-cd9d92c5f1632d4f.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
