/root/repo/target/debug/deps/fig3-30fc2c30092f3a43.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-30fc2c30092f3a43: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
