/root/repo/target/debug/deps/archgym_accel-aa89f90d871f3cb3.d: crates/accel/src/lib.rs crates/accel/src/arch.rs crates/accel/src/cost.rs crates/accel/src/env.rs Cargo.toml

/root/repo/target/debug/deps/libarchgym_accel-aa89f90d871f3cb3.rmeta: crates/accel/src/lib.rs crates/accel/src/arch.rs crates/accel/src/cost.rs crates/accel/src/env.rs Cargo.toml

crates/accel/src/lib.rs:
crates/accel/src/arch.rs:
crates/accel/src/cost.rs:
crates/accel/src/env.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
