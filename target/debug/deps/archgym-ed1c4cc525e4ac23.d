/root/repo/target/debug/deps/archgym-ed1c4cc525e4ac23.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libarchgym-ed1c4cc525e4ac23.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
