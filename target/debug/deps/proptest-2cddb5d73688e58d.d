/root/repo/target/debug/deps/proptest-2cddb5d73688e58d.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-2cddb5d73688e58d.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
