/root/repo/target/debug/deps/fig3-dd0d74c4051a7c0e.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-dd0d74c4051a7c0e.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
