/root/repo/target/debug/deps/archgym_agents-9235bb0d65d92d7a.d: crates/agents/src/lib.rs crates/agents/src/aco.rs crates/agents/src/bo.rs crates/agents/src/factory.rs crates/agents/src/ga.rs crates/agents/src/linalg.rs crates/agents/src/nn.rs crates/agents/src/ppo.rs crates/agents/src/rl.rs crates/agents/src/sa.rs

/root/repo/target/debug/deps/libarchgym_agents-9235bb0d65d92d7a.rlib: crates/agents/src/lib.rs crates/agents/src/aco.rs crates/agents/src/bo.rs crates/agents/src/factory.rs crates/agents/src/ga.rs crates/agents/src/linalg.rs crates/agents/src/nn.rs crates/agents/src/ppo.rs crates/agents/src/rl.rs crates/agents/src/sa.rs

/root/repo/target/debug/deps/libarchgym_agents-9235bb0d65d92d7a.rmeta: crates/agents/src/lib.rs crates/agents/src/aco.rs crates/agents/src/bo.rs crates/agents/src/factory.rs crates/agents/src/ga.rs crates/agents/src/linalg.rs crates/agents/src/nn.rs crates/agents/src/ppo.rs crates/agents/src/rl.rs crates/agents/src/sa.rs

crates/agents/src/lib.rs:
crates/agents/src/aco.rs:
crates/agents/src/bo.rs:
crates/agents/src/factory.rs:
crates/agents/src/ga.rs:
crates/agents/src/linalg.rs:
crates/agents/src/nn.rs:
crates/agents/src/ppo.rs:
crates/agents/src/rl.rs:
crates/agents/src/sa.rs:
