/root/repo/target/debug/deps/parallel_sweep-77ac368f41ab9679.d: tests/parallel_sweep.rs

/root/repo/target/debug/deps/parallel_sweep-77ac368f41ab9679: tests/parallel_sweep.rs

tests/parallel_sweep.rs:
