/root/repo/target/debug/deps/archgym_bench-f2d14c971804d692.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/harness.rs crates/bench/src/sample_efficiency.rs crates/bench/src/table4.rs

/root/repo/target/debug/deps/libarchgym_bench-f2d14c971804d692.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/harness.rs crates/bench/src/sample_efficiency.rs crates/bench/src/table4.rs

/root/repo/target/debug/deps/libarchgym_bench-f2d14c971804d692.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/harness.rs crates/bench/src/sample_efficiency.rs crates/bench/src/table4.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig12.rs:
crates/bench/src/fig4.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6.rs:
crates/bench/src/fig7.rs:
crates/bench/src/fig8.rs:
crates/bench/src/harness.rs:
crates/bench/src/sample_efficiency.rs:
crates/bench/src/table4.rs:
