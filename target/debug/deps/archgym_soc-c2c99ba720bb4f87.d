/root/repo/target/debug/deps/archgym_soc-c2c99ba720bb4f87.d: crates/soc/src/lib.rs crates/soc/src/env.rs crates/soc/src/soc.rs crates/soc/src/taskgraph.rs

/root/repo/target/debug/deps/archgym_soc-c2c99ba720bb4f87: crates/soc/src/lib.rs crates/soc/src/env.rs crates/soc/src/soc.rs crates/soc/src/taskgraph.rs

crates/soc/src/lib.rs:
crates/soc/src/env.rs:
crates/soc/src/soc.rs:
crates/soc/src/taskgraph.rs:
