/root/repo/target/debug/deps/sample_efficiency-97ab5aa5f86a5333.d: crates/bench/src/bin/sample_efficiency.rs Cargo.toml

/root/repo/target/debug/deps/libsample_efficiency-97ab5aa5f86a5333.rmeta: crates/bench/src/bin/sample_efficiency.rs Cargo.toml

crates/bench/src/bin/sample_efficiency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
