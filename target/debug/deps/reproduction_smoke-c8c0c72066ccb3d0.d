/root/repo/target/debug/deps/reproduction_smoke-c8c0c72066ccb3d0.d: tests/reproduction_smoke.rs

/root/repo/target/debug/deps/reproduction_smoke-c8c0c72066ccb3d0: tests/reproduction_smoke.rs

tests/reproduction_smoke.rs:
