/root/repo/target/debug/deps/archgym_accel-38c47050be448ae2.d: crates/accel/src/lib.rs crates/accel/src/arch.rs crates/accel/src/cost.rs crates/accel/src/env.rs

/root/repo/target/debug/deps/archgym_accel-38c47050be448ae2: crates/accel/src/lib.rs crates/accel/src/arch.rs crates/accel/src/cost.rs crates/accel/src/env.rs

crates/accel/src/lib.rs:
crates/accel/src/arch.rs:
crates/accel/src/cost.rs:
crates/accel/src/env.rs:
