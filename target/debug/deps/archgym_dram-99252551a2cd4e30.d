/root/repo/target/debug/deps/archgym_dram-99252551a2cd4e30.d: crates/dram/src/lib.rs crates/dram/src/controller.rs crates/dram/src/device.rs crates/dram/src/env.rs crates/dram/src/power.rs crates/dram/src/trace.rs

/root/repo/target/debug/deps/libarchgym_dram-99252551a2cd4e30.rlib: crates/dram/src/lib.rs crates/dram/src/controller.rs crates/dram/src/device.rs crates/dram/src/env.rs crates/dram/src/power.rs crates/dram/src/trace.rs

/root/repo/target/debug/deps/libarchgym_dram-99252551a2cd4e30.rmeta: crates/dram/src/lib.rs crates/dram/src/controller.rs crates/dram/src/device.rs crates/dram/src/env.rs crates/dram/src/power.rs crates/dram/src/trace.rs

crates/dram/src/lib.rs:
crates/dram/src/controller.rs:
crates/dram/src/device.rs:
crates/dram/src/env.rs:
crates/dram/src/power.rs:
crates/dram/src/trace.rs:
