/root/repo/target/debug/deps/dataset_pipeline-a7e1a9ecd491aa9c.d: tests/dataset_pipeline.rs

/root/repo/target/debug/deps/dataset_pipeline-a7e1a9ecd491aa9c: tests/dataset_pipeline.rs

tests/dataset_pipeline.rs:
