/root/repo/target/debug/deps/archgym_dram-f6e001bbff6706a2.d: crates/dram/src/lib.rs crates/dram/src/controller.rs crates/dram/src/device.rs crates/dram/src/env.rs crates/dram/src/power.rs crates/dram/src/trace.rs

/root/repo/target/debug/deps/archgym_dram-f6e001bbff6706a2: crates/dram/src/lib.rs crates/dram/src/controller.rs crates/dram/src/device.rs crates/dram/src/env.rs crates/dram/src/power.rs crates/dram/src/trace.rs

crates/dram/src/lib.rs:
crates/dram/src/controller.rs:
crates/dram/src/device.rs:
crates/dram/src/env.rs:
crates/dram/src/power.rs:
crates/dram/src/trace.rs:
