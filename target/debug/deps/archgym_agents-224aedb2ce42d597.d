/root/repo/target/debug/deps/archgym_agents-224aedb2ce42d597.d: crates/agents/src/lib.rs crates/agents/src/aco.rs crates/agents/src/bo.rs crates/agents/src/factory.rs crates/agents/src/ga.rs crates/agents/src/linalg.rs crates/agents/src/nn.rs crates/agents/src/ppo.rs crates/agents/src/rl.rs crates/agents/src/sa.rs

/root/repo/target/debug/deps/archgym_agents-224aedb2ce42d597: crates/agents/src/lib.rs crates/agents/src/aco.rs crates/agents/src/bo.rs crates/agents/src/factory.rs crates/agents/src/ga.rs crates/agents/src/linalg.rs crates/agents/src/nn.rs crates/agents/src/ppo.rs crates/agents/src/rl.rs crates/agents/src/sa.rs

crates/agents/src/lib.rs:
crates/agents/src/aco.rs:
crates/agents/src/bo.rs:
crates/agents/src/factory.rs:
crates/agents/src/ga.rs:
crates/agents/src/linalg.rs:
crates/agents/src/nn.rs:
crates/agents/src/ppo.rs:
crates/agents/src/rl.rs:
crates/agents/src/sa.rs:
