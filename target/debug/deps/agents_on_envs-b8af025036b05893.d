/root/repo/target/debug/deps/agents_on_envs-b8af025036b05893.d: tests/agents_on_envs.rs Cargo.toml

/root/repo/target/debug/deps/libagents_on_envs-b8af025036b05893.rmeta: tests/agents_on_envs.rs Cargo.toml

tests/agents_on_envs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
