/root/repo/target/debug/deps/fig8-bfde9fd91bddcfd6.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-bfde9fd91bddcfd6: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
