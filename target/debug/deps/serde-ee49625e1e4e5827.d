/root/repo/target/debug/deps/serde-ee49625e1e4e5827.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-ee49625e1e4e5827.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-ee49625e1e4e5827.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
