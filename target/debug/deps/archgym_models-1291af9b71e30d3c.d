/root/repo/target/debug/deps/archgym_models-1291af9b71e30d3c.d: crates/models/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libarchgym_models-1291af9b71e30d3c.rmeta: crates/models/src/lib.rs Cargo.toml

crates/models/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
