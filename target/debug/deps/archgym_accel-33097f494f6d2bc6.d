/root/repo/target/debug/deps/archgym_accel-33097f494f6d2bc6.d: crates/accel/src/lib.rs crates/accel/src/arch.rs crates/accel/src/cost.rs crates/accel/src/env.rs

/root/repo/target/debug/deps/libarchgym_accel-33097f494f6d2bc6.rlib: crates/accel/src/lib.rs crates/accel/src/arch.rs crates/accel/src/cost.rs crates/accel/src/env.rs

/root/repo/target/debug/deps/libarchgym_accel-33097f494f6d2bc6.rmeta: crates/accel/src/lib.rs crates/accel/src/arch.rs crates/accel/src/cost.rs crates/accel/src/env.rs

crates/accel/src/lib.rs:
crates/accel/src/arch.rs:
crates/accel/src/cost.rs:
crates/accel/src/env.rs:
