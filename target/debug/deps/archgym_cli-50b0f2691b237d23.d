/root/repo/target/debug/deps/archgym_cli-50b0f2691b237d23.d: crates/cli/src/bin/archgym.rs Cargo.toml

/root/repo/target/debug/deps/libarchgym_cli-50b0f2691b237d23.rmeta: crates/cli/src/bin/archgym.rs Cargo.toml

crates/cli/src/bin/archgym.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
