/root/repo/target/debug/deps/archgym_cli-0b87a74b793d575e.d: crates/cli/src/bin/archgym.rs

/root/repo/target/debug/deps/archgym_cli-0b87a74b793d575e: crates/cli/src/bin/archgym.rs

crates/cli/src/bin/archgym.rs:
