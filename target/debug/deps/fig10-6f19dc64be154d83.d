/root/repo/target/debug/deps/fig10-6f19dc64be154d83.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-6f19dc64be154d83: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
