/root/repo/target/debug/deps/fig7-64c2214ea69c28ab.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-64c2214ea69c28ab: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
