/root/repo/target/debug/deps/serde_derive-43e2ba9dc4c69573.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-43e2ba9dc4c69573.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
