/root/repo/target/debug/deps/archgym-3760ae7bc1e4620a.d: src/lib.rs

/root/repo/target/debug/deps/libarchgym-3760ae7bc1e4620a.rlib: src/lib.rs

/root/repo/target/debug/deps/libarchgym-3760ae7bc1e4620a.rmeta: src/lib.rs

src/lib.rs:
