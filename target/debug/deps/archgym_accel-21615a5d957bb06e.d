/root/repo/target/debug/deps/archgym_accel-21615a5d957bb06e.d: crates/accel/src/lib.rs crates/accel/src/arch.rs crates/accel/src/cost.rs crates/accel/src/env.rs

/root/repo/target/debug/deps/libarchgym_accel-21615a5d957bb06e.rlib: crates/accel/src/lib.rs crates/accel/src/arch.rs crates/accel/src/cost.rs crates/accel/src/env.rs

/root/repo/target/debug/deps/libarchgym_accel-21615a5d957bb06e.rmeta: crates/accel/src/lib.rs crates/accel/src/arch.rs crates/accel/src/cost.rs crates/accel/src/env.rs

crates/accel/src/lib.rs:
crates/accel/src/arch.rs:
crates/accel/src/cost.rs:
crates/accel/src/env.rs:
