/root/repo/target/debug/deps/sample_efficiency-903012109b8f7625.d: crates/bench/src/bin/sample_efficiency.rs

/root/repo/target/debug/deps/sample_efficiency-903012109b8f7625: crates/bench/src/bin/sample_efficiency.rs

crates/bench/src/bin/sample_efficiency.rs:
