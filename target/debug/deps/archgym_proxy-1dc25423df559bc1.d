/root/repo/target/debug/deps/archgym_proxy-1dc25423df559bc1.d: crates/proxy/src/lib.rs crates/proxy/src/forest.rs crates/proxy/src/offline.rs crates/proxy/src/pipeline.rs crates/proxy/src/proxy_env.rs crates/proxy/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libarchgym_proxy-1dc25423df559bc1.rmeta: crates/proxy/src/lib.rs crates/proxy/src/forest.rs crates/proxy/src/offline.rs crates/proxy/src/pipeline.rs crates/proxy/src/proxy_env.rs crates/proxy/src/tree.rs Cargo.toml

crates/proxy/src/lib.rs:
crates/proxy/src/forest.rs:
crates/proxy/src/offline.rs:
crates/proxy/src/pipeline.rs:
crates/proxy/src/proxy_env.rs:
crates/proxy/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
