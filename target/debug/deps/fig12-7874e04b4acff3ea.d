/root/repo/target/debug/deps/fig12-7874e04b4acff3ea.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-7874e04b4acff3ea: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
