/root/repo/target/debug/deps/fig8_time_to_completion-48269deaeb006b35.d: crates/bench/benches/fig8_time_to_completion.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_time_to_completion-48269deaeb006b35.rmeta: crates/bench/benches/fig8_time_to_completion.rs Cargo.toml

crates/bench/benches/fig8_time_to_completion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
