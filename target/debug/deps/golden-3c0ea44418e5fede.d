/root/repo/target/debug/deps/golden-3c0ea44418e5fede.d: tests/golden.rs Cargo.toml

/root/repo/target/debug/deps/libgolden-3c0ea44418e5fede.rmeta: tests/golden.rs Cargo.toml

tests/golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
