/root/repo/target/debug/deps/archgym_soc-eb8efdd09f3ac0ac.d: crates/soc/src/lib.rs crates/soc/src/env.rs crates/soc/src/soc.rs crates/soc/src/taskgraph.rs Cargo.toml

/root/repo/target/debug/deps/libarchgym_soc-eb8efdd09f3ac0ac.rmeta: crates/soc/src/lib.rs crates/soc/src/env.rs crates/soc/src/soc.rs crates/soc/src/taskgraph.rs Cargo.toml

crates/soc/src/lib.rs:
crates/soc/src/env.rs:
crates/soc/src/soc.rs:
crates/soc/src/taskgraph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
