/root/repo/target/debug/deps/dataset_pipeline-2c59e3f4ef4e28b5.d: tests/dataset_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libdataset_pipeline-2c59e3f4ef4e28b5.rmeta: tests/dataset_pipeline.rs Cargo.toml

tests/dataset_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
