/root/repo/target/debug/deps/serde_json-5260c9852897746c.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-5260c9852897746c.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-5260c9852897746c.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
