/root/repo/target/debug/deps/archgym_cli-0d372bb5336c5627.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/cmd.rs crates/cli/src/spec.rs

/root/repo/target/debug/deps/libarchgym_cli-0d372bb5336c5627.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/cmd.rs crates/cli/src/spec.rs

/root/repo/target/debug/deps/libarchgym_cli-0d372bb5336c5627.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/cmd.rs crates/cli/src/spec.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/cmd.rs:
crates/cli/src/spec.rs:
