/root/repo/target/debug/deps/archgym-6e6d1ee42b9f474f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libarchgym-6e6d1ee42b9f474f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
