/root/repo/target/debug/deps/fig11-df69899bb7520f99.d: crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-df69899bb7520f99.rmeta: crates/bench/src/bin/fig11.rs Cargo.toml

crates/bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
