/root/repo/target/debug/deps/simulators-967f6c83a5287827.d: crates/bench/benches/simulators.rs Cargo.toml

/root/repo/target/debug/deps/libsimulators-967f6c83a5287827.rmeta: crates/bench/benches/simulators.rs Cargo.toml

crates/bench/benches/simulators.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
