/root/repo/target/debug/deps/archgym_cli-977101120ec0d8e5.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/cmd.rs crates/cli/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libarchgym_cli-977101120ec0d8e5.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/cmd.rs crates/cli/src/spec.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/cmd.rs:
crates/cli/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
