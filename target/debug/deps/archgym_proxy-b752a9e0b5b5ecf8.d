/root/repo/target/debug/deps/archgym_proxy-b752a9e0b5b5ecf8.d: crates/proxy/src/lib.rs crates/proxy/src/forest.rs crates/proxy/src/offline.rs crates/proxy/src/pipeline.rs crates/proxy/src/proxy_env.rs crates/proxy/src/tree.rs

/root/repo/target/debug/deps/libarchgym_proxy-b752a9e0b5b5ecf8.rlib: crates/proxy/src/lib.rs crates/proxy/src/forest.rs crates/proxy/src/offline.rs crates/proxy/src/pipeline.rs crates/proxy/src/proxy_env.rs crates/proxy/src/tree.rs

/root/repo/target/debug/deps/libarchgym_proxy-b752a9e0b5b5ecf8.rmeta: crates/proxy/src/lib.rs crates/proxy/src/forest.rs crates/proxy/src/offline.rs crates/proxy/src/pipeline.rs crates/proxy/src/proxy_env.rs crates/proxy/src/tree.rs

crates/proxy/src/lib.rs:
crates/proxy/src/forest.rs:
crates/proxy/src/offline.rs:
crates/proxy/src/pipeline.rs:
crates/proxy/src/proxy_env.rs:
crates/proxy/src/tree.rs:
