/root/repo/target/debug/deps/fig12_proxy_speedup-b390c7d23e1cdb8c.d: crates/bench/benches/fig12_proxy_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_proxy_speedup-b390c7d23e1cdb8c.rmeta: crates/bench/benches/fig12_proxy_speedup.rs Cargo.toml

crates/bench/benches/fig12_proxy_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
