/root/repo/target/debug/deps/criterion-bc257c101748371c.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-bc257c101748371c.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
