/root/repo/target/debug/deps/table4-fe89d01cf741a916.d: crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-fe89d01cf741a916.rmeta: crates/bench/src/bin/table4.rs Cargo.toml

crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
