/root/repo/target/debug/deps/archgym_core-2e5276ddf051e2c2.d: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/bundle.rs crates/core/src/env.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/pareto.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/space.rs crates/core/src/stats.rs crates/core/src/sweep.rs crates/core/src/toy.rs crates/core/src/trajectory.rs Cargo.toml

/root/repo/target/debug/deps/libarchgym_core-2e5276ddf051e2c2.rmeta: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/bundle.rs crates/core/src/env.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/pareto.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/space.rs crates/core/src/stats.rs crates/core/src/sweep.rs crates/core/src/toy.rs crates/core/src/trajectory.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/agent.rs:
crates/core/src/bundle.rs:
crates/core/src/env.rs:
crates/core/src/error.rs:
crates/core/src/executor.rs:
crates/core/src/pareto.rs:
crates/core/src/reward.rs:
crates/core/src/search.rs:
crates/core/src/space.rs:
crates/core/src/stats.rs:
crates/core/src/sweep.rs:
crates/core/src/toy.rs:
crates/core/src/trajectory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
