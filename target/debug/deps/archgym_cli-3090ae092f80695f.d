/root/repo/target/debug/deps/archgym_cli-3090ae092f80695f.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/cmd.rs crates/cli/src/spec.rs

/root/repo/target/debug/deps/libarchgym_cli-3090ae092f80695f.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/cmd.rs crates/cli/src/spec.rs

/root/repo/target/debug/deps/libarchgym_cli-3090ae092f80695f.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/cmd.rs crates/cli/src/spec.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/cmd.rs:
crates/cli/src/spec.rs:
