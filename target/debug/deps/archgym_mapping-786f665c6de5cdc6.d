/root/repo/target/debug/deps/archgym_mapping-786f665c6de5cdc6.d: crates/mapping/src/lib.rs crates/mapping/src/cost.rs crates/mapping/src/env.rs crates/mapping/src/space.rs crates/mapping/src/two_level.rs

/root/repo/target/debug/deps/archgym_mapping-786f665c6de5cdc6: crates/mapping/src/lib.rs crates/mapping/src/cost.rs crates/mapping/src/env.rs crates/mapping/src/space.rs crates/mapping/src/two_level.rs

crates/mapping/src/lib.rs:
crates/mapping/src/cost.rs:
crates/mapping/src/env.rs:
crates/mapping/src/space.rs:
crates/mapping/src/two_level.rs:
