/root/repo/target/debug/deps/archgym_soc-1db8de5a2545aa1a.d: crates/soc/src/lib.rs crates/soc/src/env.rs crates/soc/src/soc.rs crates/soc/src/taskgraph.rs

/root/repo/target/debug/deps/libarchgym_soc-1db8de5a2545aa1a.rlib: crates/soc/src/lib.rs crates/soc/src/env.rs crates/soc/src/soc.rs crates/soc/src/taskgraph.rs

/root/repo/target/debug/deps/libarchgym_soc-1db8de5a2545aa1a.rmeta: crates/soc/src/lib.rs crates/soc/src/env.rs crates/soc/src/soc.rs crates/soc/src/taskgraph.rs

crates/soc/src/lib.rs:
crates/soc/src/env.rs:
crates/soc/src/soc.rs:
crates/soc/src/taskgraph.rs:
