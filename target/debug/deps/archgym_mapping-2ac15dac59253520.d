/root/repo/target/debug/deps/archgym_mapping-2ac15dac59253520.d: crates/mapping/src/lib.rs crates/mapping/src/cost.rs crates/mapping/src/env.rs crates/mapping/src/space.rs crates/mapping/src/two_level.rs

/root/repo/target/debug/deps/libarchgym_mapping-2ac15dac59253520.rlib: crates/mapping/src/lib.rs crates/mapping/src/cost.rs crates/mapping/src/env.rs crates/mapping/src/space.rs crates/mapping/src/two_level.rs

/root/repo/target/debug/deps/libarchgym_mapping-2ac15dac59253520.rmeta: crates/mapping/src/lib.rs crates/mapping/src/cost.rs crates/mapping/src/env.rs crates/mapping/src/space.rs crates/mapping/src/two_level.rs

crates/mapping/src/lib.rs:
crates/mapping/src/cost.rs:
crates/mapping/src/env.rs:
crates/mapping/src/space.rs:
crates/mapping/src/two_level.rs:
