/root/repo/target/debug/deps/fig4-0eea57f69898db69.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-0eea57f69898db69.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
