/root/repo/target/debug/deps/parallel_sweep-b9e8270c271b71cb.d: tests/parallel_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_sweep-b9e8270c271b71cb.rmeta: tests/parallel_sweep.rs Cargo.toml

tests/parallel_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
