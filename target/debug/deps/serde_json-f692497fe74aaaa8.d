/root/repo/target/debug/deps/serde_json-f692497fe74aaaa8.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-f692497fe74aaaa8.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
