/root/repo/target/debug/deps/fig12-2c82286a1f33754e.d: crates/bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/debug/deps/libfig12-2c82286a1f33754e.rmeta: crates/bench/src/bin/fig12.rs Cargo.toml

crates/bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
