/root/repo/target/debug/deps/archgym_agents-975be51abda240c1.d: crates/agents/src/lib.rs crates/agents/src/aco.rs crates/agents/src/bo.rs crates/agents/src/factory.rs crates/agents/src/ga.rs crates/agents/src/linalg.rs crates/agents/src/nn.rs crates/agents/src/ppo.rs crates/agents/src/rl.rs crates/agents/src/sa.rs Cargo.toml

/root/repo/target/debug/deps/libarchgym_agents-975be51abda240c1.rmeta: crates/agents/src/lib.rs crates/agents/src/aco.rs crates/agents/src/bo.rs crates/agents/src/factory.rs crates/agents/src/ga.rs crates/agents/src/linalg.rs crates/agents/src/nn.rs crates/agents/src/ppo.rs crates/agents/src/rl.rs crates/agents/src/sa.rs Cargo.toml

crates/agents/src/lib.rs:
crates/agents/src/aco.rs:
crates/agents/src/bo.rs:
crates/agents/src/factory.rs:
crates/agents/src/ga.rs:
crates/agents/src/linalg.rs:
crates/agents/src/nn.rs:
crates/agents/src/ppo.rs:
crates/agents/src/rl.rs:
crates/agents/src/sa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
