/root/repo/target/debug/deps/fig12-e7c494c251439656.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-e7c494c251439656: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
