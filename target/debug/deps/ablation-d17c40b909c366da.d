/root/repo/target/debug/deps/ablation-d17c40b909c366da.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-d17c40b909c366da.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
