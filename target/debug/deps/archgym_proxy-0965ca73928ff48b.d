/root/repo/target/debug/deps/archgym_proxy-0965ca73928ff48b.d: crates/proxy/src/lib.rs crates/proxy/src/forest.rs crates/proxy/src/offline.rs crates/proxy/src/pipeline.rs crates/proxy/src/proxy_env.rs crates/proxy/src/tree.rs

/root/repo/target/debug/deps/libarchgym_proxy-0965ca73928ff48b.rlib: crates/proxy/src/lib.rs crates/proxy/src/forest.rs crates/proxy/src/offline.rs crates/proxy/src/pipeline.rs crates/proxy/src/proxy_env.rs crates/proxy/src/tree.rs

/root/repo/target/debug/deps/libarchgym_proxy-0965ca73928ff48b.rmeta: crates/proxy/src/lib.rs crates/proxy/src/forest.rs crates/proxy/src/offline.rs crates/proxy/src/pipeline.rs crates/proxy/src/proxy_env.rs crates/proxy/src/tree.rs

crates/proxy/src/lib.rs:
crates/proxy/src/forest.rs:
crates/proxy/src/offline.rs:
crates/proxy/src/pipeline.rs:
crates/proxy/src/proxy_env.rs:
crates/proxy/src/tree.rs:
