/root/repo/target/debug/deps/fig7-8d0cd8d4dfb08d3e.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-8d0cd8d4dfb08d3e.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
