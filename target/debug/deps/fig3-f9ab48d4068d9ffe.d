/root/repo/target/debug/deps/fig3-f9ab48d4068d9ffe.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-f9ab48d4068d9ffe.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
