/root/repo/target/debug/deps/archgym_models-a955241738abcf0b.d: crates/models/src/lib.rs

/root/repo/target/debug/deps/libarchgym_models-a955241738abcf0b.rlib: crates/models/src/lib.rs

/root/repo/target/debug/deps/libarchgym_models-a955241738abcf0b.rmeta: crates/models/src/lib.rs

crates/models/src/lib.rs:
