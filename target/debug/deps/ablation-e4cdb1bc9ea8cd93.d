/root/repo/target/debug/deps/ablation-e4cdb1bc9ea8cd93.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-e4cdb1bc9ea8cd93.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
