/root/repo/target/debug/deps/ablation-912fca11e5386263.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-912fca11e5386263: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
