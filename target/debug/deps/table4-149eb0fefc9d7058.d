/root/repo/target/debug/deps/table4-149eb0fefc9d7058.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-149eb0fefc9d7058: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
