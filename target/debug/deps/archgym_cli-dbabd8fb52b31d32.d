/root/repo/target/debug/deps/archgym_cli-dbabd8fb52b31d32.d: crates/cli/src/bin/archgym.rs

/root/repo/target/debug/deps/archgym_cli-dbabd8fb52b31d32: crates/cli/src/bin/archgym.rs

crates/cli/src/bin/archgym.rs:
