/root/repo/target/debug/deps/archgym_models-8754a37190b13165.d: crates/models/src/lib.rs

/root/repo/target/debug/deps/archgym_models-8754a37190b13165: crates/models/src/lib.rs

crates/models/src/lib.rs:
