/root/repo/target/debug/deps/golden-987fa93e9dac8e7b.d: tests/golden.rs

/root/repo/target/debug/deps/golden-987fa93e9dac8e7b: tests/golden.rs

tests/golden.rs:
