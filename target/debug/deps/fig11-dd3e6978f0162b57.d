/root/repo/target/debug/deps/fig11-dd3e6978f0162b57.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-dd3e6978f0162b57: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
