/root/repo/target/debug/deps/archgym_dram-39bfd05de30f2457.d: crates/dram/src/lib.rs crates/dram/src/controller.rs crates/dram/src/device.rs crates/dram/src/env.rs crates/dram/src/power.rs crates/dram/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libarchgym_dram-39bfd05de30f2457.rmeta: crates/dram/src/lib.rs crates/dram/src/controller.rs crates/dram/src/device.rs crates/dram/src/env.rs crates/dram/src/power.rs crates/dram/src/trace.rs Cargo.toml

crates/dram/src/lib.rs:
crates/dram/src/controller.rs:
crates/dram/src/device.rs:
crates/dram/src/env.rs:
crates/dram/src/power.rs:
crates/dram/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
