/root/repo/target/debug/deps/fig10-33e2d2bb1b2ae4c8.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-33e2d2bb1b2ae4c8.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
