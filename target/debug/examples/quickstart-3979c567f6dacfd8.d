/root/repo/target/debug/examples/quickstart-3979c567f6dacfd8.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-3979c567f6dacfd8.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
