/root/repo/target/debug/examples/dataset_to_proxy-3bab9b3748d5d6c6.d: examples/dataset_to_proxy.rs

/root/repo/target/debug/examples/dataset_to_proxy-3bab9b3748d5d6c6: examples/dataset_to_proxy.rs

examples/dataset_to_proxy.rs:
