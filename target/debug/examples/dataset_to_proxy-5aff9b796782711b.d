/root/repo/target/debug/examples/dataset_to_proxy-5aff9b796782711b.d: examples/dataset_to_proxy.rs Cargo.toml

/root/repo/target/debug/examples/libdataset_to_proxy-5aff9b796782711b.rmeta: examples/dataset_to_proxy.rs Cargo.toml

examples/dataset_to_proxy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
