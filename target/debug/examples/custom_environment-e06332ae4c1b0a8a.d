/root/repo/target/debug/examples/custom_environment-e06332ae4c1b0a8a.d: examples/custom_environment.rs

/root/repo/target/debug/examples/custom_environment-e06332ae4c1b0a8a: examples/custom_environment.rs

examples/custom_environment.rs:
