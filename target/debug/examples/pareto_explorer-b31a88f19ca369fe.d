/root/repo/target/debug/examples/pareto_explorer-b31a88f19ca369fe.d: examples/pareto_explorer.rs

/root/repo/target/debug/examples/pareto_explorer-b31a88f19ca369fe: examples/pareto_explorer.rs

examples/pareto_explorer.rs:
