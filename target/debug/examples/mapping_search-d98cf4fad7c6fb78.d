/root/repo/target/debug/examples/mapping_search-d98cf4fad7c6fb78.d: examples/mapping_search.rs

/root/repo/target/debug/examples/mapping_search-d98cf4fad7c6fb78: examples/mapping_search.rs

examples/mapping_search.rs:
