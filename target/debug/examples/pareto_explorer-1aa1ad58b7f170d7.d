/root/repo/target/debug/examples/pareto_explorer-1aa1ad58b7f170d7.d: examples/pareto_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libpareto_explorer-1aa1ad58b7f170d7.rmeta: examples/pareto_explorer.rs Cargo.toml

examples/pareto_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
