/root/repo/target/debug/examples/accelerator_codesign-4d7d0d2cd40ce96f.d: examples/accelerator_codesign.rs Cargo.toml

/root/repo/target/debug/examples/libaccelerator_codesign-4d7d0d2cd40ce96f.rmeta: examples/accelerator_codesign.rs Cargo.toml

examples/accelerator_codesign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
