/root/repo/target/debug/examples/proxy_in_the_loop-2ebf6973ba016308.d: examples/proxy_in_the_loop.rs Cargo.toml

/root/repo/target/debug/examples/libproxy_in_the_loop-2ebf6973ba016308.rmeta: examples/proxy_in_the_loop.rs Cargo.toml

examples/proxy_in_the_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
