/root/repo/target/debug/examples/proxy_in_the_loop-8e784261bae4ddc5.d: examples/proxy_in_the_loop.rs

/root/repo/target/debug/examples/proxy_in_the_loop-8e784261bae4ddc5: examples/proxy_in_the_loop.rs

examples/proxy_in_the_loop.rs:
