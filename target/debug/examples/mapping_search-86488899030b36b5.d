/root/repo/target/debug/examples/mapping_search-86488899030b36b5.d: examples/mapping_search.rs Cargo.toml

/root/repo/target/debug/examples/libmapping_search-86488899030b36b5.rmeta: examples/mapping_search.rs Cargo.toml

examples/mapping_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
