/root/repo/target/debug/examples/soc_for_arvr-61e253a354769b19.d: examples/soc_for_arvr.rs

/root/repo/target/debug/examples/soc_for_arvr-61e253a354769b19: examples/soc_for_arvr.rs

examples/soc_for_arvr.rs:
