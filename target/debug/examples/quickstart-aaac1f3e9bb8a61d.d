/root/repo/target/debug/examples/quickstart-aaac1f3e9bb8a61d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-aaac1f3e9bb8a61d: examples/quickstart.rs

examples/quickstart.rs:
