/root/repo/target/debug/examples/soc_for_arvr-7cba7b141e58c2b9.d: examples/soc_for_arvr.rs Cargo.toml

/root/repo/target/debug/examples/libsoc_for_arvr-7cba7b141e58c2b9.rmeta: examples/soc_for_arvr.rs Cargo.toml

examples/soc_for_arvr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
