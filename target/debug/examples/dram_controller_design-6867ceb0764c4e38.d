/root/repo/target/debug/examples/dram_controller_design-6867ceb0764c4e38.d: examples/dram_controller_design.rs Cargo.toml

/root/repo/target/debug/examples/libdram_controller_design-6867ceb0764c4e38.rmeta: examples/dram_controller_design.rs Cargo.toml

examples/dram_controller_design.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
