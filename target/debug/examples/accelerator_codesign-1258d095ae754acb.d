/root/repo/target/debug/examples/accelerator_codesign-1258d095ae754acb.d: examples/accelerator_codesign.rs

/root/repo/target/debug/examples/accelerator_codesign-1258d095ae754acb: examples/accelerator_codesign.rs

examples/accelerator_codesign.rs:
