/root/repo/target/debug/examples/dram_controller_design-2dbce8d2e248dad7.d: examples/dram_controller_design.rs

/root/repo/target/debug/examples/dram_controller_design-2dbce8d2e248dad7: examples/dram_controller_design.rs

examples/dram_controller_design.rs:
