/root/repo/target/debug/examples/custom_environment-a12e34ec9d6a796b.d: examples/custom_environment.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_environment-a12e34ec9d6a796b.rmeta: examples/custom_environment.rs Cargo.toml

examples/custom_environment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__dead_code__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__unused_imports__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
